"""Join MEV records against the public Flashbots blocks dataset.

The paper downloads every Flashbots block from the public API and labels
an extraction as "via Flashbots" when its MEV transactions appear in that
dataset (Section 3.3).  For sandwiches, *both* attacker legs must be
Flashbots transactions; single-transaction strategies need only their one
transaction labelled.

The authors note the public dataset has gaps.  Inside a gap, absence of
a row is *not* evidence of a non-Flashbots extraction, so records whose
block falls in a known gap get ``via_flashbots = None`` (unknown) rather
than a silent ``False`` — the :class:`DataQualityReport` counts them.
"""

from __future__ import annotations

from typing import Optional

from repro.core.datasets import FLASHBOTS_UNKNOWN, MevDataset
from repro.flashbots.api import FlashbotsBlocksApi


def _covered(api: FlashbotsBlocksApi, block_number: int) -> bool:
    """Whether the dataset conclusively covers this block."""
    has_block_data = getattr(api, "has_block_data", None)
    return True if has_block_data is None else has_block_data(block_number)


def annotate_flashbots(dataset: MevDataset,
                       api: FlashbotsBlocksApi) -> MevDataset:
    """Set ``via_flashbots`` on every record, in place; returns dataset.

    Records in blocks the dataset does not cover are labelled
    ``None`` (unknown), never ``False``.
    """
    for record in dataset.sandwiches:
        if not _covered(api, record.block_number):
            record.via_flashbots = FLASHBOTS_UNKNOWN
            continue
        record.via_flashbots = (api.is_flashbots_tx(record.front_tx)
                                and api.is_flashbots_tx(record.back_tx))
    for record in dataset.arbitrages:
        record.via_flashbots = _tx_label(api, record.block_number,
                                         record.tx_hash)
    for record in dataset.liquidations:
        record.via_flashbots = _tx_label(api, record.block_number,
                                         record.tx_hash)
    return dataset


def _tx_label(api: FlashbotsBlocksApi, block_number: int,
              tx_hash: str) -> Optional[bool]:
    if not _covered(api, block_number):
        return FLASHBOTS_UNKNOWN
    return api.is_flashbots_tx(tx_hash)
