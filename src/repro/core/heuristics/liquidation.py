"""Liquidation-MEV detection: crawl lending-platform liquidation events.

The paper's script extracts ``Liquidation`` events from Aave V1/V2 and
Compound and computes, per event::

    gain  = value of the received collateral (in ETH, at the block)
    costs = transaction fees + value of the liquidated debt + tips

Our lending pools emit the same event shape, so the extraction is a
direct crawl.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.chain.events import LiquidationEvent
from repro.chain.node import ArchiveNode
from repro.chain.types import Address
from repro.core.datasets import LiquidationRecord
from repro.core.profit import PriceService, transaction_cost
from repro.core.scan import BlockView

DEFAULT_PLATFORMS = ("AaveV1", "AaveV2", "Compound")


class LiquidationVisitor:
    """Per-block liquidation detector for
    :class:`~repro.core.scan.BlockScan`.

    ``visit`` collects the platform-covered liquidation events;
    ``finalize`` builds the records — price checks, then the liquidating
    transaction's receipt — in discovery order, the same archive-fetch
    order the standalone scan performed.
    """

    def __init__(self, prices: PriceService,
                 platforms: Sequence[str] = DEFAULT_PLATFORMS) -> None:
        self.prices = prices
        self.platforms = platforms
        self._pending: List[Tuple[LiquidationEvent, Address]] = []

    def visit(self, view: BlockView) -> None:
        for event in view.liquidations:
            if event.platform in self.platforms:
                self._pending.append((event, view.block.miner))

    def finalize(self, node: ArchiveNode) -> List[LiquidationRecord]:
        records: List[LiquidationRecord] = []
        for event, miner in self._pending:
            record = _build_record(node, self.prices, miner, event)
            if record is not None:
                records.append(record)
        return records


def detect_liquidations(node: ArchiveNode, prices: PriceService,
                        from_block: Optional[int] = None,
                        to_block: Optional[int] = None,
                        platforms: Sequence[str] = DEFAULT_PLATFORMS,
                        ) -> List[LiquidationRecord]:
    """Scan a block range and return every detected liquidation.

    Thin wrapper over :class:`LiquidationVisitor`: one block pass, then
    record construction in discovery order.
    """
    visitor = LiquidationVisitor(prices, platforms)
    for block in node.iter_blocks(from_block, to_block):
        visitor.visit(BlockView.of(block))
    return visitor.finalize(node)


def _build_record(node: ArchiveNode, prices: PriceService, miner: str,
                  event: LiquidationEvent,
                  ) -> Optional[LiquidationRecord]:
    gain_wei = prices.value_in_eth(event.collateral_token,
                                   event.collateral_seized,
                                   event.block_number)
    debt_wei = prices.value_in_eth(event.debt_token, event.debt_repaid,
                                   event.block_number)
    if gain_wei is None or debt_wei is None:
        return None
    receipt = node.get_receipt(event.tx_hash)
    if receipt is None:
        return None
    cost_wei = transaction_cost([receipt]) + debt_wei
    return LiquidationRecord(
        block_number=event.block_number, tx_hash=event.tx_hash,
        platform=event.platform, liquidator=event.liquidator,
        borrower=event.borrower, debt_token=event.debt_token,
        debt_repaid=event.debt_repaid,
        collateral_token=event.collateral_token,
        collateral_seized=event.collateral_seized, gain_wei=gain_wei,
        cost_wei=cost_wei, miner=miner)
