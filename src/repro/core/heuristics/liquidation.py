"""Liquidation-MEV detection: crawl lending-platform liquidation events.

The paper's script extracts ``Liquidation`` events from Aave V1/V2 and
Compound and computes, per event::

    gain  = value of the received collateral (in ETH, at the block)
    costs = transaction fees + value of the liquidated debt + tips

Our lending pools emit the same event shape, so the extraction is a
direct crawl.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.chain.events import LiquidationEvent
from repro.chain.node import ArchiveNode
from repro.core.datasets import LiquidationRecord
from repro.core.profit import PriceService, transaction_cost

DEFAULT_PLATFORMS = ("AaveV1", "AaveV2", "Compound")


def detect_liquidations(node: ArchiveNode, prices: PriceService,
                        from_block: Optional[int] = None,
                        to_block: Optional[int] = None,
                        platforms: Sequence[str] = DEFAULT_PLATFORMS,
                        ) -> List[LiquidationRecord]:
    """Scan a block range and return every detected liquidation."""
    records: List[LiquidationRecord] = []
    for block in node.iter_blocks(from_block, to_block):
        for receipt in block.receipts:
            if not receipt.status:
                continue
            for log in receipt.logs:
                if not isinstance(log, LiquidationEvent):
                    continue
                if log.platform not in platforms:
                    continue
                record = _build_record(node, prices, block.miner, log)
                if record is not None:
                    records.append(record)
    return records


def _build_record(node: ArchiveNode, prices: PriceService, miner: str,
                  event: LiquidationEvent,
                  ) -> Optional[LiquidationRecord]:
    gain_wei = prices.value_in_eth(event.collateral_token,
                                   event.collateral_seized,
                                   event.block_number)
    debt_wei = prices.value_in_eth(event.debt_token, event.debt_repaid,
                                   event.block_number)
    if gain_wei is None or debt_wei is None:
        return None
    receipt = node.get_receipt(event.tx_hash)
    if receipt is None:
        return None
    cost_wei = transaction_cost([receipt]) + debt_wei
    return LiquidationRecord(
        block_number=event.block_number, tx_hash=event.tx_hash,
        platform=event.platform, liquidator=event.liquidator,
        borrower=event.borrower, debt_token=event.debt_token,
        debt_repaid=event.debt_repaid,
        collateral_token=event.collateral_token,
        collateral_seized=event.collateral_seized, gain_wei=gain_wei,
        cost_wei=cost_wei, miner=miner)
