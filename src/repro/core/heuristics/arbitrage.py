"""Cyclic-arbitrage detection — Qin et al. heuristic.

A transaction is an arbitrage when its swap events, taken in execution
order for a single taker, chain into a *closed cycle*: each swap consumes
the token the previous one produced, at least two swaps (across one or
more venues) are involved, and the cycle returns to its starting token.
The extraction's gain is the surplus of the final output over the initial
input, valued in ETH at the block.

Coverage matches the paper's script: 0x, Balancer, Bancor, Curve,
SushiSwap and Uniswap (everything the venue registry deploys).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.chain.events import SwapEvent
from repro.chain.node import ArchiveNode
from repro.chain.receipt import Receipt
from repro.core.datasets import ArbitrageRecord
from repro.core.profit import PriceService, transaction_cost

DEFAULT_VENUES = ("0x", "Balancer", "Bancor", "Curve", "SushiSwap",
                  "UniswapV2", "UniswapV3")


def _cycle_of(swaps: List[SwapEvent]) -> Optional[List[SwapEvent]]:
    """Return the swap chain if it forms a single closed cycle."""
    if len(swaps) < 2:
        return None
    taker = swaps[0].taker
    if any(swap.taker != taker for swap in swaps):
        return None
    for previous, current in zip(swaps, swaps[1:]):
        if current.token_in != previous.token_out:
            return None
        # Amount chaining: the attacker reinvests the whole hop output.
        if current.amount_in > previous.amount_out:
            return None
    if swaps[-1].token_out != swaps[0].token_in:
        return None
    return swaps


def _record_from_receipt(receipt: Receipt, prices: PriceService,
                         miner: str,
                         venues: Sequence[str],
                         ) -> Optional[ArbitrageRecord]:
    swaps = [log for log in receipt.logs
             if isinstance(log, SwapEvent) and log.venue in venues]
    swaps.sort(key=lambda s: s.log_index)
    cycle = _cycle_of(swaps)
    if cycle is None:
        return None
    start_token = cycle[0].token_in
    surplus = cycle[-1].amount_out - cycle[0].amount_in
    gain_wei = prices.value_in_eth(start_token, surplus,
                                   receipt.block_number)
    if gain_wei is None:
        return None
    cost_wei = transaction_cost([receipt])
    return ArbitrageRecord(
        block_number=receipt.block_number, tx_hash=receipt.tx_hash,
        extractor=cycle[0].taker,
        venues=tuple(swap.venue for swap in cycle),
        token_cycle=tuple([cycle[0].token_in]
                          + [swap.token_out for swap in cycle]),
        amount_in=cycle[0].amount_in, amount_out=cycle[-1].amount_out,
        gain_wei=gain_wei, cost_wei=cost_wei, miner=miner)


def detect_arbitrages(node: ArchiveNode, prices: PriceService,
                      from_block: Optional[int] = None,
                      to_block: Optional[int] = None,
                      venues: Sequence[str] = DEFAULT_VENUES,
                      ) -> List[ArbitrageRecord]:
    """Scan a block range and return every detected cyclic arbitrage."""
    records: List[ArbitrageRecord] = []
    for block in node.iter_blocks(from_block, to_block):
        for receipt in block.receipts:
            if not receipt.status:
                continue
            record = _record_from_receipt(receipt, prices, block.miner,
                                          venues)
            if record is not None:
                records.append(record)
    return records
