"""Cyclic-arbitrage detection — Qin et al. heuristic.

A transaction is an arbitrage when its swap events, taken in execution
order for a single taker, chain into a *closed cycle*: each swap consumes
the token the previous one produced, at least two swaps (across one or
more venues) are involved, and the cycle returns to its starting token.
The extraction's gain is the surplus of the final output over the initial
input, valued in ETH at the block.

Coverage matches the paper's script: 0x, Balancer, Bancor, Curve,
SushiSwap and Uniswap (everything the venue registry deploys).
"""

from __future__ import annotations

from typing import Container, List, Optional, Sequence

from repro.chain.events import SwapEvent
from repro.chain.node import ArchiveNode
from repro.chain.receipt import Receipt
from repro.core.datasets import ArbitrageRecord
from repro.core.profit import PriceService, transaction_cost
from repro.core.scan import BlockView

DEFAULT_VENUES = ("0x", "Balancer", "Bancor", "Curve", "SushiSwap",
                  "UniswapV2", "UniswapV3")


def _cycle_of(swaps: List[SwapEvent]) -> Optional[List[SwapEvent]]:
    """Return the swap chain if it forms a single closed cycle."""
    if len(swaps) < 2:
        return None
    taker = swaps[0].taker
    if any(swap.taker != taker for swap in swaps):
        return None
    for previous, current in zip(swaps, swaps[1:]):
        if current.token_in != previous.token_out:
            return None
        # Amount chaining: the attacker reinvests the whole hop output.
        if current.amount_in > previous.amount_out:
            return None
    if swaps[-1].token_out != swaps[0].token_in:
        return None
    return swaps


def _record_from_receipt(receipt: Receipt, prices: PriceService,
                         miner: str,
                         venues: Sequence[str],
                         ) -> Optional[ArbitrageRecord]:
    swaps = [log for log in receipt.logs if isinstance(log, SwapEvent)]
    return _record_from_swaps(receipt, swaps, prices, miner, venues)


def _record_from_swaps(receipt: Receipt, swaps: List[SwapEvent],
                       prices: PriceService, miner: str,
                       venues: Container[str],
                       ) -> Optional[ArbitrageRecord]:
    # A cycle takes at least two covered swaps; most receipts carry a
    # single ordinary swap, so bail before filtering and sorting.
    if len(swaps) < 2:
        return None
    swaps = [log for log in swaps if log.venue in venues]
    if len(swaps) < 2:
        return None
    swaps.sort(key=lambda s: s.log_index)
    cycle = _cycle_of(swaps)
    if cycle is None:
        return None
    start_token = cycle[0].token_in
    surplus = cycle[-1].amount_out - cycle[0].amount_in
    gain_wei = prices.value_in_eth(start_token, surplus,
                                   receipt.block_number)
    if gain_wei is None:
        return None
    cost_wei = transaction_cost([receipt])
    return ArbitrageRecord(
        block_number=receipt.block_number, tx_hash=receipt.tx_hash,
        extractor=cycle[0].taker,
        venues=tuple(swap.venue for swap in cycle),
        token_cycle=tuple([cycle[0].token_in]
                          + [swap.token_out for swap in cycle]),
        amount_in=cycle[0].amount_in, amount_out=cycle[-1].amount_out,
        gain_wei=gain_wei, cost_wei=cost_wei, miner=miner)


class ArbitrageVisitor:
    """Per-block arbitrage detector for :class:`~repro.core.scan.BlockScan`.

    Entirely local: a cyclic arbitrage is decided from one receipt's
    swap events, so records are complete at ``visit`` time and
    ``finalize`` just hands them back — no archive traffic at all.
    """

    def __init__(self, prices: PriceService,
                 venues: Sequence[str] = DEFAULT_VENUES) -> None:
        self.prices = prices
        self.venues = venues
        self._venue_set = frozenset(venues)
        self._records: List[ArbitrageRecord] = []

    def visit(self, view: BlockView) -> None:
        for receipt, swaps in view.swap_receipts:
            if len(swaps) < 2:  # a cycle takes at least two swaps
                continue
            record = _record_from_swaps(receipt, swaps, self.prices,
                                        view.block.miner,
                                        self._venue_set)
            if record is not None:
                self._records.append(record)

    def finalize(self) -> List[ArbitrageRecord]:
        return self._records


def detect_arbitrages(node: ArchiveNode, prices: PriceService,
                      from_block: Optional[int] = None,
                      to_block: Optional[int] = None,
                      venues: Sequence[str] = DEFAULT_VENUES,
                      ) -> List[ArbitrageRecord]:
    """Scan a block range and return every detected cyclic arbitrage.

    Thin wrapper over :class:`ArbitrageVisitor` (one block pass).
    """
    visitor = ArbitrageVisitor(prices, venues)
    for block in node.iter_blocks(from_block, to_block):
        visitor.visit(BlockView.of(block))
    return visitor.finalize()
