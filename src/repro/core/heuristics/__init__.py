"""Detection heuristics: sandwich, arbitrage, liquidation, flash loans."""

from repro.core.heuristics.arbitrage import detect_arbitrages
from repro.core.heuristics.flashloan import detect_flash_loan_txs
from repro.core.heuristics.liquidation import detect_liquidations
from repro.core.heuristics.sandwich import detect_sandwiches

__all__ = ["detect_arbitrages", "detect_flash_loan_txs",
           "detect_liquidations", "detect_sandwiches"]
