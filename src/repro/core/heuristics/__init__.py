"""Detection heuristics: sandwich, arbitrage, liquidation, flash loans.

Each heuristic has two faces: a per-block *visitor* consumed by
:class:`repro.core.scan.BlockScan` (so one pass over a range feeds all
four), and the standalone ``detect_*`` entry point, now a thin wrapper
that runs its visitor over one range.
"""

from repro.core.heuristics.arbitrage import (
    ArbitrageVisitor,
    detect_arbitrages,
)
from repro.core.heuristics.flashloan import (
    FlashLoanVisitor,
    detect_flash_loan_txs,
    flash_loan_hashes,
)
from repro.core.heuristics.liquidation import (
    LiquidationVisitor,
    detect_liquidations,
)
from repro.core.heuristics.sandwich import (
    SandwichVisitor,
    detect_sandwiches,
)

__all__ = ["ArbitrageVisitor", "FlashLoanVisitor", "LiquidationVisitor",
           "SandwichVisitor", "detect_arbitrages",
           "detect_flash_loan_txs", "detect_liquidations",
           "detect_sandwiches", "flash_loan_hashes"]
