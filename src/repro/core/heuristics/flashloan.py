"""Flash-loan detection — Wang et al. technique.

Flash loans leave an unambiguous trace: lending platforms emit a
``FlashLoan`` event only when a loan was issued *and repaid* within the
transaction.  Detection is therefore a crawl of those events; the result
is the set of transaction hashes that used a flash loan, which the
pipeline joins against the MEV records (``via_flashloan``).
"""

from __future__ import annotations

from typing import Optional, Sequence, Set

from repro.chain.events import FlashLoanEvent
from repro.chain.node import ArchiveNode
from repro.chain.types import Hash32

DEFAULT_PLATFORMS = ("Aave", "dYdX")


def detect_flash_loan_txs(node: ArchiveNode,
                          from_block: Optional[int] = None,
                          to_block: Optional[int] = None,
                          platforms: Sequence[str] = DEFAULT_PLATFORMS,
                          ) -> Set[Hash32]:
    """Hashes of all transactions that completed a flash loan."""
    hashes: Set[Hash32] = set()
    for event in node.get_logs(FlashLoanEvent, from_block, to_block):
        if event.platform in platforms and event.tx_hash is not None:
            hashes.add(event.tx_hash)
    return hashes
