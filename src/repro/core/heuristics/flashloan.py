"""Flash-loan detection — Wang et al. technique.

Flash loans leave an unambiguous trace: lending platforms emit a
``FlashLoan`` event only when a loan was issued *and repaid* within the
transaction.  Detection is therefore a crawl of those events; the result
is the set of transaction hashes that used a flash loan, which the
pipeline joins against the MEV records (``via_flashloan``).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Set

from repro.chain.events import FlashLoanEvent
from repro.chain.node import ArchiveNode
from repro.chain.types import Hash32
from repro.core.scan import BlockView

DEFAULT_PLATFORMS = ("Aave", "dYdX")


def flash_loan_hashes(events: Iterable[FlashLoanEvent],
                      platforms: Sequence[str] = DEFAULT_PLATFORMS,
                      ) -> Set[Hash32]:
    """The covered-platform transaction hashes among flash-loan events."""
    return {event.tx_hash for event in events
            if event.platform in platforms and event.tx_hash is not None}


class FlashLoanVisitor:
    """Per-block flash-loan detector for
    :class:`~repro.core.scan.BlockScan`.

    Consumes the view's status-blind flash-loan bucket (matching the
    ``get_logs`` crawl, which never filtered on receipt status); no
    archive traffic at any point.
    """

    def __init__(self,
                 platforms: Sequence[str] = DEFAULT_PLATFORMS) -> None:
        self.platforms = platforms
        self._hashes: Set[Hash32] = set()

    def visit(self, view: BlockView) -> None:
        self._hashes |= flash_loan_hashes(view.flash_loans,
                                          self.platforms)

    def finalize(self) -> Set[Hash32]:
        return self._hashes


def detect_flash_loan_txs(node: ArchiveNode,
                          from_block: Optional[int] = None,
                          to_block: Optional[int] = None,
                          platforms: Sequence[str] = DEFAULT_PLATFORMS,
                          ) -> Set[Hash32]:
    """Hashes of all transactions that completed a flash loan.

    Stays ``get_logs``-based (one indexed postings lookup beats a block
    walk when flash loans are the only events wanted).
    """
    return flash_loan_hashes(node.get_logs(FlashLoanEvent, from_block,
                                           to_block), platforms)
