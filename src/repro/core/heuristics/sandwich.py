"""Sandwich (insertion-frontrunning) detection — Torres et al. heuristic.

Operating purely on archive-node data, a sandwich is three swaps on the
*same pool* in the *same block*:

* ``t1`` (frontrun) and ``t2`` (backrun) share a taker and are distinct
  transactions, with ``t1`` trading X→Y and ``t2`` trading Y→X;
* the victim ``V`` sits strictly between them in block order, trades the
  same direction X→Y as ``t1``, and has a different taker;
* the amount ``t2`` sells matches (within tolerance) the amount ``t1``
  bought — the attacker is unwinding exactly the frontrun position.

Coverage matches the paper's script: Bancor, SushiSwap and Uniswap pools
(the venue registry tags every swap event with its venue).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Tuple

from repro.chain.block import Block
from repro.chain.events import SwapEvent
from repro.chain.node import ArchiveNode
from repro.core.datasets import SandwichRecord
from repro.core.profit import PriceService, transaction_cost
from repro.core.scan import BlockView

#: Venues the sandwich script covers (paper Section 3.1.1).
DEFAULT_VENUES = ("Bancor", "SushiSwap", "UniswapV1", "UniswapV2",
                  "UniswapV3")

#: Max relative mismatch between frontrun output and backrun input, in
#: parts per thousand (the unwind-consistency check).
AMOUNT_TOLERANCE_PERMILLE = 10


def _amounts_match(bought: int, sold: int,
                   tolerance_permille: int = AMOUNT_TOLERANCE_PERMILLE,
                   ) -> bool:
    if bought <= 0 or sold <= 0:
        return False
    return abs(bought - sold) * 1_000 <= tolerance_permille * bought


def _swaps_by_pool(block: Block,
                   venues: Sequence[str]) -> Dict[str, List[SwapEvent]]:
    """Successful swap events in the block, grouped by pool address."""
    grouped: Dict[str, List[SwapEvent]] = defaultdict(list)
    for receipt in block.receipts:
        if not receipt.status:
            continue
        for log in receipt.logs:
            if isinstance(log, SwapEvent) and log.venue in venues:
                grouped[log.address].append(log)
    return grouped


def _find_in_pool(swaps: List[SwapEvent]) -> List[Tuple[SwapEvent,
                                                        SwapEvent,
                                                        SwapEvent]]:
    """All (front, victim, back) triples within one pool's block swaps."""
    triples = []
    used_txs = set()
    swaps = sorted(swaps, key=lambda s: (s.tx_index, s.log_index))
    for i, front in enumerate(swaps):
        if front.tx_hash in used_txs:
            continue
        for k in range(len(swaps) - 1, i + 1, -1):
            back = swaps[k]
            if back.tx_hash in used_txs:
                continue
            if back.taker != front.taker:
                continue
            if back.tx_hash == front.tx_hash:
                continue
            if (back.token_in, back.token_out) != (front.token_out,
                                                   front.token_in):
                continue
            if not _amounts_match(front.amount_out, back.amount_in):
                continue
            victim = _pick_victim(swaps, i, k, front)
            if victim is None:
                continue
            triples.append((front, victim, back))
            used_txs.update({front.tx_hash, back.tx_hash,
                             victim.tx_hash})
            break
    return triples


def _pick_victim(swaps: List[SwapEvent], front_index: int,
                 back_index: int, front: SwapEvent,
                 ) -> Optional[SwapEvent]:
    """The largest same-direction, different-taker swap strictly between
    the attacker's two legs."""
    best: Optional[SwapEvent] = None
    for j in range(front_index + 1, back_index):
        candidate = swaps[j]
        if candidate.taker == front.taker:
            continue
        if candidate.tx_index <= front.tx_index:
            continue
        if (candidate.token_in, candidate.token_out) != (front.token_in,
                                                         front.token_out):
            continue
        if best is None or candidate.amount_in > best.amount_in:
            best = candidate
    return best


class SandwichVisitor:
    """Per-block sandwich detector for :class:`~repro.core.scan.BlockScan`.

    ``visit`` finds the (front, victim, back) triples from the view's
    pre-bucketed swaps; ``finalize`` builds the records — the price
    checks plus the two attacker-receipt lookups — in discovery order,
    which is exactly the archive-fetch order the standalone scan
    performed.
    """

    def __init__(self, prices: PriceService,
                 venues: Sequence[str] = DEFAULT_VENUES) -> None:
        self.prices = prices
        self.venues = venues
        self._venue_set = frozenset(venues)
        self._pending: List[Tuple[Block, str, SwapEvent, SwapEvent,
                                  SwapEvent]] = []

    def visit(self, view: BlockView) -> None:
        venues = self._venue_set
        matched: List[SwapEvent] = []
        for _, swaps in view.swap_receipts:
            for log in swaps:
                if log.venue in venues:
                    matched.append(log)
        # A sandwich needs three swaps in one pool; fewer than three in
        # the whole block cannot group into one.
        if len(matched) < 3:
            return
        grouped: Dict[str, List[SwapEvent]] = defaultdict(list)
        for log in matched:
            grouped[log.address].append(log)
        for pool_address, swaps in grouped.items():
            if len(swaps) < 3:
                continue
            for front, victim, back in _find_in_pool(swaps):
                self._pending.append((view.block, pool_address, front,
                                      victim, back))

    def finalize(self, node: ArchiveNode) -> List[SandwichRecord]:
        records: List[SandwichRecord] = []
        for block, pool_address, front, victim, back in self._pending:
            record = _build_record(node, self.prices, block,
                                   pool_address, front, victim, back)
            if record is not None:
                records.append(record)
        return records


def detect_sandwiches(node: ArchiveNode, prices: PriceService,
                      from_block: Optional[int] = None,
                      to_block: Optional[int] = None,
                      venues: Sequence[str] = DEFAULT_VENUES,
                      ) -> List[SandwichRecord]:
    """Scan a block range and return every detected sandwich.

    Thin wrapper over :class:`SandwichVisitor`: one block pass, then
    record construction in discovery order.
    """
    visitor = SandwichVisitor(prices, venues)
    for block in node.iter_blocks(from_block, to_block):
        visitor.visit(BlockView.of(block))
    return visitor.finalize(node)


def _build_record(node: ArchiveNode, prices: PriceService, block: Block,
                  pool_address: str, front: SwapEvent, victim: SwapEvent,
                  back: SwapEvent) -> Optional[SandwichRecord]:
    # Gain: what the backrun recovered minus what the frontrun spent,
    # valued in ETH at this block (paper Section 3.1.1).
    gain_raw = back.amount_out - front.amount_in
    gain_wei = prices.value_in_eth(front.token_in, gain_raw,
                                   block.number)
    if gain_wei is None:
        return None
    receipts = [node.get_receipt(front.tx_hash),
                node.get_receipt(back.tx_hash)]
    if any(receipt is None for receipt in receipts):
        return None
    cost_wei = transaction_cost(receipts)
    miner_revenue = sum(receipt.total_miner_payment
                        for receipt in receipts)
    return SandwichRecord(
        block_number=block.number, pool_address=pool_address,
        venue=front.venue, extractor=front.taker, victim=victim.taker,
        front_tx=front.tx_hash, victim_tx=victim.tx_hash,
        back_tx=back.tx_hash, token_in=front.token_in,
        token_out=front.token_out,
        frontrun_amount_in=front.amount_in,
        backrun_amount_out=back.amount_out, gain_wei=gain_wei,
        cost_wei=cost_wei, miner_revenue_wei=miner_revenue,
        miner=block.miner)
