"""Typed MEV records and the dataset container (the paper's MongoDB).

Each record mirrors what the paper's crawling scripts store: the
transactions involved, the extractor and miner, the gains/costs in ETH,
and the labels added by the joins (Flashbots, flash loans, privacy).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import IO, Dict, Iterable, List, Optional, Tuple

from repro.chain.types import Address, Hash32

PRIVACY_PUBLIC = "public"
PRIVACY_PRIVATE = "private"
PRIVACY_FLASHBOTS = "flashbots"


@dataclass
class SandwichRecord:
    """A detected insertion attack (Definition 1 / Torres heuristic)."""

    block_number: int
    pool_address: Address
    venue: str
    extractor: Address
    victim: Address
    front_tx: Hash32
    victim_tx: Hash32
    back_tx: Hash32
    token_in: str
    token_out: str
    frontrun_amount_in: int
    backrun_amount_out: int
    gain_wei: int
    cost_wei: int
    #: what the block's miner earned from the two attacker transactions
    #: (gas fees kept + coinbase tips) — the quantity behind Figure 8a
    miner_revenue_wei: int = 0
    miner: Address = ""
    via_flashbots: bool = False
    via_flashloan: bool = False
    privacy: Optional[str] = None

    @property
    def profit_wei(self) -> int:
        return self.gain_wei - self.cost_wei

    @property
    def mev_txs(self) -> Tuple[Hash32, Hash32]:
        return (self.front_tx, self.back_tx)


@dataclass
class ArbitrageRecord:
    """A detected closed-cycle arbitrage (Qin heuristic)."""

    block_number: int
    tx_hash: Hash32
    extractor: Address
    venues: Tuple[str, ...]
    token_cycle: Tuple[str, ...]
    amount_in: int
    amount_out: int
    gain_wei: int
    cost_wei: int
    miner: Address = ""
    via_flashbots: bool = False
    via_flashloan: bool = False
    privacy: Optional[str] = None

    @property
    def profit_wei(self) -> int:
        return self.gain_wei - self.cost_wei


@dataclass
class LiquidationRecord:
    """A detected fixed-spread liquidation."""

    block_number: int
    tx_hash: Hash32
    platform: str
    liquidator: Address
    borrower: Address
    debt_token: str
    debt_repaid: int
    collateral_token: str
    collateral_seized: int
    gain_wei: int
    cost_wei: int
    miner: Address = ""
    via_flashbots: bool = False
    via_flashloan: bool = False
    privacy: Optional[str] = None

    @property
    def profit_wei(self) -> int:
        return self.gain_wei - self.cost_wei


@dataclass
class MevDataset:
    """All detected MEV over a block range, with join labels applied."""

    sandwiches: List[SandwichRecord] = field(default_factory=list)
    arbitrages: List[ArbitrageRecord] = field(default_factory=list)
    liquidations: List[LiquidationRecord] = field(default_factory=list)

    def all_records(self) -> List[object]:
        return [*self.sandwiches, *self.arbitrages, *self.liquidations]

    def totals(self) -> Dict[str, int]:
        return {"sandwich": len(self.sandwiches),
                "arbitrage": len(self.arbitrages),
                "liquidation": len(self.liquidations),
                "total": len(self.sandwiches) + len(self.arbitrages)
                + len(self.liquidations)}

    def count(self, strategy: str, via_flashbots: Optional[bool] = None,
              via_flashloan: Optional[bool] = None) -> int:
        """Count records of one strategy with optional label filters."""
        records: Iterable = {"sandwich": self.sandwiches,
                             "arbitrage": self.arbitrages,
                             "liquidation": self.liquidations}[strategy]
        total = 0
        for record in records:
            if via_flashbots is not None and \
                    record.via_flashbots != via_flashbots:
                continue
            if via_flashloan is not None and \
                    record.via_flashloan != via_flashloan:
                continue
            total += 1
        return total

    # Persistence ---------------------------------------------------------

    def dump_jsonl(self, stream: IO[str]) -> None:
        """Write one JSON object per record, tagged with its kind."""
        for kind, records in (("sandwich", self.sandwiches),
                              ("arbitrage", self.arbitrages),
                              ("liquidation", self.liquidations)):
            for record in records:
                row = asdict(record)
                row["kind"] = kind
                stream.write(json.dumps(row) + "\n")

    @classmethod
    def load_jsonl(cls, stream: IO[str]) -> "MevDataset":
        dataset = cls()
        constructors = {"sandwich": SandwichRecord,
                        "arbitrage": ArbitrageRecord,
                        "liquidation": LiquidationRecord}
        buckets = {"sandwich": dataset.sandwiches,
                   "arbitrage": dataset.arbitrages,
                   "liquidation": dataset.liquidations}
        for line in stream:
            line = line.strip()
            if not line:
                continue
            row = json.loads(line)
            kind = row.pop("kind")
            for key in ("venues", "token_cycle"):
                if key in row and isinstance(row[key], list):
                    row[key] = tuple(row[key])
            buckets[kind].append(constructors[kind](**row))
        return dataset
