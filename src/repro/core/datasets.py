"""Typed MEV records and the dataset container (the paper's MongoDB).

Each record mirrors what the paper's crawling scripts store: the
transactions involved, the extractor and miner, the gains/costs in ETH,
and the labels added by the joins (Flashbots, flash loans, privacy).

Labels are honest about missing data.  ``via_flashbots`` is tri-state:
``True``/``False`` when the public dataset covers the record's block,
``None`` (*unknown*) when the block falls in a known dataset gap — a gap
must never silently read as "non-Flashbots".  Likewise ``privacy`` adds
``'unobserved'`` for records whose classification would rest on the
pending-tx collector's downtime.  The :class:`MevDataset` carries the
run's :class:`~repro.reliability.quality.DataQualityReport` so degraded
coverage travels with the data it degraded.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields
from typing import (
    IO,
    TYPE_CHECKING,
    Dict,
    Iterable,
    List,
    Optional,
    Tuple,
    Type,
)

from repro.chain.types import Address, Hash32

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids module cycle
    from repro.reliability.quality import DataQualityReport

PRIVACY_PUBLIC = "public"
PRIVACY_PRIVATE = "private"
PRIVACY_FLASHBOTS = "flashbots"
#: the pending-tx collector was down when the record's transactions
#: would have been pending: absence from the trace proves nothing
PRIVACY_UNOBSERVED = "unobserved"

#: ``via_flashbots`` value meaning "the dataset has a gap here"
FLASHBOTS_UNKNOWN = None


@dataclass
class SandwichRecord:
    """A detected insertion attack (Definition 1 / Torres heuristic)."""

    block_number: int
    pool_address: Address
    venue: str
    extractor: Address
    victim: Address
    front_tx: Hash32
    victim_tx: Hash32
    back_tx: Hash32
    token_in: str
    token_out: str
    frontrun_amount_in: int
    backrun_amount_out: int
    gain_wei: int
    cost_wei: int
    #: what the block's miner earned from the two attacker transactions
    #: (gas fees kept + coinbase tips) — the quantity behind Figure 8a
    miner_revenue_wei: int = 0
    miner: Address = ""
    via_flashbots: Optional[bool] = False
    via_flashloan: bool = False
    privacy: Optional[str] = None

    @property
    def profit_wei(self) -> int:
        return self.gain_wei - self.cost_wei

    @property
    def mev_txs(self) -> Tuple[Hash32, Hash32]:
        return (self.front_tx, self.back_tx)


@dataclass
class ArbitrageRecord:
    """A detected closed-cycle arbitrage (Qin heuristic)."""

    block_number: int
    tx_hash: Hash32
    extractor: Address
    venues: Tuple[str, ...]
    token_cycle: Tuple[str, ...]
    amount_in: int
    amount_out: int
    gain_wei: int
    cost_wei: int
    miner: Address = ""
    via_flashbots: Optional[bool] = False
    via_flashloan: bool = False
    privacy: Optional[str] = None

    @property
    def profit_wei(self) -> int:
        return self.gain_wei - self.cost_wei


@dataclass
class LiquidationRecord:
    """A detected fixed-spread liquidation."""

    block_number: int
    tx_hash: Hash32
    platform: str
    liquidator: Address
    borrower: Address
    debt_token: str
    debt_repaid: int
    collateral_token: str
    collateral_seized: int
    gain_wei: int
    cost_wei: int
    miner: Address = ""
    via_flashbots: Optional[bool] = False
    via_flashloan: bool = False
    privacy: Optional[str] = None

    @property
    def profit_wei(self) -> int:
        return self.gain_wei - self.cost_wei


#: record constructors keyed by the serialized ``kind`` tag
RECORD_KINDS = {"sandwich": SandwichRecord,
                "arbitrage": ArbitrageRecord,
                "liquidation": LiquidationRecord}

#: per-record-class field names, resolved once — row serialization is
#: the dataset's hot path and ``dataclasses.fields`` is not cheap
_ROW_FIELDS: Dict[Type[object], Tuple[str, ...]] = {}


def _record_row(record: object) -> Dict[str, object]:
    """One record as a field-name → value dict.

    Equivalent to ``dataclasses.asdict`` for these records — every
    field value is an immutable scalar or a tuple of strings, so the
    deep copy ``asdict`` performs bought nothing but time (~40% of the
    detection stage, profiled).
    """
    cls = type(record)
    names = _ROW_FIELDS.get(cls)
    if names is None:
        names = tuple(f.name for f in fields(cls))  # type: ignore[arg-type]
        _ROW_FIELDS[cls] = names
    return {name: getattr(record, name) for name in names}


@dataclass
class MevDataset:
    """All detected MEV over a block range, with join labels applied."""

    sandwiches: List[SandwichRecord] = field(default_factory=list)
    arbitrages: List[ArbitrageRecord] = field(default_factory=list)
    liquidations: List[LiquidationRecord] = field(default_factory=list)
    #: coverage/resilience accounting for the run that built this dataset
    quality: Optional["DataQualityReport"] = None

    def all_records(self) -> List[object]:
        return [*self.sandwiches, *self.arbitrages, *self.liquidations]

    def totals(self) -> Dict[str, int]:
        return {"sandwich": len(self.sandwiches),
                "arbitrage": len(self.arbitrages),
                "liquidation": len(self.liquidations),
                "total": len(self.sandwiches) + len(self.arbitrages)
                + len(self.liquidations)}

    def count(self, strategy: str, via_flashbots: Optional[bool] = None,
              via_flashloan: Optional[bool] = None) -> int:
        """Count records of one strategy with optional label filters."""
        records: Iterable = {"sandwich": self.sandwiches,
                             "arbitrage": self.arbitrages,
                             "liquidation": self.liquidations}[strategy]
        total = 0
        for record in records:
            if via_flashbots is not None and \
                    record.via_flashbots != via_flashbots:
                continue
            if via_flashloan is not None and \
                    record.via_flashloan != via_flashloan:
                continue
            total += 1
        return total

    def records_equal(self, other: "MevDataset") -> bool:
        """Record-level equality, ignoring the quality report."""
        return (self.sandwiches == other.sandwiches
                and self.arbitrages == other.arbitrages
                and self.liquidations == other.liquidations)

    # Row serialization (shared by JSONL export and checkpoints) ----------

    def to_rows(self) -> List[Dict[str, object]]:
        """Every record as a JSON-ready dict tagged with its kind."""
        rows: List[Dict[str, object]] = []
        for kind, records in (("sandwich", self.sandwiches),
                              ("arbitrage", self.arbitrages),
                              ("liquidation", self.liquidations)):
            for record in records:
                row = _record_row(record)
                row["kind"] = kind
                rows.append(row)
        return rows

    def add_row(self, row: Dict[str, object]) -> None:
        """Append one tagged row (inverse of :meth:`to_rows`)."""
        data = dict(row)
        kind = data.pop("kind")
        for key in ("venues", "token_cycle"):
            if key in data and isinstance(data[key], list):
                data[key] = tuple(data[key])
        buckets = {"sandwich": self.sandwiches,
                   "arbitrage": self.arbitrages,
                   "liquidation": self.liquidations}
        buckets[kind].append(RECORD_KINDS[kind](**data))

    # Persistence ---------------------------------------------------------

    def dump_jsonl(self, stream: IO[str]) -> None:
        """Write one JSON object per record, tagged with its kind."""
        for row in self.to_rows():
            stream.write(json.dumps(row) + "\n")

    @classmethod
    def load_jsonl(cls, stream: IO[str]) -> "MevDataset":
        dataset = cls()
        for line in stream:
            line = line.strip()
            if not line:
                continue
            dataset.add_row(json.loads(line))
        return dataset
