"""The end-to-end measurement pipeline (paper Figure 2).

``MevInspector`` consumes exactly the three data sources the paper
collects — an archive node, the pending-transaction trace, and the public
Flashbots blocks dataset — runs every detection heuristic over a block
range, and applies the joins (flash loans, Flashbots labels, privacy
inference).  It never touches simulator ground truth.

The run is engineered for imperfect sources, the way the real study's
five-month crawl had to be:

* the block range is processed in **chunks**; each completed chunk is
  written to an atomic JSON checkpoint, so a crashed run restarted with
  ``resume=True`` skips finished work and still produces a bit-identical
  dataset;
* a chunk whose source data is permanently unavailable (archive
  blackout, breaker open, retries exhausted) is recorded as a *failed
  range* and the run continues — degradation is visible, never fatal;
* every run attaches a :class:`DataQualityReport` covering per-source
  coverage, retries, breaker trips, gap ranges, and the count of
  ``unknown``/``unobserved`` labels the joins were forced to emit.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List, Optional, Set, Tuple, Union

from repro.chain.node import ArchiveNode
from repro.chain.p2p import MempoolObserver
from repro.core.datasets import MevDataset
from repro.core.flashbots_join import annotate_flashbots
from repro.core.heuristics.arbitrage import detect_arbitrages
from repro.core.heuristics.flashloan import detect_flash_loan_txs
from repro.core.heuristics.liquidation import detect_liquidations
from repro.core.heuristics.sandwich import detect_sandwiches
from repro.core.private_inference import annotate_privacy
from repro.core.profit import PriceService
from repro.faults.errors import DataSourceError
from repro.flashbots.api import FlashbotsBlocksApi
from repro.reliability.checkpoint import CheckpointError, CheckpointStore
from repro.reliability.quality import DataQualityReport, SourceQuality
from repro.reliability.retry import RetryExhaustedError

BlockRange = Tuple[int, int]

#: errors that mark a chunk as permanently failed instead of crashing
CHUNK_FAILURES = (DataSourceError, RetryExhaustedError)


def plan_chunks(first_block: int, last_block: int,
                chunk_size: Optional[int]) -> List[BlockRange]:
    """Inclusive, contiguous chunk ranges covering the block span."""
    if last_block < first_block:
        return []
    size = chunk_size if chunk_size and chunk_size > 0 else \
        last_block - first_block + 1
    return [(lo, min(lo + size - 1, last_block))
            for lo in range(first_block, last_block + 1, size)]


def _clip_ranges(ranges: Any, first_block: int,
                 last_block: int) -> Tuple[BlockRange, ...]:
    """Ranges intersected with the run span; empty intersections drop."""
    clipped = []
    for lo, hi in ranges or ():
        lo, hi = max(int(lo), first_block), min(int(hi), last_block)
        if lo <= hi:
            clipped.append((lo, hi))
    return tuple(sorted(clipped))


def _blocks_in(ranges: Tuple[BlockRange, ...]) -> int:
    return sum(hi - lo + 1 for lo, hi in ranges)


class MevInspector:
    """Runs the full detection + labelling pipeline over a chain."""

    def __init__(self, node: ArchiveNode, prices: PriceService,
                 flashbots_api: Optional[FlashbotsBlocksApi] = None,
                 observer: Optional[MempoolObserver] = None) -> None:
        self.node = node
        self.prices = prices
        self.flashbots_api = flashbots_api
        self.observer = observer

    # The run -------------------------------------------------------------

    def run(self, from_block: Optional[int] = None,
            to_block: Optional[int] = None,
            chunk_size: Optional[int] = None,
            checkpoint: Union[CheckpointStore, str, Path, None] = None,
            resume: bool = False) -> MevDataset:
        """Detect all MEV in the range and apply every join.

        With ``chunk_size`` the range is processed in that many blocks at
        a time; with ``checkpoint`` each completed chunk is persisted and
        ``resume=True`` continues a crashed run from where it stopped.
        The chunked (and resumed) run is record-identical to a one-shot
        run over the same range.
        """
        store = self._store(checkpoint)
        bounds = self._resolve_range(from_block, to_block)
        if bounds is None:
            dataset = MevDataset()
            dataset.quality = DataQualityReport()
            return dataset
        first, last = bounds
        chunks = plan_chunks(first, last, chunk_size)

        quality = DataQualityReport(
            from_block=first, to_block=last,
            chunk_size=chunk_size or (last - first + 1),
            chunks_total=len(chunks))
        state = self._load_state(store, first, last, chunk_size, resume,
                                 quality)

        failed: List[BlockRange] = []
        for chunk in chunks:
            chunk_key = f"{chunk[0]}-{chunk[1]}"
            if chunk_key in state:
                continue
            partial = self._detect_chunk(chunk, failed)
            if partial is None:
                continue
            state[chunk_key] = partial
            if store is not None:
                self._save_state(store, first, last, chunk_size, state)

        dataset = self._assemble(chunks, state)
        self._apply_joins(dataset, chunks, state, quality)
        # Quality is finalized after the joins so the snapshot of each
        # source's retry/breaker counters includes the join traffic.
        self._finish_quality(quality, chunks, state, failed)
        dataset.quality = quality
        return dataset

    # Range & chunk machinery ---------------------------------------------

    @staticmethod
    def _store(checkpoint: Union[CheckpointStore, str, Path, None],
               ) -> Optional[CheckpointStore]:
        if checkpoint is None or isinstance(checkpoint, CheckpointStore):
            return checkpoint
        return CheckpointStore(checkpoint)

    def _resolve_range(self, from_block: Optional[int],
                       to_block: Optional[int],
                       ) -> Optional[BlockRange]:
        first = from_block if from_block is not None else \
            self.node.earliest_block_number()
        last = to_block if to_block is not None else \
            self.node.latest_block_number()
        if first is None or last is None or last < first:
            return None
        return (first, last)

    def _detect_chunk(self, chunk: BlockRange,
                      failed: List[BlockRange],
                      ) -> Optional[Dict[str, Any]]:
        """One chunk's detections as a checkpointable payload.

        Returns ``None`` (and records the failed range) when the archive
        cannot serve the chunk even through the resilience layer.
        """
        lo, hi = chunk
        try:
            partial = MevDataset(
                sandwiches=detect_sandwiches(self.node, self.prices,
                                             lo, hi),
                arbitrages=detect_arbitrages(self.node, self.prices,
                                             lo, hi),
                liquidations=detect_liquidations(self.node, self.prices,
                                                 lo, hi),
            )
            flash_txs = detect_flash_loan_txs(self.node, lo, hi)
        except CHUNK_FAILURES:
            failed.append(chunk)
            return None
        return {"rows": partial.to_rows(),
                "flash_txs": sorted(flash_txs)}

    @staticmethod
    def _load_state(store: Optional[CheckpointStore], first: int,
                    last: int, chunk_size: Optional[int], resume: bool,
                    quality: DataQualityReport) -> Dict[str, Any]:
        if store is None or not resume:
            return {}
        document = store.load()
        if document is None:
            return {}
        expected = {"from_block": first, "to_block": last,
                    "chunk_size": chunk_size}
        actual = {key: document.get(key) for key in expected}
        if actual != expected:
            raise CheckpointError(
                f"checkpoint {store.path} was written for "
                f"{actual}, cannot resume a run over {expected}")
        state = dict(document.get("chunks") or {})
        quality.resumed = True
        quality.chunks_resumed = len(state)
        return state

    @staticmethod
    def _save_state(store: CheckpointStore, first: int, last: int,
                    chunk_size: Optional[int],
                    state: Dict[str, Any]) -> None:
        store.save({"from_block": first, "to_block": last,
                    "chunk_size": chunk_size, "chunks": state})

    @staticmethod
    def _assemble(chunks: List[BlockRange],
                  state: Dict[str, Any]) -> MevDataset:
        """Completed chunks merged in block order."""
        dataset = MevDataset()
        for chunk in chunks:
            payload = state.get(f"{chunk[0]}-{chunk[1]}")
            if payload is None:
                continue
            for row in payload["rows"]:
                dataset.add_row(row)
        return dataset

    # Joins ---------------------------------------------------------------

    def _apply_joins(self, dataset: MevDataset,
                     chunks: List[BlockRange], state: Dict[str, Any],
                     quality: DataQualityReport) -> None:
        flash_txs: Set[str] = set()
        for chunk in chunks:
            payload = state.get(f"{chunk[0]}-{chunk[1]}")
            if payload is not None:
                flash_txs.update(payload["flash_txs"])
        self._join_flash_loans(dataset, flash_txs)
        if self.flashbots_api is not None:
            annotate_flashbots(dataset, self.flashbots_api)
        if self.observer is not None:
            annotate_privacy(dataset, self.observer)
        quality.unknown_flashbots_records = sum(
            1 for record in dataset.all_records()
            if record.via_flashbots is None)
        quality.unobserved_records = sum(
            1 for record in dataset.all_records()
            if record.privacy == "unobserved")

    @staticmethod
    def _join_flash_loans(dataset: MevDataset,
                          flash_txs: Set[str]) -> None:
        if not flash_txs:
            return
        for record in dataset.arbitrages:
            record.via_flashloan = record.tx_hash in flash_txs
        for record in dataset.liquidations:
            record.via_flashloan = record.tx_hash in flash_txs
        # Sandwiches structurally cannot use flash loans (two separate
        # transactions); the join still runs as a sanity check.
        for record in dataset.sandwiches:
            record.via_flashloan = (record.front_tx in flash_txs
                                    or record.back_tx in flash_txs)

    # Quality accounting --------------------------------------------------

    def _finish_quality(self, quality: DataQualityReport,
                        chunks: List[BlockRange], state: Dict[str, Any],
                        failed: List[BlockRange]) -> None:
        first, last = quality.from_block, quality.to_block
        total_blocks = last - first + 1
        quality.chunks_completed = sum(
            1 for chunk in chunks if f"{chunk[0]}-{chunk[1]}" in state)
        quality.failed_ranges = tuple(sorted(failed))

        archive = quality.source("archive")
        covered = total_blocks - _blocks_in(quality.failed_ranges)
        archive.coverage = covered / total_blocks
        archive.gap_ranges = quality.failed_ranges
        self._apply_caller_stats(archive, self.node)

        if self.flashbots_api is not None:
            flashbots = quality.source("flashbots")
            gaps = _clip_ranges(
                self._coverage_gaps(self.flashbots_api), first, last)
            flashbots.gap_ranges = gaps
            flashbots.coverage = \
                (total_blocks - _blocks_in(gaps)) / total_blocks
            self._apply_caller_stats(flashbots, self.flashbots_api)

        if self.observer is not None:
            mempool = quality.source("mempool")
            observed_coverage = getattr(self.observer,
                                        "observed_coverage", None)
            if observed_coverage is not None:
                mempool.coverage = observed_coverage()
            mempool.gap_ranges = _clip_ranges(
                getattr(self.observer, "downtime_ranges", ()),
                first, last)
            self._apply_caller_stats(mempool, self.observer)

    @staticmethod
    def _coverage_gaps(api: FlashbotsBlocksApi) -> List[BlockRange]:
        coverage_gaps = getattr(api, "coverage_gaps", None)
        return [] if coverage_gaps is None else list(coverage_gaps())

    @staticmethod
    def _apply_caller_stats(entry: SourceQuality, source: object) -> None:
        """Copy retry/breaker counters off a ``Reliable*`` wrapper."""
        caller = getattr(source, "caller", None)
        if caller is None:
            return
        stats = caller.stats
        entry.requests = stats.requests
        entry.retries = stats.retries
        entry.failed_attempts = stats.failed_attempts
        entry.exhausted = stats.exhausted
        entry.simulated_backoff_s = stats.simulated_backoff_s
        entry.breaker_trips = caller.breaker_trips
