"""The end-to-end measurement pipeline (paper Figure 2).

``MevInspector`` consumes exactly the three data sources the paper
collects — an archive node, the pending-transaction trace, and the public
Flashbots blocks dataset — runs every detection heuristic over a block
range, and applies the joins (flash loans, Flashbots labels, privacy
inference).  It never touches simulator ground truth.

The run is engineered for imperfect sources, the way the real study's
five-month crawl had to be:

* the block range is processed in **chunks**; each completed chunk is
  written to an atomic JSON checkpoint, so a crashed run restarted with
  ``resume=True`` skips finished work and still produces a bit-identical
  dataset;
* chunks execute through a pluggable :mod:`repro.engine` executor —
  serial, process-parallel (``workers=N``), or disk-cached
  (``cache_dir``) — and every executor is guaranteed to produce the
  same dataset and quality ledger, because each chunk runs under
  chunk-isolated resilience state and results merge in chunk order;
* a chunk whose source data is permanently unavailable (archive
  blackout, breaker open, retries exhausted) is recorded as a *failed
  range* and the run continues — degradation is visible, never fatal;
* every run attaches a :class:`DataQualityReport` covering per-source
  coverage, retries, breaker trips, gap ranges, and the count of
  ``unknown``/``unobserved`` labels the joins were forced to emit.

The execution contract can be passed as loose keyword arguments (the
historical surface) or as one frozen :class:`RunConfig` — the CLI
builds a config once and threads it through unchanged.
"""

from __future__ import annotations

from dataclasses import asdict
from pathlib import Path
from typing import Any, Dict, List, Optional, Set, Tuple, Union

from repro.chain.node import ArchiveNode
from repro.chain.p2p import MempoolObserver
from repro.core.datasets import MevDataset
from repro.core.flashbots_join import annotate_flashbots
from repro.core.private_inference import annotate_privacy
from repro.core.profit import PriceService
from repro.engine.config import RunConfig, resolve_config
from repro.engine.executors import ChunkStats, Executor, make_executor
from repro.engine.merge import (
    chunk_key,
    merge_flash_txs,
    merge_rows,
    sum_chunk_stats,
)
from repro.engine.runner import CHUNK_FAILURES, ChunkRunner
from repro.flashbots.api import FlashbotsBlocksApi
from repro.reliability.checkpoint import CheckpointError, CheckpointStore
from repro.reliability.quality import DataQualityReport, SourceQuality

__all__ = ["CHUNK_FAILURES", "MevInspector", "apply_joins",
           "finish_quality", "plan_chunks"]

BlockRange = Tuple[int, int]


def plan_chunks(first_block: int, last_block: int,
                chunk_size: Optional[int]) -> List[BlockRange]:
    """Inclusive, contiguous chunk ranges covering the block span.

    ``chunk_size=None`` and ``chunk_size=0`` both mean "the whole range
    in one chunk"; negative sizes are a caller bug and rejected loudly
    instead of being silently coerced.
    """
    if chunk_size is not None and chunk_size < 0:
        raise ValueError(
            f"chunk_size must be >= 0 or None, got {chunk_size}")
    if last_block < first_block:
        return []
    size = chunk_size or (last_block - first_block + 1)
    return [(lo, min(lo + size - 1, last_block))
            for lo in range(first_block, last_block + 1, size)]


def _clip_ranges(ranges: Any, first_block: int,
                 last_block: int) -> Tuple[BlockRange, ...]:
    """Ranges intersected with the run span; empty intersections drop."""
    clipped = []
    for lo, hi in ranges or ():
        lo, hi = max(int(lo), first_block), min(int(hi), last_block)
        if lo <= hi:
            clipped.append((lo, hi))
    return tuple(sorted(clipped))


def _blocks_in(ranges: Tuple[BlockRange, ...]) -> int:
    return sum(hi - lo + 1 for lo, hi in ranges)


def apply_joins(dataset: MevDataset, flash_txs: Set[str],
                quality: DataQualityReport,
                flashbots_api: Optional[FlashbotsBlocksApi],
                observer: Optional[MempoolObserver]) -> None:
    """Apply every post-detection join and count degraded labels.

    Shared verbatim by the batch pipeline and :mod:`repro.stream` — the
    streaming engine converging bit-identically on the batch dataset
    depends on both paths labelling through this one function.
    """
    _join_flash_loans(dataset, flash_txs)
    if flashbots_api is not None:
        annotate_flashbots(dataset, flashbots_api)
    if observer is not None:
        annotate_privacy(dataset, observer)
    quality.unknown_flashbots_records = sum(
        1 for record in dataset.all_records()
        if record.via_flashbots is None)
    quality.unobserved_records = sum(
        1 for record in dataset.all_records()
        if record.privacy == "unobserved")


def _join_flash_loans(dataset: MevDataset, flash_txs: Set[str]) -> None:
    if not flash_txs:
        return
    for record in dataset.arbitrages:
        record.via_flashloan = record.tx_hash in flash_txs
    for record in dataset.liquidations:
        record.via_flashloan = record.tx_hash in flash_txs
    # Sandwiches structurally cannot use flash loans (two separate
    # transactions); the join still runs as a sanity check.
    for record in dataset.sandwiches:
        record.via_flashloan = (record.front_tx in flash_txs
                                or record.back_tx in flash_txs)


def finish_quality(quality: DataQualityReport, chunks: List[BlockRange],
                   state: Dict[str, Any], failed: List[BlockRange],
                   detection_stats: ChunkStats, node: ArchiveNode,
                   flashbots_api: Optional[FlashbotsBlocksApi],
                   observer: Optional[MempoolObserver]) -> None:
    """Finalize the quality ledger for one completed run.

    Like :func:`apply_joins`, this is the single implementation both
    the batch and streaming pipelines finish through.
    """
    first, last = quality.from_block, quality.to_block
    total_blocks = last - first + 1
    quality.chunks_completed = sum(
        1 for chunk in chunks if chunk_key(chunk) in state)
    quality.failed_ranges = tuple(sorted(failed))

    archive = quality.source("archive")
    covered = total_blocks - _blocks_in(quality.failed_ranges)
    archive.coverage = covered / total_blocks
    archive.gap_ranges = quality.failed_ranges
    _apply_caller_stats(archive, node)
    # Detection traffic ran inside the executor (possibly in worker
    # processes) under chunk-isolated state; fold its ledger into
    # the parent's own (range resolution + joins) counters.
    archive.requests += detection_stats.requests
    archive.retries += detection_stats.retries
    archive.failed_attempts += detection_stats.failed_attempts
    archive.exhausted += detection_stats.exhausted
    archive.simulated_backoff_s += detection_stats.simulated_backoff_s
    archive.breaker_trips += detection_stats.breaker_trips

    if flashbots_api is not None:
        flashbots = quality.source("flashbots")
        gaps = _clip_ranges(_coverage_gaps(flashbots_api), first, last)
        flashbots.gap_ranges = gaps
        flashbots.coverage = \
            (total_blocks - _blocks_in(gaps)) / total_blocks
        _apply_caller_stats(flashbots, flashbots_api)

    if observer is not None:
        mempool = quality.source("mempool")
        observed_coverage = getattr(observer, "observed_coverage", None)
        if observed_coverage is not None:
            mempool.coverage = observed_coverage()
        mempool.gap_ranges = _clip_ranges(
            getattr(observer, "downtime_ranges", ()), first, last)
        _apply_caller_stats(mempool, observer)


def _coverage_gaps(api: FlashbotsBlocksApi) -> List[BlockRange]:
    coverage_gaps = getattr(api, "coverage_gaps", None)
    return [] if coverage_gaps is None else list(coverage_gaps())


def _apply_caller_stats(entry: SourceQuality, source: object) -> None:
    """Copy retry/breaker counters off a ``Reliable*`` wrapper."""
    caller = getattr(source, "caller", None)
    if caller is None:
        return
    stats = caller.stats
    entry.requests = stats.requests
    entry.retries = stats.retries
    entry.failed_attempts = stats.failed_attempts
    entry.exhausted = stats.exhausted
    entry.simulated_backoff_s = stats.simulated_backoff_s
    entry.breaker_trips = caller.breaker_trips


class MevInspector:
    """Runs the full detection + labelling pipeline over a chain."""

    def __init__(self, node: ArchiveNode, prices: PriceService,
                 flashbots_api: Optional[FlashbotsBlocksApi] = None,
                 observer: Optional[MempoolObserver] = None) -> None:
        self.node = node
        self.prices = prices
        self.flashbots_api = flashbots_api
        self.observer = observer

    # The run -------------------------------------------------------------

    def run(self, from_block: Optional[int] = None,
            to_block: Optional[int] = None,
            chunk_size: Optional[int] = None,
            checkpoint: Union[CheckpointStore, str, Path, None] = None,
            resume: bool = False,
            workers: int = 1,
            cache_dir: Union[str, Path, None] = None,
            cache_key: Optional[str] = None,
            config: Optional[RunConfig] = None) -> MevDataset:
        """Detect all MEV in the range and apply every join.

        With ``chunk_size`` the range is processed in that many blocks
        at a time; with ``checkpoint`` each completed chunk is persisted
        and ``resume=True`` continues a crashed run from where it
        stopped.  ``workers=N`` fans chunks out over N worker processes
        and ``cache_dir`` memoizes per-chunk artifacts on disk — both
        are guaranteed bit-identical to the serial, uncached run.

        The canonical call passes one :class:`RunConfig` (see
        :mod:`repro.engine.config`); the loose keyword arguments are a
        deprecated compatibility layer folded into a config by
        :func:`~repro.engine.config.resolve_config`, never mixed with
        an explicit ``config=``.
        """
        config = resolve_config(
            config, from_block=from_block, to_block=to_block,
            chunk_size=chunk_size, checkpoint=checkpoint,
            resume=resume, workers=workers,
            cache_dir=cache_dir, cache_key=cache_key)

        store = self._store(config.checkpoint)
        bounds = self._resolve_range(config.from_block, config.to_block)
        if bounds is None:
            dataset = MevDataset()
            dataset.quality = DataQualityReport()
            return dataset
        first, last = bounds
        chunks = plan_chunks(first, last, config.chunk_size)

        quality = DataQualityReport(
            from_block=first, to_block=last,
            chunk_size=config.chunk_size or (last - first + 1),
            chunks_total=len(chunks))
        state = self._load_state(store, first, last, config.chunk_size,
                                 config.resume, quality)

        failed: List[BlockRange] = []
        chunk_stats: Dict[str, ChunkStats] = {}
        pending = [chunk for chunk in chunks
                   if chunk_key(chunk) not in state]
        runner = ChunkRunner.for_pipeline(self.node, self.prices)
        if pending:
            # Build the chain's read index once, before any fan-out, so
            # forked workers inherit it instead of rebuilding per
            # process.  A fully-resumed run skips it: every chunk
            # replays from the checkpoint without touching the archive.
            runner.warm_index()
        executor = self._executor(config, runner)
        for result in executor.execute(runner, pending):
            key = chunk_key(result.chunk)
            chunk_stats[key] = result.stats
            if result.failed:
                failed.append(result.chunk)
                continue
            state[key] = result.payload
            if store is not None:
                self._save_state(store, first, last, config.chunk_size,
                                 state)

        dataset = merge_rows(MevDataset(), chunks, state)
        self._apply_joins(dataset, chunks, state, quality)
        # Quality is finalized after the joins so the snapshot of each
        # source's retry/breaker counters includes the join traffic.
        self._finish_quality(quality, chunks, state, failed,
                             sum_chunk_stats(chunks, chunk_stats))
        dataset.quality = quality
        return dataset

    # Range & chunk machinery ---------------------------------------------

    def _executor(self, config: RunConfig,
                  runner: ChunkRunner) -> Executor:
        digest = None
        if config.cache_dir is not None:
            retry = None if runner.retry is None else \
                asdict(runner.retry)
            digest = config.artifact_digest(extra={
                "retry": retry,
                "breaker": [runner.failure_threshold,
                            runner.cooldown_calls]})
        return make_executor(workers=config.workers,
                             cache_dir=config.cache_dir, digest=digest)

    @staticmethod
    def _store(checkpoint: Union[CheckpointStore, str, Path, None],
               ) -> Optional[CheckpointStore]:
        if checkpoint is None or isinstance(checkpoint, CheckpointStore):
            return checkpoint
        return CheckpointStore(checkpoint)

    def _resolve_range(self, from_block: Optional[int],
                       to_block: Optional[int],
                       ) -> Optional[BlockRange]:
        first = from_block if from_block is not None else \
            self.node.earliest_block_number()
        last = to_block if to_block is not None else \
            self.node.latest_block_number()
        if first is None or last is None or last < first:
            return None
        return (first, last)

    @staticmethod
    def _load_state(store: Optional[CheckpointStore], first: int,
                    last: int, chunk_size: Optional[int], resume: bool,
                    quality: DataQualityReport) -> Dict[str, Any]:
        if store is None or not resume:
            return {}
        document = store.load()
        if document is None:
            return {}
        expected = {"from_block": first, "to_block": last,
                    "chunk_size": chunk_size}
        actual = {key: document.get(key) for key in expected}
        if actual != expected:
            raise CheckpointError(
                f"checkpoint {store.path} was written for "
                f"{actual}, cannot resume a run over {expected}")
        state = dict(document.get("chunks") or {})
        quality.resumed = True
        quality.chunks_resumed = len(state)
        return state

    @staticmethod
    def _save_state(store: CheckpointStore, first: int, last: int,
                    chunk_size: Optional[int],
                    state: Dict[str, Any]) -> None:
        store.save({"from_block": first, "to_block": last,
                    "chunk_size": chunk_size, "chunks": state})

    # Joins & quality (delegating to the shared module functions) ---------

    def _apply_joins(self, dataset: MevDataset,
                     chunks: List[BlockRange], state: Dict[str, Any],
                     quality: DataQualityReport) -> None:
        apply_joins(dataset, merge_flash_txs(chunks, state), quality,
                    self.flashbots_api, self.observer)

    def _finish_quality(self, quality: DataQualityReport,
                        chunks: List[BlockRange], state: Dict[str, Any],
                        failed: List[BlockRange],
                        detection_stats: ChunkStats) -> None:
        finish_quality(quality, chunks, state, failed, detection_stats,
                       self.node, self.flashbots_api, self.observer)
