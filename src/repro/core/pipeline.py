"""The end-to-end measurement pipeline (paper Figure 2).

``MevInspector`` consumes exactly the three data sources the paper
collects — an archive node, the pending-transaction trace, and the public
Flashbots blocks dataset — runs every detection heuristic over a block
range, and applies the joins (flash loans, Flashbots labels, privacy
inference).  It never touches simulator ground truth.
"""

from __future__ import annotations

from typing import Optional

from repro.chain.node import ArchiveNode
from repro.chain.p2p import MempoolObserver
from repro.core.datasets import MevDataset
from repro.core.flashbots_join import annotate_flashbots
from repro.core.heuristics.arbitrage import detect_arbitrages
from repro.core.heuristics.flashloan import detect_flash_loan_txs
from repro.core.heuristics.liquidation import detect_liquidations
from repro.core.heuristics.sandwich import detect_sandwiches
from repro.core.private_inference import annotate_privacy
from repro.core.profit import PriceService
from repro.flashbots.api import FlashbotsBlocksApi


class MevInspector:
    """Runs the full detection + labelling pipeline over a chain."""

    def __init__(self, node: ArchiveNode, prices: PriceService,
                 flashbots_api: Optional[FlashbotsBlocksApi] = None,
                 observer: Optional[MempoolObserver] = None) -> None:
        self.node = node
        self.prices = prices
        self.flashbots_api = flashbots_api
        self.observer = observer

    def run(self, from_block: Optional[int] = None,
            to_block: Optional[int] = None) -> MevDataset:
        """Detect all MEV in the range and apply every join."""
        dataset = MevDataset(
            sandwiches=detect_sandwiches(self.node, self.prices,
                                         from_block, to_block),
            arbitrages=detect_arbitrages(self.node, self.prices,
                                         from_block, to_block),
            liquidations=detect_liquidations(self.node, self.prices,
                                             from_block, to_block),
        )
        self._join_flash_loans(dataset, from_block, to_block)
        if self.flashbots_api is not None:
            annotate_flashbots(dataset, self.flashbots_api)
        if self.observer is not None:
            annotate_privacy(dataset, self.observer)
        return dataset

    def _join_flash_loans(self, dataset: MevDataset,
                          from_block: Optional[int],
                          to_block: Optional[int]) -> None:
        flash_txs = detect_flash_loan_txs(self.node, from_block,
                                          to_block)
        if not flash_txs:
            return
        for record in dataset.arbitrages:
            record.via_flashloan = record.tx_hash in flash_txs
        for record in dataset.liquidations:
            record.via_flashloan = record.tx_hash in flash_txs
        # Sandwiches structurally cannot use flash loans (two separate
        # transactions); the join still runs as a sanity check.
        for record in dataset.sandwiches:
            record.via_flashloan = (record.front_tx in flash_txs
                                    or record.back_tx in flash_txs)
