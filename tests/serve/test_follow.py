"""End-to-end CLI: ``repro serve --follow --fault-profile reorg``.

The smoke path is the whole serving story in one process: simulate
the window, feed the served store live through seeded reorgs while
probing retracted heights over real HTTP, finalize, and gate on the
stream-built store serving byte-identical responses to a batch-built
one.  Exit code 0 *is* the acceptance criterion.
"""

from repro.cli import main

from tests.serve.conftest import CHAOS_SEED

SMALL = ["--bpm", "4", "--seed", "5"]


class TestServeCli:
    def test_follow_smoke_gate_passes(self, capsys):
        code = main(["serve", "--follow", "--fault-profile", "reorg",
                     "--fault-seed", str(CHAOS_SEED), "--smoke"]
                    + SMALL)
        captured = capsys.readouterr()
        assert code == 0
        assert ("serve responses identical batch vs stream: yes"
                in captured.out)
        assert "retraction probes (0 errors)" in captured.err

    def test_smoke_requires_follow(self, capsys):
        assert main(["serve", "--smoke"] + SMALL) == 2
        assert "--follow" in capsys.readouterr().err

    def test_fault_profile_requires_follow(self, capsys):
        assert main(["serve", "--fault-profile", "reorg"] + SMALL) == 2
        assert "--follow" in capsys.readouterr().err
