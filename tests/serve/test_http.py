"""The asyncio HTTP front end: framing, keep-alive, conditional GETs.

Everything here talks to a real socket on an ephemeral port — these
are wire tests, not handler-function tests.  The retraction test is
the transport half of the supersede rule: a stale ETag must stop
revalidating the moment the store mutates.
"""

import asyncio

import pytest

from repro.serve import (
    MevHttpServer,
    MevQueryService,
    build_mix,
    probe_once,
    serve_and_replay,
)

from tests.serve.test_store import rebuild_by_hand


def run(coroutine):
    return asyncio.run(coroutine)


@pytest.fixture()
def served(batch_service):
    """A started server (own mutable store clone) + teardown."""
    store = rebuild_by_hand(batch_service.store)
    store.set_quality(batch_service.store.coverage()["quality"])
    service = MevQueryService(store)
    return service


async def _with_server(service, body):
    server = MevHttpServer(service)
    await server.start()
    try:
        return await body(server)
    finally:
        await server.stop()


async def _raw_exchange(server, payload: bytes) -> bytes:
    reader, writer = await asyncio.open_connection(server.host,
                                                   server.port)
    writer.write(payload)
    await writer.drain()
    writer.write_eof()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    return raw


class TestWire:
    def test_etag_conditional_roundtrip(self, served):
        async def body(server):
            status, etag, first = await probe_once(
                server.host, server.port, "/v1/aggregates/table1")
            assert status == 200 and etag and first
            status, same_etag, empty = await probe_once(
                server.host, server.port, "/v1/aggregates/table1",
                if_none_match=etag)
            assert (status, same_etag, empty) == (304, etag, b"")

        run(_with_server(served, body))

    def test_retraction_invalidates_stale_etag(self, served):
        height = next(h for h in range(*served.store.bounds())
                      if served.store.rows_at(h))

        async def body(server):
            target = f"/v1/blocks/{height}/mev"
            status, etag, stale_body = await probe_once(
                server.host, server.port, target)
            assert status == 200 and b'"count":0' not in stale_body
            served.store.retract_block(height)
            status, fresh_etag, fresh = await probe_once(
                server.host, server.port, target, if_none_match=etag)
            assert status == 200  # stale ETag missed — no 304
            assert fresh_etag != etag
            assert b'"count":0' in fresh

        run(_with_server(served, body))

    def test_keep_alive_serves_many_on_one_connection(self, served):
        async def body(server):
            from repro.serve.loadgen import _Client
            client = _Client(server.host, server.port)
            await client.connect()
            try:
                for target in ("/v1/coverage", "/v1/mev?limit=5",
                               "/v1/aggregates/table1"):
                    status, _, payload = await client.get(target, None)
                    assert status == 200 and payload
            finally:
                await client.close()
            assert server.connections == 1
            assert server.requests == 3

        run(_with_server(served, body))

    @pytest.mark.parametrize("request_head,expected", [
        (b"POST /v1/mev HTTP/1.1\r\nHost: x\r\n\r\n", b"405"),
        (b"GET /v1/mev HTTP/2.0\r\nHost: x\r\n\r\n", b"505"),
        (b"GET /nope HTTP/1.1\r\nHost: x\r\n\r\n", b"404"),
        (b"GET /v1/mev HTTP/1.1\r\nHuge: " + b"x" * 20000
         + b"\r\n\r\n", b"431"),
    ])
    def test_transport_errors(self, served, request_head, expected):
        async def body(server):
            raw = await _raw_exchange(server, request_head)
            status_line = raw.split(b"\r\n", 1)[0]
            assert expected in status_line

        run(_with_server(served, body))

    def test_no_date_header_ever(self, served):
        async def body(server):
            raw = await _raw_exchange(
                server, b"GET /v1/coverage HTTP/1.1\r\n"
                b"Connection: close\r\n\r\n")
            head = raw.split(b"\r\n\r\n", 1)[0].lower()
            assert b"date:" not in head

        run(_with_server(served, body))


class TestLoadReplay:
    def test_seeded_mix_replays_cleanly(self, served):
        lo, hi = served.store.bounds()
        mix = build_mix(lo, hi, requests=60, seed=3)
        again = build_mix(lo, hi, requests=60, seed=3)
        assert mix == again  # the mix is seed-deterministic
        report = run(serve_and_replay(served, mix, seed=3,
                                      connections=3))
        assert report.errors == 0
        # walks and conditional revalidations add extra requests
        assert report.requests >= len(mix)
        assert report.not_modified > 0
        assert report.p99_ms >= report.p50_ms > 0
        assert report.qps > 0
        document = report.to_dict()
        assert document["by_kind"] and document["connections"] == 3

    def test_empty_range_mix_is_refused(self):
        with pytest.raises(ValueError):
            build_mix(10, 9)
