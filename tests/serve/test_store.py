"""ColumnStore: ingest/retract atomicity, cursors, aggregates.

The pagination identity — a full cursor walk visits exactly the rows
of the one-shot range read, in order, no duplicates, no gaps — is
pinned as a property over random ranges and page sizes.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve import ColumnStore, StoreReconcileError
from repro.serve.store import CursorError, decode_cursor, encode_cursor


def rebuild_by_hand(source):
    """Re-ingest a built store block by block into a fresh one."""
    store = ColumnStore()
    lo, hi = source.bounds()
    for height in range(lo, hi + 1):
        rows = source.rows_at(height)
        if rows:
            store.ingest_block(height, rows)
    return store


@pytest.fixture(scope="module")
def store(batch_dataset):
    from repro.serve import store_from_dataset
    return store_from_dataset(batch_dataset)


class TestIngestRetract:
    def test_ingest_matches_load_dataset(self, store):
        manual = rebuild_by_hand(store)
        assert manual.rows_at(store.bounds()[0]) \
            == store.rows_at(store.bounds()[0])
        assert [manual.rows_at(h) for h in range(*manual.bounds())] \
            == [store.rows_at(h) for h in range(*store.bounds())]

    def test_retract_supersedes_served_rows(self, store):
        manual = rebuild_by_hand(store)
        height = next(h for h in range(*manual.bounds())
                      if manual.rows_at(h))
        before_digest = manual.digest()
        before_generation = manual.generation
        retracted = manual.retract_block(height)
        assert retracted == len(store.rows_at(height)) > 0
        assert manual.rows_at(height) == []
        assert not manual.has_block(height)
        assert manual.digest() != before_digest
        assert manual.generation > before_generation
        # Re-ingesting restores the exact pre-retraction content.
        manual.ingest_block(height, store.rows_at(height))
        assert manual.digest() == before_digest

    def test_retracting_empty_height_still_bumps_generation(self):
        empty = ColumnStore()
        generation = empty.generation
        assert empty.retract_block(123) == 0
        assert empty.generation > generation  # caches must invalidate

    def test_ingest_rejects_foreign_height(self, store):
        height = next(h for h in range(*store.bounds())
                      if store.rows_at(h))
        fresh = ColumnStore()
        with pytest.raises(ValueError):
            fresh.ingest_block(height + 1, store.rows_at(height))


class TestCursors:
    def test_roundtrip(self):
        for key in ((0, 0, 0), (12, 2, 31), (10**9, 1, 7)):
            assert decode_cursor(encode_cursor(key)) == key

    @pytest.mark.parametrize("bad", [
        "", "r", "r1.2", "r1.2.3.4", "x1.2.3", "r1.-2.3", "ra.b.c",
    ])
    def test_malformed_cursor_raises(self, bad):
        with pytest.raises(CursorError):
            decode_cursor(bad)

    def test_bad_limit_raises(self, store):
        with pytest.raises(ValueError):
            store.page(limit=0)

    @settings(max_examples=40, deadline=None, derandomize=True)
    @given(data=st.data(), limit=st.integers(min_value=1, max_value=9))
    def test_walk_equals_one_shot_range(self, store, data, limit):
        lo, hi = store.bounds()
        a = data.draw(st.integers(min_value=lo - 2, max_value=hi + 2))
        b = data.draw(st.integers(min_value=lo - 2, max_value=hi + 2))
        lo, hi = min(a, b), max(a, b)
        one_shot, none = store.page(lo, hi, limit=10**9)
        assert none is None
        walked, cursor, pages = [], None, 0
        while True:
            rows, cursor = store.page(lo, hi, cursor=cursor,
                                      limit=limit)
            walked.extend(rows)
            pages += 1
            if cursor is None:
                break
            assert len(rows) == limit  # only the last page is short
        assert walked == one_shot
        assert pages == max(1, -(-len(one_shot) // limit))


class TestReconcile:
    def test_reconcile_same_dataset_is_identity(self, batch_dataset,
                                                store):
        manual = rebuild_by_hand(store)
        manual.reconcile(batch_dataset)
        manual.set_quality(batch_dataset.quality.to_dict())
        assert manual.digest() == store.digest()

    def test_reconcile_refuses_missing_block(self, batch_dataset,
                                             store):
        manual = rebuild_by_hand(store)
        height = next(h for h in range(*manual.bounds())
                      if manual.rows_at(h))
        manual.retract_block(height)
        with pytest.raises(StoreReconcileError):
            manual.reconcile(batch_dataset)


class TestAggregates:
    def test_table1_total_matches_dataset(self, batch_dataset, store):
        rows = batch_dataset.to_rows()
        table = store.table1()
        total = next(e for e in table if e["strategy"] == "total")
        assert total["extractions"] == len(rows)
        per_kind = {e["strategy"]: e["extractions"] for e in table
                    if e["strategy"] != "total"}
        for kind, extractions in per_kind.items():
            assert extractions == sum(
                1 for r in rows if r["kind"] == kind)

    def test_leaderboard_is_ranked(self, store):
        board = store.leaderboard("searchers", limit=50)
        profits = [e["profit_wei"] for e in board]
        assert profits == sorted(profits, reverse=True)
        assert [e["rank"] for e in board] \
            == list(range(1, len(board) + 1))
        with pytest.raises(ValueError):
            store.leaderboard("validators")

    def test_coverage_counts_rows(self, batch_dataset, store):
        coverage = store.coverage()
        assert coverage["labels"]["rows"] \
            == len(batch_dataset.to_rows())
