"""Shared world + the two store build paths for the serve suite.

One simulated study window per session; the suite builds stores over
it both ways — cold-start from the batch dataset, and live-fed
through the streaming engine over a seeded hostile feed — and pins
the identity rule between them.  ``REPRO_CHAOS_SEED`` (CI matrix:
1, 2, 3) seeds the fault plans only; the world stays fixed.
"""

import os

import pytest

from repro.chain.node import ArchiveNode
from repro.core import MevInspector, PriceService
from repro.engine import RunConfig
from repro.faults import FaultPlan
from repro.faults.feed import FaultyFeed
from repro.serve import service_from_dataset, stream_service
from repro.sim import ScenarioConfig, build_paper_scenario

#: seed for every fault plan in the suite (CI matrix: 1, 2, 3)
CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "1"))


@pytest.fixture(scope="session")
def sim_result():
    from repro.chain.transaction import reset_tx_counter
    reset_tx_counter()  # identical world regardless of test order
    config = ScenarioConfig(blocks_per_month=8, seed=5)
    return build_paper_scenario(config).run()


@pytest.fixture(scope="session")
def prices(sim_result):
    return PriceService(sim_result.oracle)


@pytest.fixture(scope="session")
def span(sim_result):
    """The study window's inclusive block range."""
    return (sim_result.node.earliest_block_number(),
            sim_result.node.latest_block_number())


@pytest.fixture(scope="session")
def batch_dataset(sim_result, prices):
    """Batch pipeline at chunk_size=1: the serve identity target."""
    inspector = MevInspector(ArchiveNode(sim_result.blockchain),
                             prices, sim_result.flashbots_api,
                             sim_result.observer)
    return inspector.run(config=RunConfig(chunk_size=1))


@pytest.fixture(scope="session")
def batch_service(batch_dataset):
    """Cold-start service: store snapshotted from the batch dataset."""
    return service_from_dataset(batch_dataset)


@pytest.fixture(scope="session")
def streamed(sim_result, prices, span):
    """``(service, engine)`` after a full reorg-faulted follow run.

    The store was fed block by block through seeded reorgs (every
    retraction superseded served rows live) and then reconciled by
    finalize — the stream side of the identity rule.
    """
    plan = FaultPlan.from_profile("reorg", CHAOS_SEED, *span)
    service, engine = stream_service(
        prices, span[0], flashbots_api=sim_result.flashbots_api,
        observer=sim_result.observer)
    engine.run(FaultyFeed(sim_result.blockchain, plan))
    return (service, engine)
