"""Endpoint layer: the identity rule, live supersede, error paths.

The headline test drives the streaming engine event by event through
a seeded reorg feed and, at every retraction of served rows, checks
the service answers with *fresh* content immediately — then pins the
end state byte-identical to a batch-built service.
"""

import pytest

from repro.faults import FaultPlan
from repro.faults.feed import FaultyFeed
from repro.serve import (
    MevQueryService,
    probe_targets,
    responses_identical,
    stream_service,
)
from repro.stream import StreamSubscriber

from tests.serve.conftest import CHAOS_SEED


class TestIdentityRule:
    def test_batch_and_stream_serve_identical_bytes(self, batch_service,
                                                    streamed):
        service, engine = streamed
        assert engine.report.reorgs > 0  # the identity was earned
        assert engine.report.retracted_rows > 0
        assert responses_identical(batch_service, service)

    def test_probe_targets_cover_every_endpoint_family(self,
                                                       batch_service):
        targets = probe_targets(batch_service.store)
        families = {"/v1/blocks/", "/v1/mev", "/v1/aggregates/table1",
                    "/v1/leaderboards/", "/v1/coverage"}
        for family in families:
            assert any(family in target for target in targets), family
        assert not any("/v1/status" in target for target in targets)

    def test_divergence_is_detected(self, batch_service, streamed):
        service, _ = streamed
        lo, _ = service.store.bounds()
        tampered = MevQueryService(service.store)
        # Same store, but force one probe pair to differ by comparing
        # against a service whose store lost a block.
        from tests.serve.test_store import rebuild_by_hand
        clone = rebuild_by_hand(service.store)
        clone.set_quality(service.store.coverage()["quality"])
        height = next(h for h in range(*clone.bounds())
                      if clone.rows_at(h))
        clone.retract_block(height)
        assert not responses_identical(tampered,
                                       MevQueryService(clone))


class RetractionProbe(StreamSubscriber):
    """Record per-height ETags as blocks land; checked on retraction."""

    def __init__(self, service):
        self.service = service
        self.etags = {}
        self.checked = 0

    def block_indexed(self, height, block_hash, rows):
        if rows:
            response = self.service.handle(f"/v1/blocks/{height}/mev")
            assert response.status == 200
            self.etags[height] = response.etag

    def block_retracted(self, height, block_hash, rows_retracted):
        if not rows_retracted:
            return
        stale_etag = self.etags.pop(height)
        # The retraction must supersede atomically: the very next read
        # is fresh content under a fresh ETag, and revalidating the
        # stale ETag misses (200, not 304).
        response = self.service.handle(f"/v1/blocks/{height}/mev")
        assert response.status == 200
        assert response.etag != stale_etag
        assert response.json["count"] == 0
        conditional = self.service.handle(
            f"/v1/blocks/{height}/mev", if_none_match=stale_etag)
        assert conditional.status == 200
        self.checked += 1


class TestLiveSupersede:
    def test_retractions_supersede_served_rows_mid_stream(
            self, sim_result, prices, span):
        plan = FaultPlan.from_profile("reorg", CHAOS_SEED, *span)
        service, engine = stream_service(
            prices, span[0], flashbots_api=sim_result.flashbots_api,
            observer=sim_result.observer)
        probe = RetractionProbe(service)
        engine.subscribe(probe)
        engine.run(FaultyFeed(sim_result.blockchain, plan))
        assert probe.checked > 0  # rows were actually superseded


class TestErrorPaths:
    @pytest.mark.parametrize("target,status", [
        ("/v2/blocks/1/mev", 404),
        ("/v1/blocks/abc/mev", 400),
        ("/v1/leaderboards/validators", 404),
        ("/v1/mev?limit=0", 400),
        ("/v1/mev?limit=abc", 400),
        ("/v1/mev?cursor=bogus", 400),
        ("/v1/mev?from=abc", 400),
    ])
    def test_status_codes(self, batch_service, target, status):
        response = batch_service.handle(target)
        assert response.status == status
        assert response.json["status"] == status
        assert "error" in response.json

    def test_missing_block_is_an_empty_200(self, batch_service):
        _, hi = batch_service.store.bounds()
        response = batch_service.handle(f"/v1/blocks/{hi + 99}/mev")
        assert response.status == 200
        assert response.json == {"block": hi + 99, "count": 0,
                                 "rows": []}

    def test_status_endpoint_is_never_cached(self, batch_service):
        first = batch_service.handle("/v1/status")
        assert first.status == 200 and first.etag is None
        body = first.json
        assert {"generation", "digest", "rows", "counters"} \
            <= set(body)


class TestConditionalRequests:
    def test_etag_roundtrip(self, batch_service):
        fresh = batch_service.handle("/v1/aggregates/table1")
        assert fresh.status == 200 and fresh.etag
        revalidated = batch_service.handle(
            "/v1/aggregates/table1", if_none_match=fresh.etag)
        assert revalidated.status == 304
        assert revalidated.body == b""
        missed = batch_service.handle(
            "/v1/aggregates/table1", if_none_match='"deadbeef"')
        assert missed.status == 200
        assert missed.body == fresh.body
