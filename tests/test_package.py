"""Package-level API tests: exports, quick_study, version."""

import importlib
from pathlib import Path

import pytest

import repro


class TestTopLevel:
    def test_version(self):
        assert repro.__version__ == "1.6.0"

    def test_version_single_sourced(self):
        """pyproject.toml derives its version from the package.

        The ``[project]`` table must declare ``version`` dynamic and
        point setuptools at ``repro.__version__`` — two hand-kept
        version strings is exactly the drift this pins out.
        """
        pyproject = Path(__file__).resolve().parent.parent \
            / "pyproject.toml"
        try:
            import tomllib
        except ImportError:  # Python < 3.11
            text = pyproject.read_text(encoding="utf-8")
            assert 'dynamic = ["version"]' in text
            assert 'attr = "repro.__version__"' in text
            return
        document = tomllib.loads(
            pyproject.read_text(encoding="utf-8"))
        assert "version" not in document["project"]
        assert document["project"]["dynamic"] == ["version"]
        dynamic = document["tool"]["setuptools"]["dynamic"]
        assert dynamic["version"] == {"attr": "repro.__version__"}

    def test_quick_study_end_to_end(self):
        study = repro.quick_study(blocks_per_month=6, seed=2)
        assert study.result.blockchain.height == 6 * 23
        rows = study.table1
        assert rows[-1].strategy == "Total"

    def test_run_inspector_reusable(self):
        study = repro.quick_study(blocks_per_month=6, seed=2)
        again = repro.run_inspector(study.result)
        assert again.totals() == study.dataset.totals()


@pytest.mark.parametrize("module_name", [
    "repro", "repro.chain", "repro.dex", "repro.lending",
    "repro.flashbots", "repro.privatepools", "repro.agents",
    "repro.sim", "repro.core", "repro.analysis", "repro.serve",
])
class TestPublicSurfaces:
    def test_all_names_resolve(self, module_name):
        module = importlib.import_module(module_name)
        assert hasattr(module, "__all__")
        for name in module.__all__:
            assert hasattr(module, name), (module_name, name)

    def test_all_sorted_unique(self, module_name):
        module = importlib.import_module(module_name)
        assert len(set(module.__all__)) == len(module.__all__)

    def test_module_docstring(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__ and len(module.__doc__) > 20
