"""Tests for MEV-geth bundle scoring and block assembly."""

import pytest

from repro.chain.intents import CoinbaseTipIntent, FailingIntent
from repro.chain.mempool import Mempool
from repro.chain.state import WorldState
from repro.chain.transaction import Transaction
from repro.chain.types import address_from_label, ether, gwei
from repro.flashbots.bundle import MINER_PAYOUT, make_bundle
from repro.flashbots.mev_geth import build_block

MINER = address_from_label("fb-miner")
SEARCHER_A = address_from_label("searcher-a")
SEARCHER_B = address_from_label("searcher-b")
USER = address_from_label("plain-user")


@pytest.fixture
def state():
    s = WorldState()
    for addr in (SEARCHER_A, SEARCHER_B, USER):
        s.credit_eth(addr, ether(100))
    return s


def tip_tx(sender, tip_eth, nonce=0, gas_price=gwei(1)):
    return Transaction(sender=sender, nonce=nonce, to=MINER,
                       gas_price=gas_price, gas_limit=30_000,
                       intent=CoinbaseTipIntent(tip=ether(tip_eth)))


def plain_tx(nonce=0, gas_price=gwei(30)):
    return Transaction(sender=USER, nonce=nonce,
                       to=address_from_label("x"), value=ether(1),
                       gas_price=gas_price)


def build(state, bundles=(), mempool=None, number=5):
    return build_block(state, mempool or Mempool(), number=number,
                       timestamp=13 * number, coinbase=MINER, base_fee=0,
                       bundles=bundles)


class TestBundleInclusion:
    def test_no_bundles_vanilla_block(self, state):
        pool = Mempool()
        pool.add(plain_tx(), 1)
        result = build(state, mempool=pool)
        assert not result.is_flashbots_block
        assert len(result.block.transactions) == 1

    def test_bundle_included_ahead_of_mempool(self, state):
        pool = Mempool()
        pool.add(plain_tx(gas_price=gwei(500)), 1)
        bundle = make_bundle(SEARCHER_A, [tip_tx(SEARCHER_A, 1)], 5)
        result = build(state, bundles=[bundle], mempool=pool)
        assert result.is_flashbots_block
        # Bundle txs occupy the top of the block despite lower gas price.
        assert result.block.transactions[0].hash == bundle.tx_hashes[0]
        assert len(result.block.transactions) == 2

    def test_higher_paying_bundle_wins_ordering(self, state):
        low = make_bundle(SEARCHER_A, [tip_tx(SEARCHER_A, 1)], 5)
        high = make_bundle(SEARCHER_B, [tip_tx(SEARCHER_B, 5)], 5)
        result = build(state, bundles=[low, high])
        assert result.included_bundles[0].bundle is high
        assert result.included_bundles[1].bundle is low

    def test_failing_bundle_skipped_entirely(self, state):
        bad_tx = Transaction(sender=SEARCHER_A, nonce=0, to=MINER,
                             gas_price=gwei(1), gas_limit=50_000,
                             intent=FailingIntent())
        bad = make_bundle(SEARCHER_A, [bad_tx], 5)
        good = make_bundle(SEARCHER_B, [tip_tx(SEARCHER_B, 1)], 5)
        result = build(state, bundles=[bad, good])
        assert len(result.included_bundles) == 1
        assert result.included_bundles[0].bundle is good
        hashes = [t.hash for t in result.block.transactions]
        assert bad_tx.hash not in hashes

    def test_conflicting_bundles_auction_resolution(self, state):
        """Two bundles spending the same nonce: only the richer lands."""
        weak = make_bundle(SEARCHER_A, [tip_tx(SEARCHER_A, 1, nonce=0)], 5)
        strong = make_bundle(SEARCHER_A,
                             [tip_tx(SEARCHER_A, 3, nonce=0)], 5)
        result = build(state, bundles=[weak, strong])
        assert len(result.included_bundles) == 1
        assert result.included_bundles[0].bundle is strong

    def test_zero_payment_flashbots_bundle_rejected(self, state):
        free_tx = Transaction(sender=SEARCHER_A, nonce=0, to=MINER,
                              gas_price=0, gas_limit=21_000)
        bundle = make_bundle(SEARCHER_A, [free_tx], 5)
        result = build(state, bundles=[bundle])
        assert not result.is_flashbots_block

    def test_miner_payout_bundle_exempt_from_payment_floor(self, state):
        free_tx = Transaction(sender=SEARCHER_A, nonce=0, to=MINER,
                              gas_price=0, gas_limit=21_000)
        bundle = make_bundle(SEARCHER_A, [free_tx], 5,
                             bundle_type=MINER_PAYOUT)
        result = build(state, bundles=[bundle])
        assert result.is_flashbots_block


class TestEconomics:
    def test_included_bundle_reports_payment(self, state):
        bundle = make_bundle(SEARCHER_A, [tip_tx(SEARCHER_A, 2)], 5)
        result = build(state, bundles=[bundle])
        item = result.included_bundles[0]
        assert item.miner_payment >= ether(2)
        assert item.gas_used > 0

    def test_mempool_tx_not_double_included_after_bundle(self, state):
        """A bundle that contains a mempool transaction consumes it."""
        victim = plain_tx(nonce=0)
        pool = Mempool()
        pool.add(victim, 1)
        sandwichish = make_bundle(
            SEARCHER_A,
            [tip_tx(SEARCHER_A, 1, nonce=0), victim], 5)
        result = build(state, bundles=[sandwichish], mempool=pool)
        hashes = [t.hash for t in result.block.transactions]
        assert hashes.count(victim.hash) == 1

    def test_block_state_committed(self, state):
        bundle = make_bundle(SEARCHER_A, [tip_tx(SEARCHER_A, 2)], 5)
        build(state, bundles=[bundle])
        assert state.eth_balance(MINER) > ether(2)  # tip + block reward
        assert state.nonce(SEARCHER_A) == 1
