"""Tests for bundle construction and immutability guarantees."""

import pytest

from repro.chain.transaction import Transaction
from repro.chain.types import address_from_label, gwei
from repro.flashbots.bundle import (
    FLASHBOTS,
    MINER_PAYOUT,
    ROGUE,
    Bundle,
    make_bundle,
)

SEARCHER = address_from_label("searcher")


def tx(nonce=0):
    return Transaction(sender=SEARCHER, nonce=nonce,
                       to=address_from_label("pool"), gas_price=gwei(5),
                       gas_limit=100_000)


class TestConstruction:
    def test_basic(self):
        bundle = make_bundle(SEARCHER, [tx(0), tx(1)], target_block=10)
        assert len(bundle) == 2
        assert bundle.bundle_type == FLASHBOTS

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            make_bundle(SEARCHER, [], target_block=10)

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError):
            make_bundle(SEARCHER, [tx()], target_block=10,
                        bundle_type="mystery")

    def test_negative_target_rejected(self):
        with pytest.raises(ValueError):
            make_bundle(SEARCHER, [tx()], target_block=-1)

    @pytest.mark.parametrize("kind", [MINER_PAYOUT, ROGUE, FLASHBOTS])
    def test_all_types_accepted(self, kind):
        assert make_bundle(SEARCHER, [tx()], 10,
                           bundle_type=kind).bundle_type == kind


class TestIdentity:
    def test_id_commits_to_order(self):
        a, b = tx(0), tx(1)
        fwd = make_bundle(SEARCHER, [a, b], 10)
        rev = make_bundle(SEARCHER, [b, a], 10)
        assert fwd.bundle_id != rev.bundle_id

    def test_id_commits_to_contents(self):
        base = make_bundle(SEARCHER, [tx(0)], 10)
        other = make_bundle(SEARCHER, [tx(0)], 10)
        # different tx objects → different hashes → different bundle ids
        assert base.bundle_id != other.bundle_id

    def test_id_stable(self):
        bundle = make_bundle(SEARCHER, [tx(0)], 10)
        assert bundle.bundle_id == bundle.bundle_id

    def test_tx_hashes_ordered(self):
        a, b = tx(0), tx(1)
        bundle = make_bundle(SEARCHER, [a, b], 10)
        assert bundle.tx_hashes == (a.hash, b.hash)

    def test_transactions_are_tuple(self):
        bundle = make_bundle(SEARCHER, [tx(0)], 10)
        assert isinstance(bundle.transactions, tuple)

    def test_total_gas_limit(self):
        bundle = make_bundle(SEARCHER, [tx(0), tx(1)], 10)
        assert bundle.total_gas_limit() == 200_000
