"""Tests for sealed-bid vs PGA bidding models."""

import random
import statistics

import pytest

from repro.chain.types import gwei
from repro.flashbots.auction import (
    pga_fee_fraction,
    pga_gas_price,
    sealed_bid_tip_fraction,
)


class TestSealedBid:
    def test_fraction_in_bounds(self):
        rng = random.Random(1)
        for _ in range(500):
            f = sealed_bid_tip_fraction(rng)
            assert 0.05 <= f <= 0.99

    def test_mean_reflects_overbidding(self):
        rng = random.Random(2)
        samples = [sealed_bid_tip_fraction(rng) for _ in range(2_000)]
        assert statistics.mean(samples) > 0.7

    def test_competition_raises_bids(self):
        calm = random.Random(3)
        hot = random.Random(3)
        low = statistics.mean(sealed_bid_tip_fraction(calm, competition=0)
                              for _ in range(2_000))
        high = statistics.mean(sealed_bid_tip_fraction(hot, competition=9)
                               for _ in range(2_000))
        assert high > low

    def test_negative_competition_rejected(self):
        with pytest.raises(ValueError):
            sealed_bid_tip_fraction(random.Random(1), competition=-1)


class TestPga:
    def test_fraction_in_bounds(self):
        rng = random.Random(4)
        for _ in range(500):
            assert 0.02 <= pga_fee_fraction(rng) <= 0.95

    def test_sealed_bids_exceed_pga_on_average(self):
        """The core profit-inversion driver: Flashbots searchers give away
        more of their profit than PGA participants did."""
        a, b = random.Random(5), random.Random(5)
        sealed = statistics.mean(sealed_bid_tip_fraction(a)
                                 for _ in range(2_000))
        open_pga = statistics.mean(pga_fee_fraction(b)
                                   for _ in range(2_000))
        assert sealed > open_pga + 0.2

    def test_gas_price_at_least_base(self):
        rng = random.Random(6)
        bid = pga_gas_price(rng, base_gas_price=gwei(50),
                            expected_profit=0, gas_limit=100_000)
        assert bid >= gwei(50)

    def test_gas_price_scales_with_profit(self):
        rng_small = random.Random(7)
        rng_big = random.Random(7)
        small = pga_gas_price(rng_small, gwei(50), 10**17, 100_000)
        big = pga_gas_price(rng_big, gwei(50), 10**19, 100_000)
        assert big > small

    def test_zero_gas_limit_rejected(self):
        with pytest.raises(ValueError):
            pga_gas_price(random.Random(1), gwei(1), 1, 0)
