"""Tests for relay registration, admission, rate limiting and bans."""

import pytest

from repro.chain.transaction import Transaction
from repro.chain.types import address_from_label, gwei
from repro.flashbots.bundle import make_bundle
from repro.flashbots.relay import Relay

SEARCHER = address_from_label("searcher")
MINER = address_from_label("fb-miner")


def bundle(target=10, searcher=SEARCHER, nonce=0):
    tx = Transaction(sender=searcher, nonce=nonce,
                     to=address_from_label("pool"), gas_price=gwei(5))
    return make_bundle(searcher, [tx], target_block=target)


@pytest.fixture
def relay():
    r = Relay()
    r.register_searcher(SEARCHER)
    r.register_miner(MINER)
    return r


class TestRegistration:
    def test_registered_roles(self, relay):
        assert relay.is_searcher(SEARCHER)
        assert relay.is_miner(MINER)
        assert MINER in relay.miners

    def test_unregistered_rejected(self, relay):
        stranger = address_from_label("stranger")
        assert not relay.is_searcher(stranger)
        assert not relay.submit(bundle(searcher=stranger), 1)
        assert relay.rejected_count == 1


class TestSubmission:
    def test_accepts_future_target(self, relay):
        assert relay.submit(bundle(target=5), current_block=4)
        assert relay.pending_count() == 1

    def test_rejects_stale_target(self, relay):
        assert not relay.submit(bundle(target=5), current_block=5)
        assert not relay.submit(bundle(target=5), current_block=9)

    def test_rate_limit_per_searcher(self, relay):
        for i in range(relay.max_bundles_per_searcher_per_block):
            assert relay.submit(bundle(target=10, nonce=i), 1)
        assert not relay.submit(bundle(target=10, nonce=99), 1)
        # A different target block has its own budget.
        assert relay.submit(bundle(target=11, nonce=100), 1)


class TestDelivery:
    def test_miner_sees_bundles_for_block(self, relay):
        b = bundle(target=7)
        relay.submit(b, 1)
        assert relay.bundles_for_block(7, miner=MINER) == [b]
        assert relay.bundles_for_block(8, miner=MINER) == []

    def test_non_member_miner_sees_nothing(self, relay):
        relay.submit(bundle(target=7), 1)
        outsider = address_from_label("outsider")
        assert relay.bundles_for_block(7, miner=outsider) == []

    def test_mark_included_removes(self, relay):
        b = bundle(target=7)
        relay.submit(b, 1)
        relay.mark_included(7, {b.bundle_id})
        assert relay.bundles_for_block(7, miner=MINER) == []

    def test_expire_before_drops_stale(self, relay):
        relay.submit(bundle(target=5), 1)
        relay.submit(bundle(target=9, nonce=1), 1)
        assert relay.expire_before(6) == 1
        assert relay.pending_count() == 1


class TestBanning:
    def test_banned_miner_loses_access(self, relay):
        relay.report_equivocation(MINER)
        assert relay.is_banned(MINER)
        assert not relay.is_miner(MINER)
        assert MINER not in relay.miners
        relay.submit(bundle(target=7), 1)
        assert relay.bundles_for_block(7, miner=MINER) == []

    def test_banned_searcher_cannot_submit(self, relay):
        relay.ban(SEARCHER)
        assert not relay.submit(bundle(target=7), 1)

    def test_banned_cannot_reregister(self, relay):
        relay.ban(MINER)
        with pytest.raises(PermissionError):
            relay.register_miner(MINER)
