"""Tests for the public Flashbots blocks API dataset."""

import pytest

from repro.chain.intents import CoinbaseTipIntent
from repro.chain.mempool import Mempool
from repro.chain.state import WorldState
from repro.chain.transaction import Transaction
from repro.chain.types import address_from_label, ether, gwei
from repro.flashbots.api import FlashbotsBlocksApi
from repro.flashbots.bundle import make_bundle
from repro.flashbots.mev_geth import build_block

MINER = address_from_label("fb-miner")
SEARCHER = address_from_label("searcher")


def mined_bundles(number=5, tips=(1, 2)):
    state = WorldState()
    bundles = []
    for i, tip in enumerate(tips):
        searcher = address_from_label(f"searcher-{i}")
        state.credit_eth(searcher, ether(100))
        tx = Transaction(sender=searcher, nonce=0, to=MINER,
                         gas_price=gwei(1), gas_limit=30_000,
                         intent=CoinbaseTipIntent(tip=ether(tip)))
        bundles.append(make_bundle(searcher, [tx], number))
    result = build_block(state, Mempool(), number=number,
                         timestamp=13 * number, coinbase=MINER,
                         base_fee=0, bundles=bundles)
    return result.included_bundles


class TestRecording:
    def test_record_and_query(self):
        api = FlashbotsBlocksApi()
        included = mined_bundles()
        api.record_block(5, MINER, included)
        assert api.is_flashbots_block(5)
        assert api.block_count() == 1
        assert api.bundle_count() == 2

    def test_empty_inclusion_not_recorded(self):
        api = FlashbotsBlocksApi()
        api.record_block(5, MINER, [])
        assert not api.is_flashbots_block(5)

    def test_identical_replay_is_idempotent(self):
        """A resumed crawl replays its tail; byte-identical re-records
        must be accepted silently."""
        api = FlashbotsBlocksApi()
        included = mined_bundles()
        api.record_block(5, MINER, included)
        api.record_block(5, MINER, included)
        assert api.block_count() == 1
        assert api.bundle_count() == 2

    def test_conflicting_record_rejected(self):
        api = FlashbotsBlocksApi()
        included = mined_bundles()
        api.record_block(5, MINER, included)
        with pytest.raises(ValueError):
            api.record_block(5, "0x" + "99" * 20, included)
        with pytest.raises(ValueError):
            api.record_block(5, MINER, included[:1])

    def test_miner_reward_totals_bundle_payments(self):
        api = FlashbotsBlocksApi()
        included = mined_bundles(tips=(1, 2))
        api.record_block(5, MINER, included)
        block = api.get_block(5)
        assert block.miner_reward == sum(i.miner_payment
                                         for i in included)
        assert block.miner_reward >= ether(3)


class TestTxLabels:
    def test_tx_join_surface(self):
        api = FlashbotsBlocksApi()
        included = mined_bundles()
        api.record_block(5, MINER, included)
        tx_hash = included[0].bundle.tx_hashes[0]
        assert api.is_flashbots_tx(tx_hash)
        label = api.tx_label(tx_hash)
        assert label.bundle_id == included[0].bundle.bundle_id
        assert label.bundle_type == "flashbots"

    def test_unknown_tx(self):
        api = FlashbotsBlocksApi()
        assert not api.is_flashbots_tx("0x" + "00" * 32)
        assert api.tx_label("0x" + "00" * 32) is None

    def test_flashbots_tx_hashes_set(self):
        api = FlashbotsBlocksApi()
        included = mined_bundles()
        api.record_block(5, MINER, included)
        expected = {h for item in included for h in item.bundle.tx_hashes}
        assert api.flashbots_tx_hashes() == expected


class TestRangeQueries:
    def test_blocks_until(self):
        api = FlashbotsBlocksApi()
        api.record_block(5, MINER, mined_bundles(5))
        api.record_block(9, MINER, mined_bundles(9))
        assert [b.block_number for b in api.blocks_until(5)] == [5]
        assert [b.block_number for b in api.blocks_until(100)] == [5, 9]

    def test_all_blocks_sorted(self):
        api = FlashbotsBlocksApi()
        api.record_block(9, MINER, mined_bundles(9))
        api.record_block(5, MINER, mined_bundles(5))
        assert [b.block_number for b in api.all_blocks()] == [5, 9]
