"""Structural invariants of MEV-geth-built blocks."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chain.intents import CoinbaseTipIntent
from repro.chain.mempool import Mempool
from repro.chain.state import WorldState
from repro.chain.transaction import Transaction
from repro.chain.types import address_from_label, ether, gwei
from repro.flashbots.bundle import make_bundle
from repro.flashbots.mev_geth import build_block

MINER = address_from_label("struct-miner")


def make_world(n_searchers):
    state = WorldState()
    searchers = [address_from_label(f"struct-s{i}")
                 for i in range(n_searchers)]
    users = [address_from_label(f"struct-u{i}") for i in range(4)]
    for addr in searchers + users:
        state.credit_eth(addr, ether(100))
    return state, searchers, users


@settings(max_examples=25, deadline=None)
@given(st.integers(1, 5), st.integers(0, 6), st.integers(0, 10**9))
def test_bundles_always_precede_public_txs(n_bundles, n_public, seed):
    """Every bundle transaction sits above every mempool transaction —
    MEV-geth's top-of-block guarantee."""
    rng = random.Random(seed)
    state, searchers, users = make_world(n_bundles)
    bundles = []
    for i in range(n_bundles):
        tx = Transaction(sender=searchers[i], nonce=0, to=MINER,
                         gas_price=gwei(1), gas_limit=30_000,
                         intent=CoinbaseTipIntent(
                             tip=ether(rng.uniform(0.1, 3.0))))
        bundles.append(make_bundle(searchers[i], [tx], 5))
    pool = Mempool()
    for j in range(n_public):
        pool.add(Transaction(sender=users[j % 4], nonce=j // 4,
                             to=MINER, value=1,
                             gas_price=gwei(rng.randint(10, 90))), 1)
    result = build_block(state, pool, number=5, timestamp=65,
                         coinbase=MINER, base_fee=0, bundles=bundles)
    bundle_hashes = {h for item in result.included_bundles
                     for h in item.bundle.tx_hashes}
    seen_public = False
    for tx in result.block.transactions:
        if tx.hash in bundle_hashes:
            assert not seen_public, "bundle tx after a public tx"
        else:
            seen_public = True


@settings(max_examples=25, deadline=None)
@given(st.integers(2, 6), st.integers(0, 10**9))
def test_included_bundles_sorted_by_payment_rate(n_bundles, seed):
    rng = random.Random(seed)
    state, searchers, _ = make_world(n_bundles)
    bundles = []
    for i in range(n_bundles):
        tx = Transaction(sender=searchers[i], nonce=0, to=MINER,
                         gas_price=gwei(1), gas_limit=30_000,
                         intent=CoinbaseTipIntent(
                             tip=ether(rng.uniform(0.05, 5.0))))
        bundles.append(make_bundle(searchers[i], [tx], 5))
    result = build_block(state, Mempool(), number=5, timestamp=65,
                         coinbase=MINER, base_fee=0, bundles=bundles)
    rates = [item.miner_payment // max(1, item.gas_used)
             for item in result.included_bundles]
    assert rates == sorted(rates, reverse=True)


def test_public_tail_ordered_by_fee():
    state, _, users = make_world(0)
    pool = Mempool()
    prices = [gwei(p) for p in (15, 80, 40, 60)]
    for user, price in zip(users, prices):
        pool.add(Transaction(sender=user, nonce=0, to=MINER, value=1,
                             gas_price=price), 1)
    result = build_block(state, pool, number=5, timestamp=65,
                         coinbase=MINER, base_fee=0)
    got = [tx.gas_price for tx in result.block.transactions]
    assert got == sorted(prices, reverse=True)
