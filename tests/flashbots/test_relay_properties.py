"""Property tests for relay admission invariants."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chain.transaction import Transaction
from repro.chain.types import address_from_label, gwei
from repro.flashbots.bundle import make_bundle
from repro.flashbots.relay import Relay

SEARCHERS = [address_from_label(f"prop-searcher-{i}") for i in range(4)]

submissions_st = st.lists(
    st.tuples(st.integers(0, 3),        # searcher index
              st.integers(1, 8),        # target block
              st.booleans()),           # registered?
    max_size=40)


def bundle_for(searcher, target, nonce):
    tx = Transaction(sender=searcher, nonce=nonce,
                     to=address_from_label("prop-pool"),
                     gas_price=gwei(5))
    return make_bundle(searcher, [tx], target)


class TestRelayInvariants:
    @settings(max_examples=40, deadline=None)
    @given(submissions_st, st.integers(0, 5))
    def test_accepted_bundles_always_valid(self, specs, current_block):
        relay = Relay(max_bundles_per_searcher_per_block=3)
        registered = set()
        nonce = 0
        for searcher_i, target, register in specs:
            searcher = SEARCHERS[searcher_i]
            if register and searcher not in registered:
                relay.register_searcher(searcher)
                registered.add(searcher)
            bundle = bundle_for(searcher, target, nonce)
            nonce += 1
            accepted = relay.submit(bundle, current_block)
            if accepted:
                # Admission implies every precondition held.
                assert searcher in registered
                assert target > current_block
        # Per-searcher per-block caps were never exceeded.
        for target in range(1, 9):
            queue = relay.bundles_for_block(target)
            for searcher in SEARCHERS:
                count = sum(1 for b in queue if b.searcher == searcher)
                assert count <= 3

    @settings(max_examples=30, deadline=None)
    @given(submissions_st)
    def test_expiry_leaves_only_future_bundles(self, specs):
        relay = Relay()
        for searcher in SEARCHERS:
            relay.register_searcher(searcher)
        nonce = 0
        for searcher_i, target, _ in specs:
            relay.submit(bundle_for(SEARCHERS[searcher_i], target,
                                    nonce), 0)
            nonce += 1
        relay.expire_before(5)
        for target in range(1, 5):
            assert relay.bundles_for_block(target) == []
        total_left = relay.pending_count()
        assert total_left == sum(len(relay.bundles_for_block(t))
                                 for t in range(5, 9))
