"""Tests for the Section 8.3 random-ordering ablation."""

import random

import pytest

from repro.analysis.ablation import (
    _dart_survival,
    _shuffle_survival,
    random_ordering_ablation,
)
from repro.core.datasets import MevDataset


class TestShuffleSurvival:
    def test_three_tx_block_matches_exact(self):
        rng = random.Random(0)
        hits, _ = _shuffle_survival(range(3), 0, 1, 2, rng, 12_000)
        assert hits / 12_000 == pytest.approx(1 / 6, abs=0.02)

    def test_backrun_survival_half(self):
        rng = random.Random(0)
        _, backruns = _shuffle_survival(range(10), 0, 1, 2, rng, 12_000)
        assert backruns / 12_000 == pytest.approx(0.5, abs=0.02)

    def test_survival_independent_of_block_size(self):
        rng = random.Random(0)
        small, _ = _shuffle_survival(range(4), 0, 1, 2, rng, 12_000)
        big, _ = _shuffle_survival(range(40), 0, 1, 2, rng, 12_000)
        assert small / 12_000 == pytest.approx(big / 12_000, abs=0.03)


class TestDartSurvival:
    def test_more_copies_more_survival(self):
        rng = random.Random(1)
        one = _dart_survival(10, 1, rng, 6_000)
        four = _dart_survival(10, 4, rng, 6_000)
        assert four > one

    def test_one_copy_matches_exact(self):
        rng = random.Random(1)
        survival = _dart_survival(10, 1, rng, 20_000)
        assert survival == pytest.approx(1 / 6, abs=0.02)

    def test_bounded(self):
        rng = random.Random(1)
        assert 0.0 <= _dart_survival(5, 8, rng, 2_000) <= 1.0


class TestReport:
    def test_empty_dataset_returns_none(self, ):
        from repro.chain.node import ArchiveNode, Blockchain
        node = ArchiveNode(Blockchain())
        assert random_ordering_ablation(node, MevDataset()) is None

    def test_report_on_real_sandwich(self, ):
        from tests.core.conftest import ChainHarness
        harness = ChainHarness()
        harness.mine_sandwich()
        from repro.core.heuristics.sandwich import detect_sandwiches
        dataset = MevDataset(
            sandwiches=detect_sandwiches(harness.node, harness.prices))
        report = random_ordering_ablation(harness.node, dataset,
                                          shuffles=4_000)
        assert report is not None
        assert report.sandwiches_tested == 1
        assert report.sandwich_survival == pytest.approx(1 / 6,
                                                         abs=0.03)
        assert report.dart_survival > report.sandwich_survival
