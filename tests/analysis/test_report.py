"""Tests for ASCII rendering helpers."""

from repro.analysis.report import percent, render_kv, render_series, \
    render_table


class TestRenderTable:
    def test_alignment_and_content(self):
        text = render_table(["Name", "Count"],
                            [("sandwich", 10), ("arb", 2_000)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "Name" in lines[0]
        assert "sandwich" in lines[2]
        assert "2000" in lines[3]

    def test_column_widths_consistent(self):
        text = render_table(["A", "B"], [("xx", 1), ("y", 22)])
        lines = text.splitlines()
        assert len({len(line) for line in lines}) == 1

    def test_empty_rows(self):
        text = render_table(["A"], [])
        assert "A" in text


class TestRenderSeries:
    def test_bars_scale_to_peak(self):
        text = render_series("t", [("jan", 1.0), ("feb", 2.0)],
                             width=10)
        lines = text.splitlines()
        assert lines[0] == "t"
        assert lines[2].count("#") == 10
        assert lines[1].count("#") == 5

    def test_empty_series(self):
        assert "(empty)" in render_series("t", [])

    def test_zero_values(self):
        text = render_series("t", [("jan", 0.0)])
        assert "#" not in text


class TestMisc:
    def test_percent(self):
        assert percent(0.5) == "50.0%"
        assert percent(0.056) == "5.6%"

    def test_render_kv(self):
        text = render_kv("Stats", [("total", 10), ("share", "47.6%")])
        assert "total" in text and "47.6%" in text
