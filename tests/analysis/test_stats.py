"""Tests for analysis statistics helpers."""

import pytest

from repro.analysis.stats import (
    infer_miner_accounts,
    mean_median_std,
    miners_with_at_least,
)
from collections import Counter

from repro.core.datasets import MevDataset, SandwichRecord


def sandwich(extractor, miner, block):
    return SandwichRecord(
        block_number=block, pool_address="0x" + "00" * 20,
        venue="UniswapV2", extractor=extractor, victim="0x" + "bb" * 20,
        front_tx=f"0xf{block}", victim_tx=f"0xv{block}",
        back_tx=f"0xb{block}", token_in="WETH", token_out="DAI",
        frontrun_amount_in=1, backrun_amount_out=2, gain_wei=10,
        cost_wei=1, miner=miner)


class TestMeanMedianStd:
    def test_basic(self):
        mean, median, std = mean_median_std([1.0, 2.0, 3.0])
        assert mean == 2.0
        assert median == 2.0
        assert std == pytest.approx(0.8165, rel=1e-3)

    def test_empty(self):
        assert mean_median_std([]) == (0.0, 0.0, 0.0)

    def test_single(self):
        assert mean_median_std([5.0]) == (5.0, 5.0, 0.0)


class TestMinersWithAtLeast:
    def test_threshold(self):
        counter = Counter({"a": 10, "b": 3, "c": 1})
        assert miners_with_at_least(counter, 1) == 3
        assert miners_with_at_least(counter, 3) == 2
        assert miners_with_at_least(counter, 11) == 0


class TestInferMinerAccounts:
    def test_dominated_account_flagged(self):
        acct, miner = "0x" + "a1" * 20, "0x" + "d4" * 20
        dataset = MevDataset(sandwiches=[
            sandwich(acct, miner, b) for b in range(6)])
        assert infer_miner_accounts(dataset) == {acct}

    def test_spread_account_not_flagged(self):
        acct = "0x" + "a1" * 20
        dataset = MevDataset(sandwiches=[
            sandwich(acct, f"0x{i:02d}" + "00" * 19, b)
            for b, i in zip(range(6), (1, 2, 3, 1, 2, 3))])
        assert infer_miner_accounts(dataset) == set()

    def test_min_count_respected(self):
        acct, miner = "0x" + "a1" * 20, "0x" + "d4" * 20
        dataset = MevDataset(sandwiches=[sandwich(acct, miner, 1)])
        assert infer_miner_accounts(dataset, min_count=5) == set()
