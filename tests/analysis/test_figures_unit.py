"""Unit tests for figure builders on hand-crafted inputs."""

import pytest

from repro.analysis.figures import (
    bundle_stats,
    fig9_private_distribution,
)
from repro.analysis.tables import build_table1
from repro.chain.intents import CoinbaseTipIntent
from repro.chain.mempool import Mempool
from repro.chain.state import WorldState
from repro.chain.transaction import Transaction
from repro.chain.types import address_from_label, ether, gwei
from repro.core.datasets import (
    ArbitrageRecord,
    MevDataset,
    PRIVACY_FLASHBOTS,
    PRIVACY_PRIVATE,
    PRIVACY_PUBLIC,
    SandwichRecord,
)
from repro.flashbots.api import FlashbotsBlocksApi
from repro.flashbots.bundle import MINER_PAYOUT, make_bundle
from repro.flashbots.mev_geth import build_block

MINER = address_from_label("figtest-miner")


def sandwich(privacy, fb=False, block=150, profit=10**18):
    return SandwichRecord(
        block_number=block, pool_address="0x" + "00" * 20,
        venue="UniswapV2", extractor="0x" + "aa" * 20,
        victim="0x" + "bb" * 20, front_tx=f"0xf{block}{privacy}",
        victim_tx=f"0xv{block}", back_tx=f"0xb{block}{privacy}",
        token_in="WETH", token_out="DAI", frontrun_amount_in=1,
        backrun_amount_out=2, gain_wei=profit, cost_wei=0,
        via_flashbots=fb, privacy=privacy)


class TestFig9Unit:
    def test_counts_and_shares(self):
        dataset = MevDataset(sandwiches=[
            sandwich(PRIVACY_FLASHBOTS, fb=True),
            sandwich(PRIVACY_FLASHBOTS, fb=True, block=151),
            sandwich(PRIVACY_PRIVATE, block=152),
            sandwich(PRIVACY_PUBLIC, block=153),
            sandwich(None, block=154),  # outside the window: excluded
        ])
        dist = fig9_private_distribution(dataset)
        assert dist.total == 4
        assert dist.flashbots == 2
        assert dist.share("flashbots") == 0.5
        assert dist.share("private") == 0.25

    def test_empty_dataset(self):
        dist = fig9_private_distribution(MevDataset())
        assert dist.total == 0
        assert dist.share("flashbots") == 0.0


class TestTable1Unit:
    def test_rows_and_total(self):
        dataset = MevDataset(
            sandwiches=[sandwich(None, fb=True)],
            arbitrages=[ArbitrageRecord(
                block_number=1, tx_hash="0xa",
                extractor="0x" + "cc" * 20, venues=("UniswapV2",),
                token_cycle=("WETH", "WETH"), amount_in=1, amount_out=2,
                gain_wei=1, cost_wei=0, via_flashbots=True,
                via_flashloan=True)])
        rows = {r.strategy: r for r in build_table1(dataset)}
        assert rows["Sandwiching"].extractions == 1
        assert rows["Arbitrage"].via_both == 1
        assert rows["Total"].extractions == 2
        assert rows["Total"].share_flashbots() == 1.0

    def test_empty_dataset_safe(self):
        rows = build_table1(MevDataset())
        assert all(r.extractions == 0 for r in rows)
        assert all(r.share_flashbots() == 0.0 for r in rows)


class TestBundleStatsUnit:
    def make_api(self):
        state = WorldState()
        api = FlashbotsBlocksApi()
        searcher = address_from_label("figtest-searcher")
        state.credit_eth(searcher, ether(100))
        state.credit_eth(MINER, ether(100))
        tip_tx = Transaction(sender=searcher, nonce=0, to=MINER,
                             gas_price=gwei(1), gas_limit=30_000,
                             intent=CoinbaseTipIntent(tip=ether(1)))
        single = make_bundle(searcher, [tip_tx], 5)
        payout_txs = [Transaction(sender=MINER, nonce=i,
                                  to=address_from_label(f"member{i}"),
                                  value=ether(0.1), gas_limit=21_000,
                                  gas_price=gwei(1))
                      for i in range(3)]
        payout = make_bundle(MINER, payout_txs, 5,
                             bundle_type=MINER_PAYOUT)
        result = build_block(state, Mempool(), number=5, timestamp=65,
                             coinbase=MINER, base_fee=0,
                             bundles=[single, payout])
        api.record_block(5, MINER, result.included_bundles)
        return api

    def test_stats_from_known_bundles(self):
        stats = bundle_stats(self.make_api())
        assert stats.total_blocks == 1
        assert stats.total_bundles == 2
        assert stats.bundles_per_block_mean == 2.0
        assert stats.txs_per_bundle_mean == 2.0  # (1 + 3) / 2
        assert stats.largest_bundle_txs == 3
        assert stats.single_tx_bundle_share == 0.5
        assert stats.type_shares == {"flashbots": 0.5,
                                     "miner_payout": 0.5}

    def test_empty_api(self):
        stats = bundle_stats(FlashbotsBlocksApi())
        assert stats.total_blocks == 0
        assert stats.total_bundles == 0
        assert stats.type_shares == {}
