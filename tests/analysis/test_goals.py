"""Unit tests for the goal audits (Section 5)."""

from repro.analysis.goals import negative_profits, profit_distribution
from repro.core.datasets import MevDataset, SandwichRecord


def sandwich(fb, gain_eth, cost_eth=0.0, miner_revenue_eth=0.0,
             block=1):
    return SandwichRecord(
        block_number=block, pool_address="0x" + "00" * 20,
        venue="UniswapV2", extractor="0x" + "aa" * 20,
        victim="0x" + "bb" * 20, front_tx=f"0xf{block}{fb}{gain_eth}",
        victim_tx=f"0xv{block}", back_tx=f"0xb{block}{fb}{gain_eth}",
        token_in="WETH", token_out="DAI", frontrun_amount_in=1,
        backrun_amount_out=2, gain_wei=int(gain_eth * 10**18),
        cost_wei=int(cost_eth * 10**18),
        miner_revenue_wei=int(miner_revenue_eth * 10**18),
        via_flashbots=fb)


class TestNegativeProfits:
    def test_counts_only_flashbots_losers(self):
        dataset = MevDataset(sandwiches=[
            sandwich(True, gain_eth=1.0, cost_eth=0.5, block=1),
            sandwich(True, gain_eth=0.1, cost_eth=0.4, block=2),   # loss
            sandwich(False, gain_eth=0.1, cost_eth=0.9, block=3),  # non-FB
        ])
        report = negative_profits(dataset)
        assert report.flashbots_sandwiches == 2
        assert report.unprofitable == 1
        assert report.unprofitable_share == 0.5
        assert report.loss_total_eth == 0.3

    def test_empty(self):
        report = negative_profits(MevDataset())
        assert report.unprofitable_share == 0.0
        assert report.loss_total_eth == 0.0


class TestProfitDistribution:
    def test_uplift_and_drop(self):
        dataset = MevDataset(sandwiches=[
            # FB: miner takes 0.4, searcher keeps 0.1
            sandwich(True, gain_eth=0.5, cost_eth=0.4,
                     miner_revenue_eth=0.4, block=1),
            # non-FB: miner takes 0.1, searcher keeps 0.4
            sandwich(False, gain_eth=0.5, cost_eth=0.1,
                     miner_revenue_eth=0.1, block=2),
        ])
        report = profit_distribution(dataset)
        assert report.miner_uplift == 4.0
        assert report.searcher_drop == 0.75
        assert report.miners_gain_with_flashbots
        assert report.searchers_lose_with_flashbots

    def test_no_non_fb_population(self):
        dataset = MevDataset(sandwiches=[
            sandwich(True, gain_eth=0.5, cost_eth=0.4,
                     miner_revenue_eth=0.4)])
        report = profit_distribution(dataset)
        assert report.miner_uplift == 0.0  # undefined → 0 sentinel
        assert report.searcher_drop == 0.0
