"""Tests for the parameter-sensitivity sweeps (tiny scenarios)."""

import pytest

from repro.analysis.sensitivity import (
    observation_rate_sweep,
    tip_fraction_sweep,
)


class TestTipSweep:
    @pytest.fixture(scope="class")
    def points(self):
        return tip_fraction_sweep([0.3, 0.85], blocks_per_month=12,
                                  seed=11)

    def test_one_point_per_level(self, points):
        assert [p.tip_mean for p in points] == [0.3, 0.85]

    def test_overbidding_raises_miner_uplift(self, points):
        assert points[1].miner_uplift > points[0].miner_uplift

    def test_overbidding_lowers_searcher_take(self, points):
        assert points[1].searcher_fb_mean_eth < \
            points[0].searcher_fb_mean_eth


class TestObservationSweep:
    @pytest.fixture(scope="class")
    def points(self):
        return observation_rate_sweep([1.0, 0.2], blocks_per_month=12,
                                      seed=11)

    def test_coverage_shrinks_with_rate(self, points):
        assert points[0].observed_pending > points[1].observed_pending

    def test_perfect_coverage_perfect_inference(self, points):
        assert points[0].private_precision == 1.0
        assert points[0].private_recall == 1.0

    def test_metrics_bounded(self, points):
        for point in points:
            assert 0.0 <= point.private_precision <= 1.0
            assert 0.0 <= point.private_recall <= 1.0
