"""Schema and gate tests for the v8 benchmark harness.

Small scenarios only — these tests check the *shape* of the report
(stages, gates, the serve and shard blocks, profile tables) and that
the gates are actually wired to the data they claim to check, never
wall-clock numbers.
"""

import json
import os

from repro.bench import run_bench, write_report

SMALL = dict(bpm=3, seed=5, workers=(1, 2), quick=False)


class TestReportSchema:
    def test_v8_document(self, tmp_path):
        report = run_bench(**SMALL)
        assert report["version"] == 8
        stage_names = [s["stage"] for s in report["stages"]]
        assert stage_names[0] == "simulate"
        for required in ("detection", "detection_indexed",
                         "detection_linear", "joins", "stream"):
            assert required in stage_names
        simulate = report["stages"][0]
        assert simulate["fresh"] is True
        assert simulate["blocks_per_s"] > 0
        assert report["simulate_s"] > 0
        assert report["lint_s"] > 0  # syntactic self-lint, since v4
        assert "profile" not in report  # only on request
        # Since v8 the machine block pins the host, not just its core
        # count — two BENCH files are only comparable when these match.
        machine = report["machine"]
        assert machine["cpu_count"] >= 1
        assert machine["platform"]  # non-empty platform string
        assert machine["python_version"].count(".") == 2
        # Without --serve/--shard the blocks are explicitly null, not
        # absent — CI parses every key unconditionally.
        assert report["serve"] is None
        assert report["serve_identical"] is None
        assert report["shard"] is None
        assert report["shard_identical"] is None
        assert "serve" not in stage_names
        assert "shard" not in stage_names
        # The document round-trips as JSON (CI parses it).
        path = tmp_path / "bench.json"
        write_report(report, path)
        assert json.loads(path.read_text())["version"] == 8

    def test_every_stage_reports_worker_honesty(self):
        """Since v7 every stage row carries both the requested and the
        machine-clamped effective worker count, so CI can tell a real
        speedup apart from a single-core degradation."""
        report = run_bench(**SMALL)
        cpus = os.cpu_count() or 1
        for stage in report["stages"]:
            assert stage["workers_requested"] >= 1
            assert 1 <= stage["workers_effective"] <= \
                min(stage["workers_requested"], cpus)
        for entry in report["end_to_end"]:
            assert entry["workers_effective"] == \
                min(entry["workers_requested"], cpus)

    def test_fast_vs_reference_gate_runs_and_passes(self):
        report = run_bench(**SMALL)
        assert report["sim_identical"] is True
        assert report["sim_reference_s"] > 0
        assert report["parallel_identical"] is True
        assert report["indexed_matches_linear"] is True
        assert report["stream_identical"] is True
        stream = report["stream"]
        assert stream["events"] >= stream["reorgs"]
        assert stream["lag_p99_blocks"] >= stream["lag_p50_blocks"]

    def test_profile_tables_cover_every_stage(self):
        report = run_bench(profile=True, **SMALL)
        stage_names = {s["stage"] for s in report["stages"]}
        assert set(report["profile"]) == stage_names
        for table in report["profile"].values():
            assert "cumulative" in table  # a real pstats table


class TestServeStage:
    def test_serve_block_and_identity_gate(self):
        report = run_bench(serve=True, serve_requests=80, **SMALL)
        assert report["serve_identical"] is True
        stage_names = [s["stage"] for s in report["stages"]]
        assert "serve" in stage_names
        serve = report["serve"]
        assert serve["seed"] == SMALL["seed"]
        # walks and conditional revalidations add extra requests
        assert serve["requests"] >= 80
        assert serve["errors"] == 0
        assert serve["qps"] > 0
        assert serve["p99_ms"] >= serve["p50_ms"] > 0
        assert serve["connections"] > 0
        assert sum(serve["by_kind"].values()) == 80
        # The serve stage rode a genuinely hostile stream.
        assert report["stream"]["reorgs"] > 0
        assert report["stream_identical"] is True


class TestShardStage:
    def test_shard_block_and_identity_gate(self):
        report = run_bench(shard=True, shard_workers=2, **SMALL)
        assert report["shard_identical"] is True
        stage_names = [s["stage"] for s in report["stages"]]
        assert "shard" in stage_names
        shard = report["shard"]
        assert shard["scope"] == "full"
        assert shard["epochs"] == shard["resimulated_epochs"] > 0
        assert shard["epoch_blocks"] == SMALL["bpm"]
        assert shard["seal_pass_s"] > 0
        assert shard["workers_requested"] == 2
        assert shard["workers_effective"] >= 1
        row = next(s for s in report["stages"] if s["stage"] == "shard")
        assert row["workers_requested"] == 2
        # The shard stage runs last; it must not perturb the gates the
        # earlier stages already decided.
        assert report["sim_identical"] is True
        assert report["parallel_identical"] is True

    def test_epoch_telemetry_and_scale_flat(self):
        """Since v8 the seal pass reports one telemetry row per epoch
        (throughput + resident set) and judges the scale_flat gate on
        activity-saturated epochs only."""
        report = run_bench(shard=True, **SMALL)
        shard = report["shard"]
        telemetry = shard["epoch_telemetry"]
        assert len(telemetry) == shard["epochs"]
        for index, row in enumerate(telemetry):
            assert row["epoch"] == index
            assert row["blocks"] == shard["epoch_blocks"]
            assert row["blocks_per_s"] > 0
            assert row["rss_mb"] is None or row["rss_mb"] > 0
        # Toy epochs are microseconds long, so the verdict itself is
        # noise — the schema contract is that it is judged (or honestly
        # skipped), never absent.
        assert shard["scale_flat"] in (True, False, None)
        # The telemetry pass feeds the same seals as one uninterrupted
        # collect_seals run: the splice gate passed above it.
        assert report["shard_identical"] is True

    def test_profile_adds_per_epoch_shard_tables(self):
        report = run_bench(shard=True, shard_prefix_epochs=1,
                           profile=True, **SMALL)
        epoch_tables = [name for name in report["profile"]
                        if name.startswith("shard_epoch[")]
        assert len(epoch_tables) == report["shard"]["epochs"]
        for name in epoch_tables + ["shard"]:
            assert "cumulative" in report["profile"][name]

    def test_prefix_scope(self):
        report = run_bench(shard=True, shard_prefix_epochs=2, **SMALL)
        assert report["shard_identical"] is True
        shard = report["shard"]
        assert shard["resimulated_epochs"] == 2
        assert shard["scope"] == "prefix[2]"
        row = next(s for s in report["stages"] if s["stage"] == "shard")
        assert row["blocks"] == 2 * SMALL["bpm"]


class TestWorldCacheInteraction:
    def test_cache_hit_skips_reference_gate(self, tmp_path):
        cache = tmp_path / "worlds"
        first = run_bench(world_cache=cache, **SMALL)
        assert first["world_cache"]["hit"] is False
        assert first["sim_identical"] is True
        second = run_bench(world_cache=cache, **SMALL)
        assert second["world_cache"]["hit"] is True
        assert second["sim_identical"] is None
        assert second["sim_reference_s"] is None
        assert second["stages"][0]["fresh"] is False
        # The cached world feeds the same downstream measurements.
        assert (second["indexed_matches_linear"] is True
                and second["parallel_identical"] is True)
