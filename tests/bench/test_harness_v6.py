"""Schema and gate tests for the v6 benchmark harness.

Small scenarios only — these tests check the *shape* of the report
(stages, gates, the serve block, profile tables) and that the gates
are actually wired to the data they claim to check, never wall-clock
numbers.
"""

import json

from repro.bench import run_bench, write_report

SMALL = dict(bpm=3, seed=5, workers=(1, 2), quick=False)


class TestReportSchema:
    def test_v6_document(self, tmp_path):
        report = run_bench(**SMALL)
        assert report["version"] == 6
        stage_names = [s["stage"] for s in report["stages"]]
        assert stage_names[0] == "simulate"
        for required in ("detection", "detection_indexed",
                         "detection_linear", "joins", "stream"):
            assert required in stage_names
        simulate = report["stages"][0]
        assert simulate["fresh"] is True
        assert simulate["blocks_per_s"] > 0
        assert report["simulate_s"] > 0
        assert report["lint_s"] > 0  # syntactic self-lint, since v4
        assert "profile" not in report  # only on request
        # Without --serve the serve block is explicitly null, not
        # absent — CI parses both keys unconditionally.
        assert report["serve"] is None
        assert report["serve_identical"] is None
        assert "serve" not in stage_names
        # The document round-trips as JSON (CI parses it).
        path = tmp_path / "bench.json"
        write_report(report, path)
        assert json.loads(path.read_text())["version"] == 6

    def test_fast_vs_reference_gate_runs_and_passes(self):
        report = run_bench(**SMALL)
        assert report["sim_identical"] is True
        assert report["sim_reference_s"] > 0
        assert report["parallel_identical"] is True
        assert report["indexed_matches_linear"] is True
        assert report["stream_identical"] is True
        stream = report["stream"]
        assert stream["events"] >= stream["reorgs"]
        assert stream["lag_p99_blocks"] >= stream["lag_p50_blocks"]

    def test_profile_tables_cover_every_stage(self):
        report = run_bench(profile=True, **SMALL)
        stage_names = {s["stage"] for s in report["stages"]}
        assert set(report["profile"]) == stage_names
        for table in report["profile"].values():
            assert "cumulative" in table  # a real pstats table


class TestServeStage:
    def test_serve_block_and_identity_gate(self):
        report = run_bench(serve=True, serve_requests=80, **SMALL)
        assert report["serve_identical"] is True
        stage_names = [s["stage"] for s in report["stages"]]
        assert "serve" in stage_names
        serve = report["serve"]
        assert serve["seed"] == SMALL["seed"]
        # walks and conditional revalidations add extra requests
        assert serve["requests"] >= 80
        assert serve["errors"] == 0
        assert serve["qps"] > 0
        assert serve["p99_ms"] >= serve["p50_ms"] > 0
        assert serve["connections"] > 0
        assert sum(serve["by_kind"].values()) == 80
        # The serve stage rode a genuinely hostile stream.
        assert report["stream"]["reorgs"] > 0
        assert report["stream_identical"] is True


class TestWorldCacheInteraction:
    def test_cache_hit_skips_reference_gate(self, tmp_path):
        cache = tmp_path / "worlds"
        first = run_bench(world_cache=cache, **SMALL)
        assert first["world_cache"]["hit"] is False
        assert first["sim_identical"] is True
        second = run_bench(world_cache=cache, **SMALL)
        assert second["world_cache"]["hit"] is True
        assert second["sim_identical"] is None
        assert second["sim_reference_s"] is None
        assert second["stages"][0]["fresh"] is False
        # The cached world feeds the same downstream measurements.
        assert (second["indexed_matches_linear"] is True
                and second["parallel_identical"] is True)
