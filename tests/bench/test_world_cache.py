"""Unit tests for the bench world-snapshot cache.

The cache must only ever save time: a hit replays a verified,
bit-equal world; *anything* questionable — missing file, garbage
bytes, wrong shape, content drift — is a miss that falls back to a
fresh simulation.
"""

import pickle

from repro.bench import (
    WORLD_CACHE_FORMAT,
    load_world,
    store_world,
    world_digest,
)
from repro.bench.harness import _world_fingerprint, _world_path
from repro.sim import ScenarioConfig, build_paper_scenario

CONFIG = ScenarioConfig(blocks_per_month=6, seed=3)


def tiny_world():
    from repro.chain.transaction import reset_tx_counter
    reset_tx_counter()
    return build_paper_scenario(CONFIG).run()


class TestWorldDigest:
    def test_stable_for_equal_configs(self):
        assert world_digest(CONFIG) == \
            world_digest(ScenarioConfig(blocks_per_month=6, seed=3))

    def test_sensitive_to_every_knob(self):
        base = world_digest(CONFIG)
        assert world_digest(ScenarioConfig(blocks_per_month=6,
                                           seed=4)) != base
        assert world_digest(ScenarioConfig(blocks_per_month=7,
                                           seed=3)) != base

    def test_sensitive_to_package_version(self, monkeypatch):
        import repro
        base = world_digest(CONFIG)
        monkeypatch.setattr(repro, "__version__", "0.0.0-test")
        assert world_digest(CONFIG) != base


class TestStoreAndLoad:
    def test_round_trip(self, tmp_path):
        result = tiny_world()
        path = store_world(tmp_path, CONFIG, result)
        assert path.exists()
        loaded = load_world(tmp_path, CONFIG)
        assert loaded is not None
        assert _world_fingerprint(loaded) == _world_fingerprint(result)
        assert loaded.node.latest_block_number() == \
            result.node.latest_block_number()

    def test_missing_snapshot_is_a_miss(self, tmp_path):
        assert load_world(tmp_path, CONFIG) is None
        assert load_world(tmp_path
                          / "never-created", CONFIG) is None

    def test_fingerprint_mismatch_is_a_miss(self, tmp_path):
        result = tiny_world()
        path = store_world(tmp_path, CONFIG, result)
        with open(path, "rb") as stream:
            document = pickle.load(stream)
        document["fingerprint"] = "0" * 64  # content drift
        with open(path, "wb") as stream:
            pickle.dump(document, stream)
        assert load_world(tmp_path, CONFIG) is None

    def test_corrupt_snapshot_is_a_miss(self, tmp_path):
        path = _world_path(tmp_path, CONFIG)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"not a pickle")
        assert load_world(tmp_path, CONFIG) is None

    def test_snapshot_carries_the_format_marker(self, tmp_path):
        store_world(tmp_path, CONFIG, tiny_world())
        with open(_world_path(tmp_path, CONFIG), "rb") as stream:
            document = pickle.load(stream)
        assert document["format"] == WORLD_CACHE_FORMAT == 2

    def test_formatless_snapshot_is_a_miss(self, tmp_path, capsys):
        """A monolithic cache written by <= 1.5.0 has no format
        marker; it must be refused with a message naming the old
        layout, never a pickle error."""
        result = tiny_world()
        path = store_world(tmp_path, CONFIG, result)
        with open(path, "rb") as stream:
            document = pickle.load(stream)
        del document["format"]
        with open(path, "wb") as stream:
            pickle.dump(document, stream)
        assert load_world(tmp_path, CONFIG) is None
        assert "1.5.0" in capsys.readouterr().err

    def test_other_format_is_a_miss(self, tmp_path, capsys):
        result = tiny_world()
        path = store_world(tmp_path, CONFIG, result)
        with open(path, "rb") as stream:
            document = pickle.load(stream)
        document["format"] = WORLD_CACHE_FORMAT + 1
        with open(path, "wb") as stream:
            pickle.dump(document, stream)
        assert load_world(tmp_path, CONFIG) is None
        assert "format" in capsys.readouterr().err

    def test_wrong_shape_is_a_miss(self, tmp_path):
        path = _world_path(tmp_path, CONFIG)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "wb") as stream:
            pickle.dump(["not", "a", "dict"], stream)
        assert load_world(tmp_path, CONFIG) is None
        with open(path, "wb") as stream:
            pickle.dump({"fingerprint": "x", "result": "not-a-world"},
                        stream)
        assert load_world(tmp_path, CONFIG) is None
