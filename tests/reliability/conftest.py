"""Shared world + baseline for the chaos suite.

The simulated study window is built once per session; every chaos test
re-measures it through fault-injecting transports and compares against
the fault-free ``baseline`` dataset.  ``REPRO_CHAOS_SEED`` (CI runs the
suite across several values) seeds the *fault plans only* — the world
itself stays fixed so baselines are comparable across seeds.
"""

import os

import pytest

from repro import run_inspector
from repro.sim import ScenarioConfig, build_paper_scenario

#: seed for every fault plan in the suite (CI matrix: 1, 2, 3)
CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "1"))


@pytest.fixture(scope="session")
def sim_result():
    from repro.chain.transaction import reset_tx_counter
    reset_tx_counter()  # identical world regardless of test order
    config = ScenarioConfig(blocks_per_month=20, seed=7)
    world = build_paper_scenario(config)
    return world.run()


@pytest.fixture(scope="session")
def span(sim_result):
    """The study window's inclusive block range."""
    return (sim_result.node.earliest_block_number(),
            sim_result.node.latest_block_number())


@pytest.fixture(scope="session")
def baseline(sim_result):
    """The fault-free measurement every chaos run is compared against."""
    return run_inspector(sim_result)
