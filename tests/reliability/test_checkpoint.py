"""CheckpointStore: atomic replace, durability, loud staleness."""

import json
import os
import stat
import subprocess
import sys

import pytest

from repro.reliability import CheckpointError, CheckpointStore
from repro.reliability.checkpoint import CHECKPOINT_VERSION


@pytest.fixture
def store(tmp_path):
    return CheckpointStore(tmp_path / "run.ckpt.json")


class TestRoundTrip:
    def test_save_load(self, store):
        store.save({"from_block": 1, "chunks": {"1-5": {"rows": []}}})
        document = store.load()
        assert document["from_block"] == 1
        assert document["chunks"] == {"1-5": {"rows": []}}
        assert document["version"] == CHECKPOINT_VERSION

    def test_missing_file_loads_none(self, store):
        assert store.load() is None
        assert not store.exists()

    def test_save_overwrites(self, store):
        store.save({"generation": 1})
        store.save({"generation": 2})
        assert store.load()["generation"] == 2

    def test_save_creates_parent_directories(self, tmp_path):
        nested = CheckpointStore(tmp_path / "a" / "b" / "run.json")
        nested.save({"ok": True})
        assert nested.load()["ok"] is True

    def test_clear(self, store):
        store.save({"x": 1})
        store.clear()
        assert store.load() is None
        store.clear()  # clearing a missing checkpoint is a no-op


class TestAtomicity:
    def test_no_temp_file_left_behind(self, store):
        store.save({"x": 1})
        siblings = [p.name for p in store.path.parent.iterdir()]
        assert siblings == [store.path.name]

    def test_payload_not_mutated(self, store):
        payload = {"x": 1}
        store.save(payload)
        assert payload == {"x": 1}  # version header goes into a copy


class TestDurability:
    def test_save_fsyncs_file_and_parent_directory(self, store,
                                                   monkeypatch):
        """Rename durability needs *two* fsyncs: the temp file's bytes
        and the parent directory's entry table (the rename itself)."""
        synced = []
        real_fsync = os.fsync

        def recording_fsync(fd):
            synced.append(stat.S_ISDIR(os.fstat(fd).st_mode))
            real_fsync(fd)

        monkeypatch.setattr(os, "fsync", recording_fsync)
        store.save({"x": 1})
        assert True in synced   # the directory entry table
        assert False in synced  # the temp file's bytes

    def test_checkpoint_survives_a_crash_killed_writer(self, store):
        """A process hard-killed right after ``save`` returns leaves a
        loadable checkpoint — no torn file, no missing rename."""
        script = (
            "import os, sys\n"
            "from repro.reliability import CheckpointStore\n"
            "CheckpointStore(sys.argv[1]).save({'survived': True})\n"
            "os.kill(os.getpid(), 9)\n"
        )
        process = subprocess.run(
            [sys.executable, "-c", script, str(store.path)],
            env={**os.environ,
                 "PYTHONPATH": os.pathsep.join(sys.path)})
        assert process.returncode == -9  # really died by SIGKILL
        assert store.load() == {"survived": True,
                                "version": CHECKPOINT_VERSION}

    def test_crash_mid_save_keeps_previous_generation(self, store,
                                                      monkeypatch):
        """A crash *before* the rename must leave the old document."""
        store.save({"generation": 1})

        def explode(src, dst):
            raise KeyboardInterrupt  # simulated kill at the worst time

        monkeypatch.setattr(os, "replace", explode)
        with pytest.raises(KeyboardInterrupt):
            store.save({"generation": 2})
        monkeypatch.undo()
        assert store.load()["generation"] == 1


class TestStaleness:
    def test_corrupt_json_fails_loudly(self, store):
        store.path.write_text("{not json", encoding="utf-8")
        with pytest.raises(CheckpointError):
            store.load()

    def test_non_object_document_rejected(self, store):
        store.path.write_text("[1, 2, 3]", encoding="utf-8")
        with pytest.raises(CheckpointError):
            store.load()

    def test_version_mismatch_rejected(self, store):
        document = {"version": CHECKPOINT_VERSION + 1, "chunks": {}}
        store.path.write_text(json.dumps(document), encoding="utf-8")
        with pytest.raises(CheckpointError) as excinfo:
            store.load()
        assert "version" in str(excinfo.value)

    def test_missing_version_rejected(self, store):
        store.path.write_text(json.dumps({"chunks": {}}),
                              encoding="utf-8")
        with pytest.raises(CheckpointError):
            store.load()
