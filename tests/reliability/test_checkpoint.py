"""CheckpointStore: atomic replace, version header, loud staleness."""

import json

import pytest

from repro.reliability import CheckpointError, CheckpointStore
from repro.reliability.checkpoint import CHECKPOINT_VERSION


@pytest.fixture
def store(tmp_path):
    return CheckpointStore(tmp_path / "run.ckpt.json")


class TestRoundTrip:
    def test_save_load(self, store):
        store.save({"from_block": 1, "chunks": {"1-5": {"rows": []}}})
        document = store.load()
        assert document["from_block"] == 1
        assert document["chunks"] == {"1-5": {"rows": []}}
        assert document["version"] == CHECKPOINT_VERSION

    def test_missing_file_loads_none(self, store):
        assert store.load() is None
        assert not store.exists()

    def test_save_overwrites(self, store):
        store.save({"generation": 1})
        store.save({"generation": 2})
        assert store.load()["generation"] == 2

    def test_save_creates_parent_directories(self, tmp_path):
        nested = CheckpointStore(tmp_path / "a" / "b" / "run.json")
        nested.save({"ok": True})
        assert nested.load()["ok"] is True

    def test_clear(self, store):
        store.save({"x": 1})
        store.clear()
        assert store.load() is None
        store.clear()  # clearing a missing checkpoint is a no-op


class TestAtomicity:
    def test_no_temp_file_left_behind(self, store):
        store.save({"x": 1})
        siblings = [p.name for p in store.path.parent.iterdir()]
        assert siblings == [store.path.name]

    def test_payload_not_mutated(self, store):
        payload = {"x": 1}
        store.save(payload)
        assert payload == {"x": 1}  # version header goes into a copy


class TestStaleness:
    def test_corrupt_json_fails_loudly(self, store):
        store.path.write_text("{not json", encoding="utf-8")
        with pytest.raises(CheckpointError):
            store.load()

    def test_non_object_document_rejected(self, store):
        store.path.write_text("[1, 2, 3]", encoding="utf-8")
        with pytest.raises(CheckpointError):
            store.load()

    def test_version_mismatch_rejected(self, store):
        document = {"version": CHECKPOINT_VERSION + 1, "chunks": {}}
        store.path.write_text(json.dumps(document), encoding="utf-8")
        with pytest.raises(CheckpointError) as excinfo:
            store.load()
        assert "version" in str(excinfo.value)

    def test_missing_version_rejected(self, store):
        store.path.write_text(json.dumps({"chunks": {}}),
                              encoding="utf-8")
        with pytest.raises(CheckpointError):
            store.load()
