"""Chaos runs of the full pipeline against the fault-free baseline.

Two properties anchor the suite (ISSUE acceptance criteria):

* **transient faults vanish** — with retries, a chaos run's records are
  bit-identical to the fault-free run's;
* **unrecoverable faults are loud** — every record a Flashbots gap or
  observer outage touches is labelled ``unknown`` / ``unobserved`` and
  counted in the :class:`DataQualityReport`; every untouched record
  keeps exactly its baseline labels (zero silent mislabels).
"""

import random

import pytest

from repro import FaultPlan, run_inspector

from tests.reliability.conftest import CHAOS_SEED


def paired_records(chaos, baseline):
    """Baseline/chaos record pairs; detection must line up exactly."""
    chaos_records = chaos.all_records()
    base_records = baseline.all_records()
    assert len(chaos_records) == len(base_records)
    pairs = list(zip(base_records, chaos_records))
    for base, record in pairs:
        assert type(record) is type(base)
        assert record.block_number == base.block_number
    return pairs


def in_ranges(block, ranges):
    return any(lo <= block <= hi for lo, hi in ranges)


class TestTransientFaults:
    def test_retries_restore_bit_identical_results(self, sim_result,
                                                   baseline):
        plan = FaultPlan.transient(CHAOS_SEED)
        dataset = run_inspector(sim_result, fault_plan=plan)
        assert dataset.records_equal(baseline)

    def test_recovery_work_is_visible_in_the_report(self, sim_result):
        plan = FaultPlan.transient(CHAOS_SEED)
        quality = run_inspector(sim_result, fault_plan=plan).quality
        assert quality.total_retries > 0
        assert quality.total_breaker_trips == 0
        assert quality.chunks_failed == 0
        assert sum(s.simulated_backoff_s
                   for s in quality.sources.values()) > 0.0

    def test_fault_free_run_reports_fully_healthy_sources(self, baseline):
        quality = baseline.quality
        assert quality.total_retries == 0
        assert quality.failed_ranges == ()
        assert quality.unknown_flashbots_records == 0
        assert quality.unobserved_records == 0
        for source in quality.sources.values():
            assert source.healthy


class TestFlashbotsGap:
    @pytest.fixture(scope="class")
    def gap_run(self, sim_result, span):
        plan = FaultPlan.from_profile("gaps", CHAOS_SEED, *span)
        return plan, run_inspector(sim_result, fault_plan=plan)

    def test_gap_is_reported(self, gap_run):
        plan, dataset = gap_run
        flashbots = dataset.quality.sources["flashbots"]
        assert flashbots.gap_ranges == plan.flashbots_gaps
        assert flashbots.coverage < 1.0
        assert not flashbots.healthy
        assert not dataset.quality.healthy

    def test_every_affected_record_is_unknown_never_false(
            self, gap_run, baseline):
        plan, dataset = gap_run
        affected = 0
        for base, record in paired_records(dataset, baseline):
            if plan.in_flashbots_gap(record.block_number):
                affected += 1
                assert record.via_flashbots is None
            else:
                assert record.via_flashbots == base.via_flashbots
        assert affected > 0  # the carved gap must actually bite
        assert dataset.quality.unknown_flashbots_records == affected

    def test_gap_blocks_report_no_coverage(self, sim_result, span):
        plan = FaultPlan.from_profile("gaps", CHAOS_SEED, *span)
        from repro.faults import FaultyFlashbotsApi
        api = FaultyFlashbotsApi(sim_result.flashbots_api, plan)
        (lo, hi), = plan.flashbots_gaps
        assert not api.has_block_data(lo)
        assert not api.has_block_data(hi)
        assert in_ranges(lo, api.coverage_gaps())


def outage_plan(sim_result, span):
    """A seeded downtime window carved *inside* the observation window.

    The collector only ran over the study's final stretch (as in the
    paper), so downtime anywhere else would be vacuous: this carve
    guarantees the outage actually overlaps collected blocks.
    """
    observer = sim_result.observer
    lo = observer.start_block
    hi = observer.end_block if observer.end_block is not None else span[1]
    width = max(1, (hi - lo + 1) // 4)
    rng = random.Random(f"{CHAOS_SEED}:outage-test")
    start = lo + rng.randrange(max(1, hi - lo + 1 - width))
    return FaultPlan(
        seed=CHAOS_SEED,
        observer_downtime=((start, min(hi, start + width - 1)),))


class TestObserverOutage:
    @pytest.fixture(scope="class")
    def outage_run(self, sim_result, span):
        plan = outage_plan(sim_result, span)
        return plan, run_inspector(sim_result, fault_plan=plan)

    def test_downtime_is_reported(self, outage_run):
        plan, dataset = outage_run
        mempool = dataset.quality.sources["mempool"]
        assert plan.observer_downtime[0] in mempool.gap_ranges
        assert not mempool.healthy

    def test_every_unobserved_label_sits_next_to_downtime(
            self, outage_run, baseline):
        """'unobserved' appears where (and only where) the collector's
        downtime voids absence-based inference; everywhere else the
        labels match the baseline exactly."""
        plan, dataset = outage_run
        unobserved = 0
        for base, record in paired_records(dataset, baseline):
            voided = (plan.in_observer_downtime(record.block_number)
                      or plan.in_observer_downtime(
                          record.block_number - 1))
            if record.privacy == "unobserved":
                unobserved += 1
                assert voided
            elif not voided:
                assert record.privacy == base.privacy
        assert unobserved > 0  # the outage must actually bite
        assert dataset.quality.unobserved_records == unobserved

    def test_positive_observations_survive_unrelated_downtime(
            self, outage_run, baseline):
        """Downtime never flips a publicly-observed record to private:
        degradation adds uncertainty, it does not invent privacy."""
        plan, dataset = outage_run
        for base, record in paired_records(dataset, baseline):
            if base.privacy == "public":
                assert record.privacy in ("public", "unobserved")


class TestChaosProfile:
    def test_everything_at_once_still_accounts_for_itself(
            self, sim_result, span, baseline):
        plan = FaultPlan.from_profile("chaos", CHAOS_SEED, *span)
        dataset = run_inspector(sim_result, fault_plan=plan)
        quality = dataset.quality
        # same detections — transient faults retried away, and neither
        # gaps nor downtime remove records, only labels
        assert len(dataset.all_records()) == len(baseline.all_records())
        assert quality.total_retries > 0
        assert quality.unknown_flashbots_records == sum(
            1 for r in dataset.all_records() if r.via_flashbots is None)
        assert quality.unobserved_records == sum(
            1 for r in dataset.all_records()
            if r.privacy == "unobserved")
        assert not quality.healthy


class TestObserverAccounting:
    def test_observed_plus_missed_reconciles_with_gossip(self,
                                                         sim_result):
        observer = sim_result.observer
        assert observer.observed_count + observer.missed_count \
            == observer.gossiped_total
        assert observer.gossiped_total > 0

    def test_coverage_matches_the_ledger(self, sim_result):
        observer = sim_result.observer
        coverage = observer.observed_coverage()
        assert coverage == observer.observed_count \
            / observer.gossiped_total
        assert 0.9 < coverage <= 1.0  # observation_rate is 0.995

    def test_downtime_facade_keeps_the_ledger_reconciled(
            self, sim_result, span):
        from repro.faults import FaultyMempoolObserver
        plan = outage_plan(sim_result, span)
        faulty = FaultyMempoolObserver(sim_result.observer, plan)
        assert faulty.observed_count + faulty.missed_count \
            == faulty.gossiped_total
        assert faulty.observed_count < sim_result.observer.observed_count
        assert faulty.observed_coverage() \
            < sim_result.observer.observed_coverage()
