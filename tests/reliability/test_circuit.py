"""CircuitBreaker state machine: closed → open → half-open → closed."""

import pytest

from repro.reliability import CircuitBreaker, CircuitOpenError
from repro.reliability.circuit import (
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
)


def make_breaker(threshold=3, cooldown=2):
    return CircuitBreaker("archive", failure_threshold=threshold,
                          cooldown_calls=cooldown)


class TestClosed:
    def test_starts_closed_and_permissive(self):
        breaker = make_breaker()
        breaker.before_call()  # no raise
        assert breaker.state == STATE_CLOSED
        assert breaker.trip_count == 0

    def test_failures_below_threshold_stay_closed(self):
        breaker = make_breaker(threshold=3)
        for _ in range(2):
            breaker.before_call()
            breaker.record_failure()
        assert breaker.state == STATE_CLOSED

    def test_success_resets_consecutive_count(self):
        breaker = make_breaker(threshold=3)
        for _ in range(20):  # 2 failures, then a success, forever
            breaker.record_failure()
            breaker.record_failure()
            breaker.record_success()
        assert breaker.state == STATE_CLOSED
        assert breaker.trip_count == 0


class TestTripAndCooldown:
    def test_threshold_consecutive_failures_trip(self):
        breaker = make_breaker(threshold=3)
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == STATE_OPEN
        assert breaker.trip_count == 1

    def test_open_breaker_fails_fast(self):
        breaker = make_breaker(threshold=1, cooldown=5)
        breaker.record_failure()
        with pytest.raises(CircuitOpenError):
            breaker.before_call()

    def test_rejection_is_not_retryable(self):
        """The retry layer must give up immediately on an open breaker
        — a breaker that gets retried is a breaker that does nothing."""
        breaker = make_breaker(threshold=1, cooldown=5)
        breaker.record_failure()
        with pytest.raises(CircuitOpenError) as excinfo:
            breaker.before_call()
        assert excinfo.value.retryable is False

    def test_cooldown_counted_in_rejected_calls(self):
        breaker = make_breaker(threshold=1, cooldown=2)
        breaker.record_failure()
        for _ in range(2):  # exactly cooldown_calls rejections
            with pytest.raises(CircuitOpenError):
                breaker.before_call()
        breaker.before_call()  # the probe is let through
        assert breaker.state == STATE_HALF_OPEN


class TestHalfOpen:
    def open_then_probe(self):
        breaker = make_breaker(threshold=1, cooldown=1)
        breaker.record_failure()
        with pytest.raises(CircuitOpenError):
            breaker.before_call()
        breaker.before_call()  # probe admitted
        assert breaker.state == STATE_HALF_OPEN
        return breaker

    def test_successful_probe_closes(self):
        breaker = self.open_then_probe()
        breaker.record_success()
        assert breaker.state == STATE_CLOSED

    def test_failed_probe_reopens_for_another_cooldown(self):
        breaker = self.open_then_probe()
        breaker.record_failure()
        assert breaker.state == STATE_OPEN
        assert breaker.trip_count == 2
        with pytest.raises(CircuitOpenError):
            breaker.before_call()


class TestValidation:
    def test_threshold_must_be_positive(self):
        with pytest.raises(ValueError):
            CircuitBreaker("archive", failure_threshold=0)

    def test_cooldown_must_be_positive(self):
        with pytest.raises(ValueError):
            CircuitBreaker("archive", cooldown_calls=0)
