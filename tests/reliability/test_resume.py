"""Crash-and-resume: a killed run restarts into an identical dataset.

The acceptance criterion for the resilient pipeline: a chunked,
checkpointed run killed mid-range and restarted with ``resume=True``
produces a ``MevDataset`` bit-identical to an uninterrupted run over the
same range.  The "kill" is a hard, non-DataSourceError crash injected at
the archive-node boundary — the resilience layer must *not* absorb it
(a power cut is not a retryable fault), the checkpoint must survive it.
"""

import pytest

from repro import run_inspector
from repro.core import MevInspector, PriceService
from repro.engine import RunConfig
from repro.reliability import (
    CheckpointError,
    CheckpointStore,
    shield,
)

CHUNK = 50  # 460 study blocks → 10 chunks


class SimulatedCrash(RuntimeError):
    """Deliberately NOT a DataSourceError: retries must not mask it."""


class CountingProxy:
    """Counts every archive-node call, to calibrate the crash point."""

    def __init__(self, inner):
        self._inner = inner
        self.calls = 0

    def __getattr__(self, name):
        attr = getattr(self._inner, name)
        if not callable(attr):
            return attr

        def counted(*args, **kwargs):
            self.calls += 1
            return attr(*args, **kwargs)
        return counted


class CrashingProxy:
    """Archive node that dies after serving ``budget`` calls."""

    def __init__(self, inner, budget):
        self._inner = inner
        self._budget = budget

    def __getattr__(self, name):
        attr = getattr(self._inner, name)
        if not callable(attr):
            return attr

        def guarded(*args, **kwargs):
            if self._budget <= 0:
                raise SimulatedCrash("process killed mid-run")
            self._budget -= 1
            return attr(*args, **kwargs)
        return guarded


def make_inspector(sim_result, node=None):
    shielded, observer, api = shield(
        node if node is not None else sim_result.node,
        sim_result.observer, sim_result.flashbots_api)
    return MevInspector(shielded, PriceService(sim_result.oracle),
                        api, observer)


class TestChunking:
    def test_chunked_run_equals_one_shot_run(self, sim_result, baseline):
        dataset = run_inspector(sim_result, chunk_size=CHUNK)
        assert dataset.records_equal(baseline)
        assert dataset.quality.chunks_total == 10
        assert dataset.quality.chunks_completed == 10

    def test_checkpointed_run_equals_plain_run(self, sim_result,
                                               baseline, tmp_path):
        store = CheckpointStore(tmp_path / "full.json")
        dataset = run_inspector(sim_result, chunk_size=CHUNK,
                                checkpoint=store)
        assert dataset.records_equal(baseline)
        assert len(store.load()["chunks"]) == 10


class TestCrashResume:
    def test_killed_run_resumes_into_identical_dataset(
            self, sim_result, baseline, tmp_path):
        # Calibrate: how many archive calls does a full run make?
        counter = CountingProxy(sim_result.node)
        make_inspector(sim_result, counter).run(
            config=RunConfig(chunk_size=CHUNK))
        assert counter.calls > 0

        # Kill the run halfway through its archive traffic.
        store = CheckpointStore(tmp_path / "crash.json")
        crasher = CrashingProxy(sim_result.node, counter.calls // 2)
        with pytest.raises(SimulatedCrash):
            make_inspector(sim_result, crasher).run(config=RunConfig(
                chunk_size=CHUNK, checkpoint=store))

        # The checkpoint survived the crash with a strict subset done.
        saved = store.load()
        assert saved is not None
        completed = len(saved["chunks"])
        assert 0 < completed < 10

        # Restart against the healthy node: identical records, and the
        # finished chunks came from the checkpoint, not recomputation.
        resumed = make_inspector(sim_result).run(config=RunConfig(
            chunk_size=CHUNK, checkpoint=store, resume=True))
        assert resumed.records_equal(baseline)
        assert resumed.quality.resumed
        assert resumed.quality.chunks_resumed == completed
        assert resumed.quality.chunks_completed == 10

    def test_resume_of_a_finished_run_recomputes_nothing(
            self, sim_result, baseline, tmp_path):
        store = CheckpointStore(tmp_path / "done.json")
        run_inspector(sim_result, chunk_size=CHUNK, checkpoint=store)

        counter = CountingProxy(sim_result.node)
        dataset = make_inspector(sim_result, counter).run(config=RunConfig(
            chunk_size=CHUNK, checkpoint=store, resume=True))
        assert dataset.records_equal(baseline)
        assert dataset.quality.chunks_resumed == 10
        # Only the range resolution touches the archive; no chunk does.
        assert counter.calls <= 2

    def test_mismatched_fingerprint_refuses_to_resume(
            self, sim_result, tmp_path):
        """A checkpoint written for one (range, chunk_size) must never
        silently seed a different run."""
        store = CheckpointStore(tmp_path / "mismatch.json")
        run_inspector(sim_result, chunk_size=CHUNK, checkpoint=store)
        with pytest.raises(CheckpointError):
            run_inspector(sim_result, chunk_size=CHUNK // 2,
                          checkpoint=store, resume=True)

    def test_without_resume_flag_checkpoint_is_ignored(
            self, sim_result, baseline, tmp_path):
        store = CheckpointStore(tmp_path / "cold.json")
        run_inspector(sim_result, chunk_size=CHUNK, checkpoint=store)
        # A fresh run (no --resume) recomputes and overwrites cleanly.
        dataset = run_inspector(sim_result, chunk_size=CHUNK,
                                checkpoint=store)
        assert dataset.records_equal(baseline)
        assert not dataset.quality.resumed
