"""ResilientCaller + RetryPolicy: retries, breakers, stats accounting."""

import pytest

from repro.faults.errors import SourceGapError, TransportError
from repro.reliability import (
    CircuitBreaker,
    CircuitOpenError,
    ResilientCaller,
    RetryExhaustedError,
    RetryPolicy,
)


class Flaky:
    """Operation that fails its first ``failures`` calls, then heals."""

    def __init__(self, failures, result="payload"):
        self.failures = failures
        self.result = result
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise TransportError(f"injected failure #{self.calls}")
        return self.result


def make_caller(max_attempts=4, threshold=5, cooldown=10):
    return ResilientCaller(
        "archive",
        retry=RetryPolicy(max_attempts=max_attempts, seed=0),
        breaker=CircuitBreaker("archive", failure_threshold=threshold,
                               cooldown_calls=cooldown))


class TestRetries:
    def test_transient_failures_are_absorbed(self):
        caller = make_caller()
        operation = Flaky(failures=2)
        assert caller.call("get_block", "17", operation) == "payload"
        assert operation.calls == 3
        assert caller.stats.requests == 1
        assert caller.stats.retries == 2
        assert caller.stats.failed_attempts == 2
        assert caller.stats.exhausted == 0
        assert caller.stats.simulated_backoff_s > 0.0

    def test_exhaustion_surfaces_and_is_counted(self):
        caller = make_caller(max_attempts=3)
        with pytest.raises(RetryExhaustedError):
            caller.call("get_block", "17", Flaky(failures=99))
        assert caller.stats.exhausted == 1
        assert caller.stats.failed_attempts == 3

    def test_non_retryable_error_propagates_immediately(self):
        caller = make_caller()
        calls = []

        def gapped():
            calls.append(1)
            raise SourceGapError("no history here")

        with pytest.raises(SourceGapError):
            caller.call("iter_blocks", "1-9", gapped)
        assert len(calls) == 1  # not retried
        assert caller.stats.exhausted == 1

    def test_backoff_schedule_is_seeded_per_key(self):
        policy = RetryPolicy(max_attempts=4, seed=3)
        first = policy.backoff_delays("archive.get_block:17")
        again = policy.backoff_delays("archive.get_block:17")
        other = policy.backoff_delays("archive.get_block:18")
        assert first == again  # deterministic replay
        assert first != other  # jitter varies by key
        assert len(first) == 3  # one delay between consecutive attempts

    def test_jitter_stays_within_bounds(self):
        policy = RetryPolicy(max_attempts=5, base_delay=0.1,
                             multiplier=2.0, jitter=0.25, seed=1)
        for index, delay in enumerate(policy.backoff_delays("k")):
            raw = min(policy.max_delay, 0.1 * (2.0 ** index))
            assert raw * 0.75 <= delay <= raw * 1.25


class TestBreakerIntegration:
    def test_persistent_failure_trips_the_breaker(self):
        """Tripping mid-retry-schedule cuts the schedule short: the
        next attempt's gate raises the non-retryable rejection."""
        caller = make_caller(max_attempts=4, threshold=3)
        operation = Flaky(failures=99)
        with pytest.raises(CircuitOpenError):
            caller.call("get_block", "17", operation)
        assert caller.breaker_trips == 1
        assert operation.calls == 3  # threshold, not max_attempts

    def test_open_breaker_fails_fast_without_retries(self):
        caller = make_caller(max_attempts=4, threshold=2, cooldown=10)
        with pytest.raises(CircuitOpenError):
            caller.call("get_block", "17", Flaky(failures=99))
        operation = Flaky(failures=0)
        before = caller.stats.retries
        with pytest.raises(CircuitOpenError):
            caller.call("get_block", "18", operation)
        assert operation.calls == 0  # rejected before reaching the source
        assert caller.stats.retries == before  # no retry storm
        assert caller.stats.exhausted == 2

    def test_probe_after_cooldown_heals_the_source(self):
        caller = make_caller(max_attempts=1, threshold=1, cooldown=2)
        with pytest.raises(TransportError):
            caller.call("get_block", "1", Flaky(failures=99))
        for key in ("2", "3"):  # burn the cooldown rejections
            with pytest.raises(CircuitOpenError):
                caller.call("get_block", key, Flaky(failures=0))
        # next call is the half-open probe; it succeeds and closes
        assert caller.call("get_block", "4", Flaky(failures=0)) \
            == "payload"
        assert caller.call("get_block", "5", Flaky(failures=0)) \
            == "payload"
