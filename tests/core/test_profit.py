"""Tests for the price service and cost model."""

import pytest

from repro.chain.receipt import Receipt
from repro.chain.types import ether, gwei
from repro.core.profit import PriceService, transaction_cost
from repro.lending.oracle import PRICE_SCALE, PriceOracle


@pytest.fixture
def prices():
    oracle = PriceOracle()
    oracle.set_price("DAI", PRICE_SCALE // 2_000, block_number=0)
    oracle.set_price("DAI", PRICE_SCALE // 4_000, block_number=100)
    return PriceService(oracle)


class TestPriceService:
    def test_weth_identity(self, prices):
        assert prices.value_in_eth("WETH", ether(3), 50) == ether(3)

    def test_historical_lookup(self, prices):
        early = prices.value_in_eth("DAI", ether(4_000), 50)
        late = prices.value_in_eth("DAI", ether(4_000), 150)
        assert early == pytest.approx(ether(2), abs=10**6)
        assert late == pytest.approx(ether(1), abs=10**6)

    def test_unknown_token_returns_none(self, prices):
        assert prices.value_in_eth("GHOST", 100, 50) is None

    def test_negative_amounts_valued(self, prices):
        """Losses must convert too (sandwich gains can be negative)."""
        value = prices.value_in_eth("WETH", -ether(1), 50)
        assert value == -ether(1)


class TestTransactionCost:
    def receipt(self, gas_used=100_000, price=gwei(50), tip=0):
        return Receipt(tx_hash="0x" + "11" * 32, block_number=1,
                       tx_index=0, sender="0x" + "22" * 20, to=None,
                       status=True, gas_used=gas_used,
                       effective_gas_price=price,
                       miner_tip_per_gas=price, coinbase_transfer=tip)

    def test_fee_only(self):
        assert transaction_cost([self.receipt()]) == 100_000 * gwei(50)

    def test_includes_coinbase_tip(self):
        cost = transaction_cost([self.receipt(tip=ether(1))])
        assert cost == 100_000 * gwei(50) + ether(1)

    def test_sums_receipts(self):
        cost = transaction_cost([self.receipt(), self.receipt()])
        assert cost == 2 * 100_000 * gwei(50)

    def test_empty(self):
        assert transaction_cost([]) == 0
