"""Unit tests for the MevInspector orchestrator."""

import pytest

from repro.core.pipeline import MevInspector
from repro.core.profit import PriceService
from repro.chain.types import ether
from repro.flashbots.api import FlashbotsBlocksApi

from tests.core.conftest import ChainHarness


@pytest.fixture
def harness():
    return ChainHarness()


class TestInspector:
    def test_minimal_configuration(self, harness):
        """API and observer are optional (pure archive-node mode)."""
        harness.mine_sandwich()
        inspector = MevInspector(harness.node, harness.prices)
        dataset = inspector.run()
        assert len(dataset.sandwiches) == 1
        assert not dataset.sandwiches[0].via_flashbots
        assert dataset.sandwiches[0].privacy is None

    def test_block_range_restriction(self, harness):
        harness.mine_sandwich()
        harness.mine_sandwich()
        inspector = MevInspector(harness.node, harness.prices)
        assert len(inspector.run(from_block=2).sandwiches) == 1
        assert len(inspector.run(to_block=1).sandwiches) == 1
        assert len(inspector.run().sandwiches) == 2

    def test_flashbots_join_applied(self, harness):
        front, victim, back = harness.mine_sandwich()
        api = FlashbotsBlocksApi()
        # Fake the public dataset: label both legs as Flashbots.
        from repro.flashbots.api import ApiTransaction, ApiBlock
        rows = tuple(ApiTransaction(tx_hash=tx.hash, bundle_id="0xb",
                                    bundle_type="flashbots",
                                    bundle_index=0,
                                    tx_index_in_bundle=i)
                     for i, tx in enumerate((front, back)))
        api._blocks[1] = ApiBlock(block_number=1, miner="0x" + "00" * 20,
                                  miner_reward=0, bundle_count=1,
                                  transactions=rows)
        for row in rows:
            api._tx_index[row.tx_hash] = row
        inspector = MevInspector(harness.node, harness.prices,
                                 flashbots_api=api)
        dataset = inspector.run()
        assert dataset.sandwiches[0].via_flashbots

    def test_empty_chain(self, harness):
        inspector = MevInspector(harness.node, harness.prices)
        dataset = inspector.run()
        assert dataset.totals()["total"] == 0

    def test_unpriced_tokens_dropped(self, harness):
        """Records whose tokens the price service cannot value are
        dropped, as the paper drops non-CoinGecko tokens."""
        ghost = harness.registry.create_pool("UniswapV2", "WETH",
                                             "GHOST")
        ghost.add_liquidity(harness.state, WETH=ether(100),
                            GHOST=ether(100_000))
        harness.contracts[ghost.address] = ghost
        from tests.core.conftest import ATTACKER, VICTIM
        harness.state.mint_token("GHOST", ATTACKER, ether(10_000))
        harness.state.mint_token("GHOST", VICTIM, ether(10_000))
        # The attack trades GHOST → WETH → GHOST: its gain is in GHOST
        # units, which the price service cannot value.
        front = harness.swap_tx(ATTACKER, ghost, "GHOST", ether(500))
        victim = harness.swap_tx(VICTIM, ghost, "GHOST", ether(800))
        bought = ghost.quote_out(harness.state, "GHOST", ether(500))
        back = harness.swap_tx(ATTACKER, ghost, "WETH", bought)
        back.nonce = front.nonce + 1
        _, receipts = harness.mine([front, victim, back])
        assert all(r.status for r in receipts)
        inspector = MevInspector(harness.node, harness.prices)
        assert inspector.run().sandwiches == []
