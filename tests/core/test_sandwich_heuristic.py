"""Surgical tests for the Torres-et-al sandwich detection heuristic."""

from repro.chain.types import ether, gwei
from repro.core.heuristics.sandwich import detect_sandwiches

from tests.core.conftest import ATTACKER, MINER, OTHER, VICTIM


class TestDetection:
    def test_textbook_sandwich_found(self, harness):
        front, victim, back = harness.mine_sandwich()
        records = detect_sandwiches(harness.node, harness.prices)
        assert len(records) == 1
        record = records[0]
        assert record.extractor == ATTACKER
        assert record.victim == VICTIM
        assert record.front_tx == front.hash
        assert record.victim_tx == victim.hash
        assert record.back_tx == back.hash
        assert record.venue == "UniswapV2"
        assert record.miner == MINER

    def test_profit_positive_for_real_attack(self, harness):
        harness.mine_sandwich(victim_amount=ether(50),
                              frontrun=ether(50))
        record = detect_sandwiches(harness.node, harness.prices)[0]
        assert record.gain_wei > 0
        assert record.profit_wei > 0
        assert record.cost_wei > 0

    def test_miner_revenue_recorded(self, harness):
        harness.mine_sandwich(tip=ether(1))
        record = detect_sandwiches(harness.node, harness.prices)[0]
        assert record.miner_revenue_wei >= ether(1)

    def test_two_plain_swaps_not_flagged(self, harness):
        a = harness.swap_tx(ATTACKER, harness.uni, "WETH", ether(5))
        b = harness.swap_tx(VICTIM, harness.uni, "WETH", ether(5))
        harness.mine([a, b])
        assert detect_sandwiches(harness.node, harness.prices) == []

    def test_round_trip_without_victim_not_flagged(self, harness):
        """Buy then sell by one account with no one in between."""
        front = harness.swap_tx(ATTACKER, harness.uni, "WETH",
                                ether(10))
        bought = harness.uni.quote_out(harness.state, "WETH", ether(10))
        back = harness.swap_tx(ATTACKER, harness.uni, "DAI", bought)
        back.nonce = front.nonce + 1
        harness.mine([front, back])
        assert detect_sandwiches(harness.node, harness.prices) == []

    def test_victim_must_trade_same_direction(self, harness):
        front = harness.swap_tx(ATTACKER, harness.uni, "WETH",
                                ether(10))
        wrong_way = harness.swap_tx(VICTIM, harness.uni, "DAI",
                                    ether(9_000))
        bought = harness.uni.quote_out(harness.state, "WETH", ether(10))
        back = harness.swap_tx(ATTACKER, harness.uni, "DAI", bought)
        back.nonce = front.nonce + 1
        harness.mine([front, wrong_way, back])
        assert detect_sandwiches(harness.node, harness.prices) == []

    def test_cross_block_not_a_sandwich(self, harness):
        """The definition requires all three txs in one block."""
        front = harness.swap_tx(ATTACKER, harness.uni, "WETH",
                                ether(10))
        bought = harness.uni.quote_out(harness.state, "WETH", ether(10))
        harness.mine([front])
        victim = harness.swap_tx(VICTIM, harness.uni, "WETH", ether(20))
        back = harness.swap_tx(ATTACKER, harness.uni, "DAI", bought)
        harness.mine([victim, back])
        assert detect_sandwiches(harness.node, harness.prices) == []

    def test_unwind_amount_mismatch_rejected(self, harness):
        """Backrun selling a very different amount is not an unwind."""
        front = harness.swap_tx(ATTACKER, harness.uni, "WETH",
                                ether(10))
        victim = harness.swap_tx(VICTIM, harness.uni, "WETH", ether(20))
        bought = harness.uni.quote_out(harness.state, "WETH", ether(10))
        back = harness.swap_tx(ATTACKER, harness.uni, "DAI", bought // 2)
        back.nonce = front.nonce + 1
        harness.mine([front, victim, back])
        assert detect_sandwiches(harness.node, harness.prices) == []

    def test_different_pools_not_merged(self, harness):
        """Legs on different pools do not form a sandwich."""
        front = harness.swap_tx(ATTACKER, harness.uni, "WETH",
                                ether(10))
        victim = harness.swap_tx(VICTIM, harness.uni, "WETH", ether(20))
        bought = harness.uni.quote_out(harness.state, "WETH", ether(10))
        back = harness.swap_tx(ATTACKER, harness.sushi, "DAI", bought)
        back.nonce = front.nonce + 1
        harness.mine([front, victim, back])
        assert detect_sandwiches(harness.node, harness.prices) == []

    def test_block_range_filter(self, harness):
        harness.mine_sandwich()
        assert detect_sandwiches(harness.node, harness.prices,
                                 from_block=2) == []
        assert len(detect_sandwiches(harness.node, harness.prices,
                                     to_block=1)) == 1

    def test_venue_filter(self, harness):
        harness.mine_sandwich()
        records = detect_sandwiches(harness.node, harness.prices,
                                    venues=("Bancor",))
        assert records == []

    def test_largest_middle_swap_is_the_victim(self, harness):
        """With two same-direction swaps in between, the heuristic picks
        the larger as the victim (Torres et al.'s tie-break)."""
        pool = harness.uni
        front = harness.swap_tx(ATTACKER, pool, "WETH", ether(30))
        small = harness.swap_tx(OTHER, pool, "WETH", ether(2))
        big = harness.swap_tx(VICTIM, pool, "WETH", ether(25))
        bought = pool.quote_out(harness.state, "WETH", ether(30))
        back = harness.swap_tx(ATTACKER, pool, "DAI", bought)
        back.nonce = front.nonce + 1
        harness.mine([front, small, big, back])
        records = detect_sandwiches(harness.node, harness.prices)
        assert len(records) == 1
        assert records[0].victim == VICTIM

    def test_failed_attacker_tx_not_counted(self, harness):
        """A reverted backrun leaves no swap event → no sandwich."""
        pool = harness.uni
        front = harness.swap_tx(ATTACKER, pool, "WETH", ether(10))
        victim = harness.swap_tx(VICTIM, pool, "WETH", ether(20))
        bought = pool.quote_out(harness.state, "WETH", ether(10))
        back = harness.swap_tx(ATTACKER, pool, "DAI", bought,
                               min_out=ether(10**6))  # impossible
        back.nonce = front.nonce + 1
        _, receipts = harness.mine([front, victim, back])
        assert not receipts[2].status
        assert detect_sandwiches(harness.node, harness.prices) == []

    def test_two_sandwiches_same_block_different_pools(self, harness):
        harness.state.mint_token("WETH", VICTIM, ether(100))
        pool_a, pool_b = harness.uni, harness.sushi
        f1 = harness.swap_tx(ATTACKER, pool_a, "WETH", ether(10))
        v1 = harness.swap_tx(VICTIM, pool_a, "WETH", ether(20))
        b1 = harness.swap_tx(
            ATTACKER, pool_a, "DAI",
            pool_a.quote_out(harness.state, "WETH", ether(10)))
        b1.nonce = f1.nonce + 1
        f2 = harness.swap_tx(OTHER, pool_b, "WETH", ether(10))
        v2 = harness.swap_tx(VICTIM, pool_b, "WETH", ether(20))
        v2.nonce = v1.nonce + 1
        b2 = harness.swap_tx(
            OTHER, pool_b, "DAI",
            pool_b.quote_out(harness.state, "WETH", ether(10)))
        b2.nonce = f2.nonce + 1
        harness.mine([f1, v1, b1, f2, v2, b2])
        records = detect_sandwiches(harness.node, harness.prices)
        assert len(records) == 2
        assert {r.extractor for r in records} == {ATTACKER, OTHER}
