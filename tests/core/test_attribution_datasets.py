"""Tests for pool attribution (Section 6.3) and dataset persistence."""

import io

from repro.core.datasets import (
    ArbitrageRecord,
    LiquidationRecord,
    MevDataset,
    PRIVACY_PRIVATE,
    PRIVACY_PUBLIC,
    SandwichRecord,
)
from repro.core.pool_attribution import attribute_private_pools


def sandwich(extractor, miner, privacy=PRIVACY_PRIVATE, block=150):
    return SandwichRecord(
        block_number=block, pool_address="0x" + "00" * 20,
        venue="UniswapV2", extractor=extractor, victim="0x" + "bb" * 20,
        front_tx=f"0xf{extractor[-4:]}{block}",
        victim_tx=f"0xv{extractor[-4:]}{block}",
        back_tx=f"0xb{extractor[-4:]}{block}", token_in="WETH",
        token_out="DAI", frontrun_amount_in=1, backrun_amount_out=2,
        gain_wei=10, cost_wei=1, privacy=privacy, miner=miner)


ACCT_A = "0x" + "a1" * 20
ACCT_B = "0x" + "b2" * 20
ACCT_C = "0x" + "c3" * 20
MINER_1 = "0x" + "d4" * 20
MINER_2 = "0x" + "e5" * 20


class TestAttribution:
    def test_single_miner_extractor_found(self):
        dataset = MevDataset(sandwiches=[
            sandwich(ACCT_A, MINER_1, block=b) for b in (1, 2, 3)])
        report = attribute_private_pools(dataset)
        assert report.n_miners == 1
        assert report.n_accounts == 1
        assert report.single_miner_extractors == [(ACCT_A, MINER_1, 3)]

    def test_multi_miner_account_not_flagged(self):
        dataset = MevDataset(sandwiches=[
            sandwich(ACCT_A, MINER_1, block=1),
            sandwich(ACCT_A, MINER_2, block=2)])
        report = attribute_private_pools(dataset)
        assert report.single_miner_extractors == []
        assert report.account_to_miners[ACCT_A] == {MINER_1, MINER_2}

    def test_multi_pool_miner_detected(self):
        """A miner that self-extracts AND mines for a broader pool."""
        dataset = MevDataset(sandwiches=[
            sandwich(ACCT_A, MINER_1, block=1),   # exclusive account
            sandwich(ACCT_A, MINER_1, block=2),
            sandwich(ACCT_B, MINER_1, block=3),   # broader-pool account
            sandwich(ACCT_B, MINER_2, block=4)])
        report = attribute_private_pools(dataset)
        assert (ACCT_A, MINER_1, 2) in report.single_miner_extractors
        assert MINER_1 in report.multi_pool_miners

    def test_pure_self_extractor_not_multi_pool(self):
        dataset = MevDataset(sandwiches=[
            sandwich(ACCT_A, MINER_1, block=b) for b in (1, 2)])
        report = attribute_private_pools(dataset)
        assert report.multi_pool_miners == set()

    def test_only_private_records_considered(self):
        dataset = MevDataset(sandwiches=[
            sandwich(ACCT_A, MINER_1, privacy=PRIVACY_PUBLIC),
            sandwich(ACCT_B, MINER_1, privacy=None)])
        report = attribute_private_pools(dataset)
        assert report.n_accounts == 0
        assert report.n_miners == 0


class TestDatasetContainer:
    def make_dataset(self):
        arb = ArbitrageRecord(
            block_number=5, tx_hash="0xarb", extractor=ACCT_A,
            venues=("UniswapV2", "SushiSwap"),
            token_cycle=("WETH", "DAI", "WETH"), amount_in=1,
            amount_out=3, gain_wei=2, cost_wei=1, via_flashbots=True)
        liq = LiquidationRecord(
            block_number=6, tx_hash="0xliq", platform="AaveV2",
            liquidator=ACCT_B, borrower=ACCT_C, debt_token="DAI",
            debt_repaid=100, collateral_token="WETH",
            collateral_seized=1, gain_wei=5, cost_wei=2,
            via_flashloan=True)
        return MevDataset(sandwiches=[sandwich(ACCT_A, MINER_1)],
                          arbitrages=[arb], liquidations=[liq])

    def test_totals_and_counts(self):
        dataset = self.make_dataset()
        assert dataset.totals() == {"sandwich": 1, "arbitrage": 1,
                                    "liquidation": 1, "total": 3}
        assert dataset.count("arbitrage", via_flashbots=True) == 1
        assert dataset.count("arbitrage", via_flashbots=False) == 0
        assert dataset.count("liquidation", via_flashloan=True) == 1

    def test_profit_property(self):
        dataset = self.make_dataset()
        assert dataset.arbitrages[0].profit_wei == 1
        assert dataset.liquidations[0].profit_wei == 3

    def test_jsonl_round_trip(self):
        dataset = self.make_dataset()
        buffer = io.StringIO()
        dataset.dump_jsonl(buffer)
        buffer.seek(0)
        loaded = MevDataset.load_jsonl(buffer)
        assert loaded.totals() == dataset.totals()
        assert loaded.arbitrages[0].venues == ("UniswapV2", "SushiSwap")
        assert loaded.sandwiches[0].privacy == PRIVACY_PRIVATE
        assert loaded.liquidations[0].via_flashloan

    def test_jsonl_skips_blank_lines(self):
        buffer = io.StringIO("\n\n")
        assert MevDataset.load_jsonl(buffer).totals()["total"] == 0
