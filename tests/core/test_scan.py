"""Tests for the single-pass block scan (``repro.core.scan``).

The fused pass must be a pure refactor of the four standalone
detectors: same records, same order, same flash-loan transaction set —
on surgical harness chains and on a full simulated study window alike.
"""

from repro.chain.events import (
    AuctionSettledEvent,
    FlashLoanEvent,
    LiquidationEvent,
    SwapEvent,
)
from repro.chain.node import ArchiveNode
from repro.core.heuristics import (
    detect_arbitrages,
    detect_flash_loan_txs,
    detect_liquidations,
    detect_sandwiches,
)
from repro.core.profit import PriceService
from repro.core.scan import (
    BlockScan,
    BlockView,
    scan_range,
    views_from_index,
)
from repro.sim import ScenarioConfig, build_paper_scenario

from tests.chain.test_index import chain_of, make_block, make_receipt


class TestBlockView:
    def test_buckets_follow_receipt_status(self):
        swap = SwapEvent("0xpool", venue="UniswapV2")
        liq = LiquidationEvent("0xlending", platform="AaveV2")
        flash_ok = FlashLoanEvent("0xaave", platform="Aave")
        flash_failed = FlashLoanEvent("0xaave", platform="Aave")
        swap_failed = SwapEvent("0xpool", venue="UniswapV2")
        block = make_block(1, [
            make_receipt(1, 0, [swap, liq, flash_ok]),
            make_receipt(1, 1, [swap_failed, flash_failed],
                         status=False),
        ])
        view = BlockView.of(block)
        # Swaps and liquidations come from successful receipts only;
        # flash loans are status-blind (get_logs never filtered).
        assert [s for _, swaps in view.swap_receipts for s in swaps] \
            == [swap]
        assert view.liquidations == [liq]
        assert view.flash_loans == [flash_ok, flash_failed]

    def test_swapless_receipts_are_dropped(self):
        block = make_block(1, [
            make_receipt(1, 0, [LiquidationEvent("0xl",
                                                 platform="AaveV2")]),
            make_receipt(1, 1, []),
        ])
        view = BlockView.of(block)
        assert view.swap_receipts == []
        assert len(view.liquidations) == 1

    def test_unrelated_events_ignored(self):
        block = make_block(1, [make_receipt(1, 0, [
            AuctionSettledEvent("0xl", platform="AaveV2")])])
        view = BlockView.of(block)
        assert view.swap_receipts == []
        assert view.liquidations == []
        assert view.flash_loans == []


def assert_same_views(got, want):
    """Bucket-for-bucket identity: same receipt and log *objects*, in
    the same order."""
    assert len(got) == len(want)
    for g, w in zip(got, want):
        assert g.block is w.block
        assert len(g.swap_receipts) == len(w.swap_receipts)
        for (g_receipt, g_swaps), (w_receipt, w_swaps) in \
                zip(g.swap_receipts, w.swap_receipts):
            assert g_receipt is w_receipt
            assert len(g_swaps) == len(w_swaps)
            assert all(a is b for a, b in zip(g_swaps, w_swaps))
        assert len(g.liquidations) == len(w.liquidations)
        assert all(a is b for a, b in zip(g.liquidations,
                                          w.liquidations))
        assert len(g.flash_loans) == len(w.flash_loans)
        assert all(a is b for a, b in zip(g.flash_loans, w.flash_loans))


class TestViewsFromIndex:
    """The postings-backed bucketing == the receipts walk, object for
    object — the indexed scan's correctness contract."""

    def mixed_chain(self):
        chain = chain_of(
            [SwapEvent("0xa", venue="UniswapV2"),
             LiquidationEvent("0xl", platform="AaveV2")],
            [],
            [FlashLoanEvent("0xf", platform="Aave"),
             SwapEvent("0xa", venue="SushiSwap"),
             SwapEvent("0xb", venue="UniswapV3")],
        )
        # A multi-receipt block with a failed receipt: its swap must be
        # excluded while its flash loan survives (status-blind).
        chain.append(make_block(4, [
            make_receipt(4, 0, [SwapEvent("0xa", venue="UniswapV2")]),
            make_receipt(4, 1, [SwapEvent("0xb", venue="UniswapV2"),
                                FlashLoanEvent("0xf", platform="Aave")],
                         status=False),
            make_receipt(4, 2, [LiquidationEvent("0xl",
                                                 platform="AaveV2")]),
        ]))
        return chain

    def test_matches_receipt_walk(self):
        chain = self.mixed_chain()
        for lo, hi in [(1, 4), (2, 3), (4, 4), (1, 1)]:
            blocks = chain.index.blocks_in_range(lo, hi)
            assert_same_views(
                views_from_index(chain.index, blocks),
                [BlockView.of(block) for block in blocks])

    def test_empty_blocks(self):
        assert views_from_index(chain_of().index, []) == []
        chain = chain_of([], [])
        blocks = chain.index.blocks_in_range(1, 2)
        views = views_from_index(chain.index, blocks)
        assert [v.block.number for v in views] == [1, 2]
        assert all(v.swap_receipts == [] and v.liquidations == []
                   and v.flash_loans == [] for v in views)

    def test_unstamped_coordinates_fall_back(self):
        chain = self.mixed_chain()
        orphan = SwapEvent("0xa", venue="UniswapV2")
        chain.append(make_block(5, [make_receipt(5, 0, [orphan])]))
        orphan.block_number = None  # lost its inclusion coordinates
        blocks = chain.index.blocks_in_range(1, 5)
        assert_same_views(
            views_from_index(chain.index, blocks),
            [BlockView.of(block) for block in blocks])


class TestBlockScanDispatch:
    def test_each_visitor_sees_every_block_once_in_order(self):
        class Recorder:
            def __init__(self):
                self.seen = []

            def visit(self, view):
                self.seen.append(view.block.number)

        first, second = Recorder(), Recorder()
        blocks = [make_block(n) for n in (1, 2, 3)]
        BlockScan([first, second]).scan(blocks)
        assert first.seen == [1, 2, 3]
        assert second.seen == [1, 2, 3]


class TestScanRangeEquivalence:
    """``scan_range`` == the four standalone detectors, record for
    record — the refactor's correctness contract."""

    def assert_equivalent(self, node, prices, lo=None, hi=None):
        dataset, flash_txs = scan_range(node, prices, lo, hi)
        assert dataset.sandwiches == detect_sandwiches(node, prices,
                                                       lo, hi)
        assert dataset.arbitrages == detect_arbitrages(node, prices,
                                                       lo, hi)
        assert dataset.liquidations == detect_liquidations(node, prices,
                                                           lo, hi)
        assert flash_txs == detect_flash_loan_txs(node, lo, hi)
        return dataset

    def test_on_harness_sandwich(self, harness):
        harness.mine_sandwich()
        dataset = self.assert_equivalent(harness.node, harness.prices)
        assert len(dataset.sandwiches) == 1

    def test_on_empty_range(self, harness):
        harness.mine_sandwich()
        dataset, flash_txs = scan_range(harness.node, harness.prices,
                                        99, 120)
        assert dataset.all_records() == []
        assert flash_txs == set()

    def test_on_simulated_study_window(self):
        from repro.chain.transaction import reset_tx_counter
        reset_tx_counter()
        config = ScenarioConfig(blocks_per_month=8, seed=11)
        result = build_paper_scenario(config).run()
        prices = PriceService(result.oracle)
        first = result.node.earliest_block_number()
        last = result.node.latest_block_number()
        dataset = self.assert_equivalent(result.node, prices,
                                         first, last)
        # Both read paths, too: a linear node must scan to the same
        # records as the indexed one.
        linear = ArchiveNode(result.blockchain, indexed=False)
        linear_set = self.assert_equivalent(linear, prices, first, last)
        assert dataset.records_equal(linear_set)
        assert dataset.all_records()  # the window actually has MEV
