"""Fixtures for measurement-pipeline tests: a hand-drivable chain.

``ChainHarness`` lets a test place exact transactions in exact block
positions, so heuristic edge cases can be constructed surgically instead
of hoping a simulation produces them.
"""

import pytest

from repro.chain.block import BlockBuilder
from repro.chain.node import ArchiveNode, Blockchain
from repro.chain.state import WorldState
from repro.chain.transaction import Transaction
from repro.chain.types import address_from_label, ether, gwei
from repro.core.profit import PriceService
from repro.dex.registry import SUSHISWAP, UNISWAP_V2, ExchangeRegistry
from repro.dex.router import SwapIntent
from repro.lending.oracle import PRICE_SCALE, PriceOracle

ATTACKER = address_from_label("attacker")
VICTIM = address_from_label("victim")
OTHER = address_from_label("bystander")
MINER = address_from_label("harness-miner")


class ChainHarness:
    """Builds blocks tx-by-tx against a live DEX/lending world."""

    def __init__(self):
        self.state = WorldState()
        self.registry = ExchangeRegistry()
        self.uni = self.registry.create_pool(UNISWAP_V2, "WETH", "DAI")
        self.sushi = self.registry.create_pool(SUSHISWAP, "WETH", "DAI")
        self.uni.add_liquidity(self.state, WETH=ether(1_000),
                               DAI=ether(3_000_000))
        self.sushi.add_liquidity(self.state, WETH=ether(1_000),
                                 DAI=ether(3_060_000))
        self.oracle = PriceOracle()
        self.oracle.set_price("DAI", PRICE_SCALE // 3_000)
        self.chain = Blockchain()
        self.node = ArchiveNode(self.chain)
        self.prices = PriceService(self.oracle)
        self.contracts = dict(self.registry.contracts)
        for account in (ATTACKER, VICTIM, OTHER):
            self.state.credit_eth(account, ether(10_000))
            self.state.mint_token("WETH", account, ether(10_000))
            self.state.mint_token("DAI", account, ether(10_000_000))

    def swap_tx(self, sender, pool, token_in, amount, min_out=0,
                tip=0, price=gwei(50)):
        return Transaction(
            sender=sender, nonce=self.state.nonce(sender),
            to=pool.address, gas_limit=150_000, gas_price=price,
            intent=SwapIntent(pool.address, token_in, amount,
                              min_amount_out=min_out,
                              coinbase_tip=tip))

    def mine(self, txs, miner=MINER):
        number = (self.chain.height or 0) + 1
        builder = BlockBuilder(self.state, number=number,
                               timestamp=13 * number, coinbase=miner,
                               base_fee=0, contracts=self.contracts)
        receipts = []
        for tx in txs:
            receipts.append(builder.apply_transaction(tx))
        block = builder.finalize()
        self.chain.append(block)
        return block, receipts

    def mine_sandwich(self, victim_amount=ether(20),
                      frontrun=ether(30), miner=MINER, tip=0,
                      pool=None):
        """A textbook sandwich block; returns (front, victim, back)."""
        pool = pool or self.uni
        token_out = pool.other("WETH")
        front = self.swap_tx(ATTACKER, pool, "WETH", frontrun)
        victim = self.swap_tx(VICTIM, pool, "WETH", victim_amount)
        # Project the frontrun output so the back leg unwinds exactly.
        bought = pool.quote_out(self.state, "WETH", frontrun)
        back = self.swap_tx(ATTACKER, pool, token_out, bought, tip=tip)
        back.nonce = front.nonce + 1
        self.mine([front, victim, back], miner=miner)
        return front, victim, back


@pytest.fixture
def harness():
    return ChainHarness()
