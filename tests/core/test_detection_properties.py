"""Property and metamorphic tests for the detection pipeline.

The headline property closes the whole loop: for arbitrary victim
sizes, slippage tolerances and pool depths, a sandwich *planned* by the
attacker math, *executed* through the block builder, is *detected* by
the heuristic, and the detected profit equals the attacker's actual
balance change minus costs.
"""

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.chain.block import BlockBuilder
from repro.chain.intents import TokenTransferIntent
from repro.chain.node import ArchiveNode, Blockchain
from repro.chain.state import WorldState
from repro.chain.transaction import Transaction
from repro.chain.types import address_from_label, ether, gwei
from repro.core.heuristics.sandwich import detect_sandwiches
from repro.core.profit import PriceService
from repro.dex.arbitrage_math import plan_sandwich
from repro.dex.registry import UNISWAP_V2, ExchangeRegistry
from repro.dex.router import SwapIntent
from repro.lending.oracle import PRICE_SCALE, PriceOracle

ATTACKER = address_from_label("prop-attacker")
VICTIM = address_from_label("prop-victim")
NOISE = address_from_label("prop-noise")
MINER = address_from_label("prop-miner")


def build_world(depth_eth, price=3_000):
    state = WorldState()
    registry = ExchangeRegistry()
    pool = registry.create_pool(UNISWAP_V2, "WETH", "DAI")
    pool.add_liquidity(state, WETH=ether(depth_eth),
                       DAI=ether(depth_eth * price))
    oracle = PriceOracle()
    oracle.set_price("DAI", PRICE_SCALE // price)
    for account in (ATTACKER, VICTIM, NOISE):
        state.credit_eth(account, ether(10_000))
        state.mint_token("WETH", account, ether(100_000))
        state.mint_token("DAI", account, ether(100_000 * price))
    return state, registry, pool, oracle


def craft_sandwich(state, pool, victim_eth, slippage_bps):
    victim_amount = ether(victim_eth)
    quote = pool.quote_out(state, "WETH", victim_amount)
    min_out = quote * (10_000 - slippage_bps) // 10_000
    victim = Transaction(sender=VICTIM, nonce=state.nonce(VICTIM),
                         to=pool.address, gas_limit=150_000,
                         gas_price=gwei(60),
                         intent=SwapIntent(pool.address, "WETH",
                                           victim_amount,
                                           min_amount_out=min_out))
    plan = plan_sandwich(pool.reserve_of(state, "WETH"),
                         pool.reserve_of(state, "DAI"),
                         victim_amount, min_out, pool.fee_bps)
    if plan is None:
        return None
    nonce = state.nonce(ATTACKER)
    front = Transaction(sender=ATTACKER, nonce=nonce, to=pool.address,
                        gas_limit=150_000, gas_price=gwei(70),
                        intent=SwapIntent(pool.address, "WETH",
                                          plan.frontrun_in))
    back = Transaction(sender=ATTACKER, nonce=nonce + 1,
                       to=pool.address, gas_limit=150_000,
                       gas_price=gwei(50),
                       intent=SwapIntent(pool.address, "DAI",
                                         plan.frontrun_out))
    return front, victim, back, plan


class TestEndToEndProperty:
    @settings(max_examples=30, deadline=None)
    @given(st.floats(1.0, 80.0), st.integers(80, 800),
           st.integers(500, 5_000))
    def test_planned_executed_detected_accounted(self, victim_eth,
                                                 slippage_bps,
                                                 depth_eth):
        state, registry, pool, oracle = build_world(depth_eth)
        crafted = craft_sandwich(state, pool, victim_eth, slippage_bps)
        assume(crafted is not None)
        front, victim, back, plan = crafted

        weth_before = state.token_balance("WETH", ATTACKER)
        eth_before = state.eth_balance(ATTACKER)
        chain = Blockchain()
        builder = BlockBuilder(state, number=1, timestamp=13,
                               coinbase=MINER, base_fee=0,
                               contracts=registry.contracts)
        receipts = builder.apply_atomic_sequence([front, victim, back])
        chain.append(builder.finalize())
        assume(receipts is not None)

        records = detect_sandwiches(ArchiveNode(chain),
                                    PriceService(oracle))
        assert len(records) == 1
        record = records[0]
        assert record.extractor == ATTACKER
        assert record.victim == VICTIM

        # Detected gain == the attacker's realized WETH delta.
        realized_gain = state.token_balance("WETH",
                                            ATTACKER) - weth_before
        assert record.gain_wei == realized_gain
        # Detected cost == the ETH the attacker actually spent.
        realized_cost = eth_before - state.eth_balance(ATTACKER)
        assert record.cost_wei == realized_cost
        # And the planner's projection was exact.
        assert plan.expected_profit == realized_gain


class TestMetamorphic:
    def mine_with_noise(self, noise_positions):
        """Mine a sandwich with unrelated transfers woven at arbitrary
        positions; detection must be unaffected."""
        state, registry, pool, oracle = build_world(2_000)
        front, victim, back, _ = craft_sandwich(state, pool, 20.0, 300)
        txs = [front, victim, back]
        for offset, position in enumerate(noise_positions):
            noise = Transaction(
                sender=NOISE, nonce=state.nonce(NOISE) + offset,
                to=VICTIM, gas_limit=60_000, gas_price=gwei(40),
                intent=TokenTransferIntent("DAI", VICTIM, ether(1)))
            txs.insert(min(position, len(txs)), noise)
        # Keep the attack order intact.
        order = [t for t in txs if t in (front, victim, back)]
        if order != [front, victim, back]:
            return None
        chain = Blockchain()
        builder = BlockBuilder(state, number=1, timestamp=13,
                               coinbase=MINER, base_fee=0,
                               contracts=registry.contracts)
        for tx in txs:
            builder.apply_transaction(tx)
        chain.append(builder.finalize())
        return detect_sandwiches(ArchiveNode(chain),
                                 PriceService(oracle))

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(0, 6), max_size=4))
    def test_noise_transactions_do_not_break_detection(self, positions):
        records = self.mine_with_noise(positions)
        assume(records is not None)
        assert len(records) == 1
        assert records[0].extractor == ATTACKER

    def test_noise_swaps_on_other_pool_ignored(self):
        state, registry, pool, oracle = build_world(2_000)
        other = registry.create_pool("SushiSwap", "WETH", "DAI")
        other.add_liquidity(state, WETH=ether(500),
                            DAI=ether(1_500_000))
        front, victim, back, _ = craft_sandwich(state, pool, 20.0, 300)
        noise = Transaction(sender=NOISE, nonce=state.nonce(NOISE),
                            to=other.address, gas_limit=150_000,
                            gas_price=gwei(40),
                            intent=SwapIntent(other.address, "WETH",
                                              ether(5)))
        chain = Blockchain()
        builder = BlockBuilder(state, number=1, timestamp=13,
                               coinbase=MINER, base_fee=0,
                               contracts=registry.contracts)
        for tx in (front, noise, victim, back):
            builder.apply_transaction(tx)
        chain.append(builder.finalize())
        records = detect_sandwiches(ArchiveNode(chain),
                                    PriceService(oracle))
        assert len(records) == 1
        assert records[0].pool_address == pool.address
