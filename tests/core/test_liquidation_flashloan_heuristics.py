"""Tests for liquidation detection and the flash-loan join."""

import pytest

from repro.chain.execution import ExecutionContext
from repro.chain.transaction import Transaction
from repro.chain.types import address_from_label, ether, gwei
from repro.core.heuristics.flashloan import detect_flash_loan_txs
from repro.core.heuristics.liquidation import detect_liquidations
from repro.lending.flashloan import FlashLoanIntent, FlashLoanProvider
from repro.lending.oracle import PRICE_SCALE
from repro.lending.pool import LendingPool, LiquidationIntent

from tests.core.conftest import ATTACKER, MINER, VICTIM


@pytest.fixture
def lending(harness):
    pool = LendingPool("AaveV2", harness.oracle)
    pool.provision(harness.state, "DAI", ether(10_000_000))
    harness.contracts[pool.address] = pool
    # Open a fragile loan: 10 WETH collateral, 20k DAI debt.
    tx = Transaction(sender=VICTIM, nonce=harness.state.nonce(VICTIM),
                     to=pool.address)
    ctx = ExecutionContext(harness.state, tx, block_number=0,
                           coinbase=MINER,
                           contracts={pool.address: pool})
    loan = pool.open_loan(ctx, "WETH", ether(10), "DAI", ether(20_000))
    harness.state.bump_nonce(VICTIM)
    return pool, loan


def liq_tx(harness, pool, loan, repay=ether(10_000), tip=0):
    return Transaction(
        sender=ATTACKER, nonce=harness.state.nonce(ATTACKER),
        to=pool.address, gas_limit=500_000, gas_price=gwei(50),
        intent=LiquidationIntent(pool.address, loan.loan_id, repay,
                                 coinbase_tip=tip))


class TestLiquidationDetection:
    def test_liquidation_found_with_profit(self, harness, lending):
        pool, loan = lending
        harness.oracle.set_price("DAI", PRICE_SCALE // 2_000)
        harness.mine([liq_tx(harness, pool, loan)])
        records = detect_liquidations(harness.node, harness.prices)
        assert len(records) == 1
        record = records[0]
        assert record.liquidator == ATTACKER
        assert record.borrower == VICTIM
        assert record.platform == "AaveV2"
        assert record.debt_repaid == ether(10_000)
        # Gain (collateral) exceeds cost (fees + debt value) via the
        # fixed 8 % spread.
        assert record.profit_wei > 0

    def test_platform_filter(self, harness, lending):
        pool, loan = lending
        harness.oracle.set_price("DAI", PRICE_SCALE // 2_000)
        harness.mine([liq_tx(harness, pool, loan)])
        assert detect_liquidations(harness.node, harness.prices,
                                   platforms=("Compound",)) == []

    def test_failed_liquidation_not_counted(self, harness, lending):
        pool, loan = lending  # healthy loan → revert
        _, receipts = harness.mine([liq_tx(harness, pool, loan)])
        assert not receipts[0].status
        assert detect_liquidations(harness.node, harness.prices) == []

    def test_no_liquidations_no_records(self, harness):
        harness.mine([harness.swap_tx(ATTACKER, harness.uni, "WETH",
                                      ether(1))])
        assert detect_liquidations(harness.node, harness.prices) == []


class TestFlashLoanJoin:
    def test_flash_loan_tx_hashes_detected(self, harness, lending):
        pool, loan = lending
        harness.oracle.set_price("DAI", PRICE_SCALE // 2_000)
        provider = FlashLoanProvider("Aave")
        provider.provision(harness.state, "DAI", ether(1_000_000))
        harness.contracts[provider.address] = provider
        inner = LiquidationIntent(pool.address, loan.loan_id,
                                  ether(10_000))
        tx = Transaction(
            sender=ATTACKER, nonce=harness.state.nonce(ATTACKER),
            to=provider.address, gas_limit=900_000, gas_price=gwei(50),
            intent=FlashLoanIntent(provider.address, "DAI",
                                   ether(10_000), inner=inner))
        _, receipts = harness.mine([tx])
        assert receipts[0].status
        flash = detect_flash_loan_txs(harness.node)
        assert flash == {tx.hash}
        # And the liquidation inside it is detected too.
        liq = detect_liquidations(harness.node, harness.prices)
        assert len(liq) == 1
        assert liq[0].tx_hash == tx.hash

    def test_platform_filter(self, harness):
        provider = FlashLoanProvider("UnknownPlatform")
        provider.provision(harness.state, "WETH", ether(100))
        harness.contracts[provider.address] = provider
        harness.state.mint_token("WETH", ATTACKER, ether(1))
        tx = Transaction(
            sender=ATTACKER, nonce=harness.state.nonce(ATTACKER),
            to=provider.address, gas_limit=300_000, gas_price=gwei(50),
            intent=FlashLoanIntent(provider.address, "WETH", ether(10)))
        harness.mine([tx])
        assert detect_flash_loan_txs(harness.node) == set()
