"""Tests for the Qin-et-al cyclic-arbitrage detection heuristic."""

from repro.chain.transaction import Transaction
from repro.chain.types import ether, gwei
from repro.core.heuristics.arbitrage import detect_arbitrages
from repro.dex.router import ArbitrageIntent, MultiHopSwapIntent

from tests.core.conftest import ATTACKER, VICTIM


def arb_tx(harness, route, amount=ether(5), sender=ATTACKER, tip=0):
    return Transaction(
        sender=sender, nonce=harness.state.nonce(sender),
        to=route[0], gas_limit=500_000, gas_price=gwei(50),
        intent=ArbitrageIntent(route=route, token_in="WETH",
                               amount_in=amount, min_profit=1,
                               coinbase_tip=tip))


class TestDetection:
    def test_two_hop_cycle_found(self, harness):
        tx = arb_tx(harness, [harness.sushi.address,
                              harness.uni.address])
        harness.mine([tx])
        records = detect_arbitrages(harness.node, harness.prices)
        assert len(records) == 1
        record = records[0]
        assert record.extractor == ATTACKER
        assert record.tx_hash == tx.hash
        assert record.token_cycle[0] == record.token_cycle[-1] == "WETH"
        assert set(record.venues) == {"SushiSwap", "UniswapV2"}
        assert record.gain_wei > 0
        assert record.profit_wei > 0

    def test_cost_includes_tip(self, harness):
        harness.state.credit_eth(ATTACKER, ether(10))
        tx = arb_tx(harness, [harness.sushi.address,
                              harness.uni.address], tip=ether(1))
        harness.mine([tx])
        record = detect_arbitrages(harness.node, harness.prices)[0]
        assert record.cost_wei >= ether(1)

    def test_single_swap_not_arbitrage(self, harness):
        tx = harness.swap_tx(ATTACKER, harness.uni, "WETH", ether(5))
        harness.mine([tx])
        assert detect_arbitrages(harness.node, harness.prices) == []

    def test_open_multihop_not_arbitrage(self, harness):
        """A WETH→DAI→... route that doesn't close is a plain trade."""
        link = harness.registry.create_pool("UniswapV2", "DAI", "LINK")
        link.add_liquidity(harness.state, DAI=ether(1_000_000),
                           LINK=ether(130_000))
        harness.contracts[link.address] = link
        tx = Transaction(
            sender=VICTIM, nonce=harness.state.nonce(VICTIM),
            to=harness.uni.address, gas_limit=500_000,
            gas_price=gwei(50),
            intent=MultiHopSwapIntent(
                route=[harness.uni.address, link.address],
                token_in="WETH", amount_in=ether(2)))
        _, receipts = harness.mine([tx])
        assert receipts[0].status
        assert detect_arbitrages(harness.node, harness.prices) == []

    def test_reverted_arbitrage_not_counted(self, harness):
        """Losing an arbitrage race leaves a revert, not a record."""
        winner = arb_tx(harness, [harness.sushi.address,
                                  harness.uni.address], amount=ether(3))
        loser = arb_tx(harness, [harness.sushi.address,
                                 harness.uni.address], amount=ether(3),
                       sender=VICTIM)
        _, receipts = harness.mine([winner, loser])
        assert receipts[0].status
        assert not receipts[1].status
        records = detect_arbitrages(harness.node, harness.prices)
        assert len(records) == 1
        assert records[0].extractor == ATTACKER

    def test_amateur_arbitrage_also_detected(self, harness):
        """The heuristic catches victims' naive arbs too (the paper's
        3.4 M arbitrages include everyone)."""
        tx = arb_tx(harness, [harness.sushi.address,
                              harness.uni.address], sender=VICTIM)
        harness.mine([tx])
        records = detect_arbitrages(harness.node, harness.prices)
        assert len(records) == 1
        assert records[0].extractor == VICTIM

    def test_block_range_filter(self, harness):
        harness.mine([arb_tx(harness, [harness.sushi.address,
                                       harness.uni.address])])
        assert detect_arbitrages(harness.node, harness.prices,
                                 from_block=2) == []
