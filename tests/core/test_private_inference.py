"""Tests for Section 6.1's private-transaction inference."""

import pytest

from repro.chain.p2p import MempoolObserver
from repro.core.datasets import (
    PRIVACY_FLASHBOTS,
    PRIVACY_PRIVATE,
    PRIVACY_PUBLIC,
    SandwichRecord,
)
from repro.core.private_inference import (
    annotate_privacy,
    classify_tx,
    sandwich_privacy,
    single_tx_privacy,
)
from repro.core.datasets import ArbitrageRecord, MevDataset


def record(block=150, fb=False, front="0xf" + "0" * 63,
           victim="0xv" + "0" * 63, back="0xb" + "0" * 63):
    return SandwichRecord(
        block_number=block, pool_address="0x" + "00" * 20,
        venue="UniswapV2", extractor="0x" + "aa" * 20,
        victim="0x" + "bb" * 20, front_tx=front, victim_tx=victim,
        back_tx=back, token_in="WETH", token_out="DAI",
        frontrun_amount_in=1, backrun_amount_out=2, gain_wei=1,
        cost_wei=0, via_flashbots=fb)


@pytest.fixture
def observer():
    return MempoolObserver(start_block=100, end_block=200)


class TestClassifyTx:
    def test_observed_is_public(self, observer):
        observer._first_seen["0xabc"] = 120
        assert classify_tx("0xabc", observer) == PRIVACY_PUBLIC

    def test_unobserved_is_private(self, observer):
        assert classify_tx("0xabc", observer) == PRIVACY_PRIVATE


class TestSandwichPrivacy:
    def test_private_when_legs_hidden_victim_public(self, observer):
        r = record()
        observer._first_seen[r.victim_tx] = 120
        assert sandwich_privacy(r, observer) == PRIVACY_PRIVATE

    def test_public_when_legs_observed(self, observer):
        r = record()
        for h in (r.front_tx, r.victim_tx, r.back_tx):
            observer._first_seen[h] = 120
        assert sandwich_privacy(r, observer) == PRIVACY_PUBLIC

    def test_flashbots_label_wins(self, observer):
        r = record(fb=True)
        observer._first_seen[r.victim_tx] = 120
        assert sandwich_privacy(r, observer) == PRIVACY_FLASHBOTS

    def test_mixed_observation_defaults_public(self, observer):
        r = record()
        observer._first_seen[r.victim_tx] = 120
        observer._first_seen[r.front_tx] = 121  # one leg leaked
        assert sandwich_privacy(r, observer) == PRIVACY_PUBLIC

    def test_hidden_victim_not_private(self, observer):
        """If the victim was never observed either, the trace proves
        nothing (could be a missed observation) → not private."""
        r = record()
        assert sandwich_privacy(r, observer) == PRIVACY_PUBLIC

    def test_outside_window_unlabelled(self, observer):
        r = record(block=99)
        assert sandwich_privacy(r, observer) is None
        late = record(block=201)
        assert sandwich_privacy(late, observer) is None


class TestAnnotate:
    def test_annotates_all_kinds(self, observer):
        sandwich = record()
        observer._first_seen[sandwich.victim_tx] = 120
        arb = ArbitrageRecord(
            block_number=150, tx_hash="0xarb", extractor="0x" + "cc" * 20,
            venues=("UniswapV2", "SushiSwap"),
            token_cycle=("WETH", "DAI", "WETH"), amount_in=1,
            amount_out=2, gain_wei=1, cost_wei=0)
        dataset = MevDataset(sandwiches=[sandwich], arbitrages=[arb])
        annotate_privacy(dataset, observer)
        assert sandwich.privacy == PRIVACY_PRIVATE
        assert arb.privacy == PRIVACY_PRIVATE  # never observed pending

    def test_single_tx_privacy_flashbots(self, observer):
        arb = ArbitrageRecord(
            block_number=150, tx_hash="0xarb", extractor="0x" + "cc" * 20,
            venues=("UniswapV2",), token_cycle=("WETH", "WETH"),
            amount_in=1, amount_out=2, gain_wei=1, cost_wei=0,
            via_flashbots=True)
        assert single_tx_privacy(arb, observer) == PRIVACY_FLASHBOTS

    def test_out_of_window_stays_none(self, observer):
        arb = ArbitrageRecord(
            block_number=99, tx_hash="0xarb", extractor="0x" + "cc" * 20,
            venues=("UniswapV2",), token_cycle=("WETH", "WETH"),
            amount_in=1, amount_out=2, gain_wei=1, cost_wei=0)
        assert single_tx_privacy(arb, observer) is None
