"""The unified ``DataSource`` protocol, its adapters, and ``shield``."""

import pytest

from repro.chain.events import SwapEvent
from repro.reliability import (
    ArchiveNodeSource,
    DataSource,
    FlashbotsApiSource,
    MempoolObserverSource,
    ReliableSource,
    adapt,
    render_key,
    shield,
)


class TestRenderKey:
    """The rendered key seeds retry jitter: its format is frozen."""

    def test_no_args(self):
        assert render_key(()) == "-"

    def test_single_arg(self):
        assert render_key((123,)) == "123"

    def test_range(self):
        assert render_key((10, 20)) == "10-20"

    def test_typed_log_query(self):
        assert render_key((SwapEvent, 1, 5)) == "SwapEvent:1-5"

    def test_none_bounds(self):
        assert render_key((None, None)) == "None-None"


class TestAdapters:
    def test_archive_adapter(self, sim_result):
        source = ArchiveNodeSource(sim_result.node)
        assert source.name == "archive"
        assert isinstance(source, DataSource)
        latest = source.fetch("latest_block_number")
        assert latest == sim_result.node.latest_block_number()
        assert source.coverage_gaps() == ()

    def test_archive_adapter_materializes_iterators(self, sim_result):
        source = ArchiveNodeSource(sim_result.node)
        blocks = source.fetch("iter_blocks", (1, 5))
        assert isinstance(blocks, list) and len(blocks) == 5

    def test_mempool_adapter_reports_downtime(self, sim_result):
        source = MempoolObserverSource(sim_result.observer)
        assert source.name == "mempool"
        assert source.coverage_gaps() == \
            tuple(sim_result.observer.downtime_ranges)

    def test_flashbots_adapter(self, sim_result):
        source = FlashbotsApiSource(sim_result.flashbots_api)
        assert source.name == "flashbots"
        count = source.fetch("block_count")
        assert count == sim_result.flashbots_api.block_count()

    def test_adapt_duck_types(self, sim_result):
        assert adapt(sim_result.node).name == "archive"
        assert adapt(sim_result.observer).name == "mempool"
        assert adapt(sim_result.flashbots_api).name == "flashbots"

    def test_adapt_rejects_unknown_surfaces(self):
        with pytest.raises(TypeError, match="DataSource"):
            adapt(object())


class TestReliableSource:
    def test_fetch_counts_requests(self, sim_result):
        source = ReliableSource(ArchiveNodeSource(sim_result.node))
        source.fetch("get_block", (1,))
        source.fetch("get_block", (2,))
        assert source.caller.stats.requests == 2
        assert isinstance(source, DataSource)

    def test_facades_share_one_composition(self, sim_result):
        node, observer, api = shield(sim_result.node,
                                     sim_result.observer,
                                     sim_result.flashbots_api)
        for wrapper in (node, observer, api):
            assert isinstance(wrapper.source, ReliableSource)
            assert wrapper.caller is wrapper.source.caller

    def test_facade_results_match_bare_source(self, sim_result):
        node, _, _ = shield(sim_result.node)
        assert node.get_block(1).number == \
            sim_result.node.get_block(1).number
        assert [b.number for b in node.iter_blocks(1, 3)] == \
            [b.number for b in sim_result.node.iter_blocks(1, 3)]


class TestShimRemoved:
    """The PR 2 spelling finished its deprecation cycle in 1.5.0."""

    def test_shield_sources_is_gone(self):
        import repro.reliability as reliability
        import repro.reliability.sources as sources

        assert not hasattr(reliability, "shield" "_sources")
        assert not hasattr(sources, "shield" "_sources")
        assert "shield" "_sources" not in reliability.__all__

    def test_shield_wraps_all_three_sources(self, sim_result):
        node, observer, api = shield(
            sim_result.node, sim_result.observer,
            sim_result.flashbots_api)
        assert node.inner is sim_result.node
        assert observer.inner is sim_result.observer
        assert api.inner is sim_result.flashbots_api
