"""``CachedExecutor``: replay exactly, and only, what still applies."""

import json

import pytest

from repro import RunConfig, run_inspector
from repro.engine import CachedExecutor, ChunkResult, SerialExecutor

from tests.engine.conftest import fingerprint


class CountingRunner:
    """Runner that counts executions and returns a canned payload."""

    def __init__(self):
        self.calls = 0

    def run_chunk(self, chunk):
        self.calls += 1
        return ChunkResult(chunk=chunk,
                           payload={"rows": [], "flash_txs": []})


class FailingRunner:
    def run_chunk(self, chunk):
        return ChunkResult(chunk=chunk, payload=None)


class TestArtifactStore:
    def test_second_pass_hits_every_chunk(self, tmp_path):
        chunks = [(1, 10), (11, 20)]
        runner = CountingRunner()
        for _ in range(2):
            executor = CachedExecutor(SerialExecutor(), tmp_path, "d1")
            results = list(executor.execute(runner, chunks))
        assert runner.calls == 2  # first pass only
        assert executor.hits == 2 and executor.misses == 0
        assert all(r.cached for r in results)

    def test_digest_mismatch_recomputes(self, tmp_path):
        chunks = [(1, 10)]
        runner = CountingRunner()
        list(CachedExecutor(SerialExecutor(), tmp_path, "d1")
             .execute(runner, chunks))
        list(CachedExecutor(SerialExecutor(), tmp_path, "d2")
             .execute(runner, chunks))
        assert runner.calls == 2

    def test_failed_chunks_are_never_cached(self, tmp_path):
        executor = CachedExecutor(SerialExecutor(), tmp_path, "d1")
        results = list(executor.execute(FailingRunner(), [(1, 10)]))
        assert results[0].failed
        assert not list(tmp_path.rglob("*.json"))
        again = CachedExecutor(SerialExecutor(), tmp_path, "d1")
        assert again._load((1, 10)) is None

    def test_corrupt_entry_is_a_counted_miss(self, tmp_path):
        runner = CountingRunner()
        executor = CachedExecutor(SerialExecutor(), tmp_path, "d1")
        list(executor.execute(runner, [(1, 10)]))
        path = tmp_path / "d1" / "1-10.json"
        path.write_text("{not json", encoding="utf-8")
        again = CachedExecutor(SerialExecutor(), tmp_path, "d1")
        list(again.execute(runner, [(1, 10)]))
        assert again.invalid_entries == 1
        assert runner.calls == 2

    def test_stale_cache_version_is_a_miss(self, tmp_path):
        runner = CountingRunner()
        executor = CachedExecutor(SerialExecutor(), tmp_path, "d1")
        list(executor.execute(runner, [(1, 10)]))
        path = tmp_path / "d1" / "1-10.json"
        document = json.loads(path.read_text(encoding="utf-8"))
        document["cache_version"] = -1
        path.write_text(json.dumps(document), encoding="utf-8")
        again = CachedExecutor(SerialExecutor(), tmp_path, "d1")
        list(again.execute(runner, [(1, 10)]))
        assert again.invalid_entries == 1


class TestPipelineCaching:
    def test_cached_replay_is_bit_identical(self, sim_result, tmp_path,
                                            serial_baseline):
        config = RunConfig(chunk_size=25, cache_dir=tmp_path,
                           cache_key="engine-suite")
        first = run_inspector(sim_result, config=config)
        second = run_inspector(sim_result, config=config)
        assert fingerprint(first) == fingerprint(serial_baseline)
        assert fingerprint(second) == fingerprint(serial_baseline)

    def test_cache_composes_with_parallel(self, sim_result, tmp_path,
                                          serial_baseline):
        config = RunConfig(chunk_size=25, workers=4, cache_dir=tmp_path,
                           cache_key="engine-suite")
        first = run_inspector(sim_result, config=config)
        second = run_inspector(sim_result, config=config)
        assert fingerprint(first) == fingerprint(serial_baseline)
        assert fingerprint(second) == fingerprint(serial_baseline)

    def test_fault_profile_partitions_the_cache(self, sim_result, span,
                                                tmp_path):
        from repro.faults import FaultPlan
        plan = FaultPlan.from_profile("transient", 3, *span)
        clean_cfg = RunConfig(chunk_size=25, cache_dir=tmp_path,
                              cache_key="engine-suite")
        fault_cfg = RunConfig(chunk_size=25, cache_dir=tmp_path,
                              cache_key="engine-suite",
                              fault_profile="transient", fault_seed=3)
        clean = run_inspector(sim_result, config=clean_cfg)
        faulted = run_inspector(sim_result, fault_plan=plan,
                                config=fault_cfg)
        # Different digests → the faulted run must not replay clean
        # artifacts: its retry counters prove it actually re-fetched.
        assert faulted.quality.source("archive").retries > 0
        assert clean.quality.source("archive").retries == 0
