"""``RunConfig``: one frozen execution contract, no kwarg mixing."""

import dataclasses

import pytest

from repro import run_inspector
from repro.core.pipeline import MevInspector
from repro.core.profit import PriceService
from repro.engine import (RunConfig, config_from_kwargs,
                          ensure_unmixed, resolve_config)

from tests.engine.conftest import fingerprint


class TestValidation:
    def test_frozen(self):
        config = RunConfig(chunk_size=10)
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.chunk_size = 20

    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError, match="workers"):
            RunConfig(workers=0)

    def test_negative_chunk_size_rejected(self):
        with pytest.raises(ValueError, match="chunk_size"):
            RunConfig(chunk_size=-5)

    def test_cache_dir_requires_cache_key(self):
        with pytest.raises(ValueError, match="cache_key"):
            RunConfig(cache_dir="/tmp/cache")

    def test_config_from_kwargs(self):
        config = config_from_kwargs(chunk_size=10, workers=2)
        assert config == RunConfig(chunk_size=10, workers=2)

    def test_confirm_depth_validated(self):
        assert RunConfig(confirm_depth=0).confirm_depth == 0
        with pytest.raises(ValueError, match="confirm_depth"):
            RunConfig(confirm_depth=-1)


class TestResolveConfig:
    def test_config_passes_through_untouched(self):
        config = RunConfig(chunk_size=10)
        assert resolve_config(config) is config

    def test_loose_kwargs_warn_and_resolve(self):
        with pytest.warns(DeprecationWarning, match="chunk_size"):
            config = resolve_config(None, chunk_size=10, workers=2)
        assert config == RunConfig(chunk_size=10, workers=2)

    def test_default_loose_values_do_not_warn(self, recwarn):
        config = resolve_config(None, chunk_size=None, workers=1)
        assert config == RunConfig()
        assert not [w for w in recwarn.list
                    if issubclass(w.category, DeprecationWarning)]

    def test_internal_callers_can_silence_the_warning(self, recwarn):
        config = resolve_config(None, warn=False, chunk_size=10)
        assert config == RunConfig(chunk_size=10)
        assert not [w for w in recwarn.list
                    if issubclass(w.category, DeprecationWarning)]

    def test_mixing_still_raises(self):
        with pytest.raises(ValueError, match="RunConfig"):
            resolve_config(RunConfig(), chunk_size=10)

    def test_inspector_loose_kwargs_are_deprecated(self, sim_result):
        inspector = MevInspector(sim_result.node,
                                 PriceService(sim_result.oracle),
                                 sim_result.flashbots_api,
                                 sim_result.observer)
        with pytest.warns(DeprecationWarning, match="chunk_size"):
            loose = inspector.run(chunk_size=50)
        quiet = inspector.run(config=RunConfig(chunk_size=50))
        assert fingerprint(loose) == fingerprint(quiet)


class TestMixing:
    def test_loose_kwargs_alongside_config_rejected(self):
        with pytest.raises(ValueError, match="chunk_size"):
            ensure_unmixed(RunConfig(), chunk_size=10)

    def test_default_loose_values_are_fine(self):
        ensure_unmixed(RunConfig(chunk_size=10), chunk_size=None,
                       workers=1)

    def test_no_config_accepts_anything(self):
        ensure_unmixed(None, chunk_size=10, workers=4)

    def test_run_rejects_mixed_call(self, sim_result):
        from repro.reliability import shield
        node, observer, api = shield(sim_result.node,
                                     sim_result.observer,
                                     sim_result.flashbots_api)
        inspector = MevInspector(node, PriceService(sim_result.oracle),
                                 api, observer)
        with pytest.raises(ValueError, match="RunConfig"):
            inspector.run(chunk_size=10, config=RunConfig())


class TestEquivalence:
    def test_config_run_equals_loose_kwarg_run(self, sim_result,
                                               serial_baseline):
        config = RunConfig(chunk_size=25, workers=1)
        dataset = run_inspector(sim_result, config=config)
        assert fingerprint(dataset) == fingerprint(serial_baseline)

    def test_digest_changes_with_fault_seed(self):
        one = RunConfig(cache_dir="/tmp/c", cache_key="k", fault_seed=1)
        two = RunConfig(cache_dir="/tmp/c", cache_key="k", fault_seed=2)
        assert one.artifact_digest() != two.artifact_digest()

    def test_digest_folds_in_extra_material(self):
        config = RunConfig(cache_dir="/tmp/c", cache_key="k")
        assert config.artifact_digest({"retry": 1}) != \
            config.artifact_digest({"retry": 2})
