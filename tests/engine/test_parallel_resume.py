"""Crash-resume across executors: a parallel run killed mid-flight
resumes — at any worker count — into the exact dataset an uninterrupted
serial run produces.
"""

import shutil

import pytest

from repro.core.pipeline import MevInspector
from repro.core.profit import PriceService
from repro.engine import RunConfig
from repro.reliability import shield

from tests.engine.conftest import fingerprint


class SimulatedCrash(RuntimeError):
    """Not a data-source fault: must abort the run, not mark a chunk."""


class BlockCutoffNode:
    """Archive node that dies on any ranged query at/past a cutoff.

    Module-level and built from plain data, so worker processes can
    carry it; the explicit delegation (rather than ``__getattr__``)
    keeps the surface identical to the real node's.
    """

    def __init__(self, inner, cutoff):
        self.inner = inner
        self.cutoff = cutoff

    def _guard(self, *blocks):
        if any(b is not None and b >= self.cutoff for b in blocks):
            raise SimulatedCrash(f"killed at block {self.cutoff}")

    def latest_block_number(self):
        return self.inner.latest_block_number()

    def earliest_block_number(self):
        return self.inner.earliest_block_number()

    def get_block(self, number):
        self._guard(number)
        return self.inner.get_block(number)

    def iter_blocks(self, from_block=None, to_block=None):
        self._guard(from_block, to_block)
        return self.inner.iter_blocks(from_block, to_block)

    def get_transaction(self, tx_hash):
        return self.inner.get_transaction(tx_hash)

    def get_receipt(self, tx_hash):
        return self.inner.get_receipt(tx_hash)

    def get_logs(self, event_type, from_block=None, to_block=None):
        self._guard(from_block, to_block)
        return self.inner.get_logs(event_type, from_block, to_block)

    def iter_receipts(self, from_block=None, to_block=None):
        self._guard(from_block, to_block)
        return self.inner.iter_receipts(from_block, to_block)


def make_inspector(sim_result, node=None):
    shielded, observer, api = shield(
        node if node is not None else sim_result.node,
        sim_result.observer, sim_result.flashbots_api)
    return MevInspector(shielded, PriceService(sim_result.oracle),
                        api, observer)


class TestParallelCrashResume:
    @pytest.mark.parametrize("resume_workers", [1, 4])
    def test_killed_parallel_run_resumes_identically(
            self, sim_result, span, tmp_path, serial_baseline,
            resume_workers):
        first, last = span
        cutoff = first + (last - first) // 2
        crashed_ck = tmp_path / "crashed.json"

        crashing = make_inspector(
            sim_result, node=BlockCutoffNode(sim_result.node, cutoff))
        with pytest.raises(SimulatedCrash):
            crashing.run(config=RunConfig(chunk_size=25,
                                          checkpoint=crashed_ck,
                                          workers=4))
        assert crashed_ck.exists(), \
            "the crashed run must have checkpointed completed chunks"

        # Resume the same checkpoint at different worker counts; each
        # resume gets its own copy so the runs cannot interfere.
        ck = tmp_path / f"resume-{resume_workers}.json"
        shutil.copy(crashed_ck, ck)
        resumed = make_inspector(sim_result).run(
            config=RunConfig(chunk_size=25, checkpoint=ck, resume=True,
                             workers=resume_workers))
        assert resumed.quality.resumed
        assert resumed.quality.chunks_resumed > 0
        assert resumed.quality.failed_ranges == ()
        # Rows are bit-identical to the never-crashed serial run …
        assert resumed.to_rows() == serial_baseline.to_rows()

    def test_resumed_runs_agree_on_quality(self, sim_result, span,
                                           tmp_path):
        """Workers 1 and 4 resuming the same checkpoint agree on the
        full quality ledger, not just the rows."""
        first, last = span
        cutoff = first + (last - first) // 2
        crashed_ck = tmp_path / "crashed.json"
        crashing = make_inspector(
            sim_result, node=BlockCutoffNode(sim_result.node, cutoff))
        with pytest.raises(SimulatedCrash):
            crashing.run(config=RunConfig(chunk_size=25,
                                          checkpoint=crashed_ck,
                                          workers=4))

        prints = []
        for workers in (1, 4):
            ck = tmp_path / f"q-{workers}.json"
            shutil.copy(crashed_ck, ck)
            resumed = make_inspector(sim_result).run(
                config=RunConfig(chunk_size=25, checkpoint=ck,
                                 resume=True, workers=workers))
            prints.append(fingerprint(resumed))
        assert prints[0] == prints[1]
