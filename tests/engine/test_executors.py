"""The engine's core invariant: every executor, same bits.

For a fixed world, fault plan, and chunk plan, serial / parallel /
cached execution must produce byte-identical datasets and identical
``DataQualityReport`` ledgers — ``--workers 4`` buys wall-clock time,
never different numbers.
"""

import pytest

from repro import run_inspector
from repro.engine import (
    CachedExecutor,
    ParallelExecutor,
    SerialExecutor,
    make_executor,
)
from repro.engine import executors as executors_module
from repro.faults import FaultPlan

from tests.engine.conftest import fingerprint


@pytest.fixture
def many_cpus(monkeypatch):
    """Pretend the host has CPUs to spare, so ``make_executor`` builds
    real process pools — the identity tests must exercise genuine
    parallelism even on a small CI box."""
    monkeypatch.setattr(executors_module, "_available_cpus", lambda: 8)


class TestParallelIdentity:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_parallel_matches_serial_bit_for_bit(self, sim_result,
                                                 serial_baseline,
                                                 workers, many_cpus):
        dataset = run_inspector(sim_result, chunk_size=25,
                                workers=workers)
        assert fingerprint(dataset) == fingerprint(serial_baseline)

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_identity_holds_under_faults(self, sim_result, span,
                                         workers, many_cpus):
        plan = FaultPlan.from_profile("transient", 3, *span)
        serial = run_inspector(sim_result, fault_plan=plan,
                               chunk_size=25, workers=1)
        dataset = run_inspector(sim_result, fault_plan=plan,
                                chunk_size=25, workers=workers)
        assert fingerprint(dataset) == fingerprint(serial)
        assert dataset.quality.source("archive").retries > 0

    def test_identity_holds_with_failed_ranges(self, sim_result, span,
                                               many_cpus):
        plan = FaultPlan.from_profile("outage", 2, *span)
        serial = run_inspector(sim_result, fault_plan=plan,
                               chunk_size=10, workers=1)
        parallel = run_inspector(sim_result, fault_plan=plan,
                                 chunk_size=10, workers=4)
        assert fingerprint(parallel) == fingerprint(serial)
        assert parallel.quality.failed_ranges == \
            serial.quality.failed_ranges

    def test_worker_crash_propagates(self, sim_result):
        class Boom:
            def run_chunk(self, chunk):
                raise RuntimeError("worker crashed")

        executor = ParallelExecutor(workers=2)
        with pytest.raises(RuntimeError, match="worker crashed"):
            list(executor.execute(Boom(), [(1, 10), (11, 20)]))


class TestExecutorFactory:
    def test_serial_by_default(self):
        assert isinstance(make_executor(), SerialExecutor)

    def test_parallel_for_many_workers(self, many_cpus):
        executor = make_executor(workers=4)
        assert isinstance(executor, ParallelExecutor)
        assert executor.workers == 4

    def test_workers_capped_to_cpu_count(self, monkeypatch):
        """Oversubscription buys only fork overhead (results are
        bit-identical either way), so the factory caps to the host."""
        monkeypatch.setattr(executors_module, "_available_cpus",
                            lambda: 2)
        executor = make_executor(workers=16)
        assert isinstance(executor, ParallelExecutor)
        assert executor.workers == 2

    def test_single_cpu_host_runs_serial(self, monkeypatch):
        monkeypatch.setattr(executors_module, "_available_cpus",
                            lambda: 1)
        assert isinstance(make_executor(workers=4), SerialExecutor)

    def test_cache_wraps_inner_executor(self, tmp_path, many_cpus):
        executor = make_executor(workers=4, cache_dir=tmp_path,
                                 digest="abc123")
        assert isinstance(executor, CachedExecutor)
        assert isinstance(executor.inner, ParallelExecutor)

    def test_zero_workers_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            ParallelExecutor(workers=0)
