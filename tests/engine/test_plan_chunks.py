"""``plan_chunks`` contract: whole-range defaults, loud rejection."""

import pytest

from repro.core.pipeline import plan_chunks


class TestPlanChunks:
    def test_none_means_whole_range(self):
        assert plan_chunks(10, 99, None) == [(10, 99)]

    def test_zero_means_whole_range(self):
        assert plan_chunks(10, 99, 0) == [(10, 99)]

    def test_negative_size_raises(self):
        with pytest.raises(ValueError, match="chunk_size"):
            plan_chunks(10, 99, -1)

    def test_chunks_cover_range_exactly(self):
        chunks = plan_chunks(1, 100, 30)
        assert chunks == [(1, 30), (31, 60), (61, 90), (91, 100)]

    def test_empty_range(self):
        assert plan_chunks(10, 9, 5) == []

    def test_single_block(self):
        assert plan_chunks(5, 5, 3) == [(5, 5)]
