"""The single-pass ``ChunkRunner`` against its per-heuristic ancestor.

``run_chunk`` used to walk each chunk once *per heuristic*; it now
walks once total, through :class:`repro.core.scan.BlockScan`.  The
rewrite's contract is stronger than "same rows": the *entire chunk
artifact* — payload and resilience stats — must be bit-identical,
because the stats feed the quality ledger and any change there breaks
checkpoint/cache compatibility and the parallel≡serial invariant.

``LegacyChunkRunner`` below embeds a literal copy of the pre-rewrite
detection loop (four standalone detectors, each re-scanning the range)
so the comparison cannot drift with the production code.  It must stay
frozen: it *is* the historical behaviour.
"""

import pytest

from repro.core.profit import PriceService
from repro.engine import ChunkRunner
from repro.engine.runner import CHUNK_FAILURES
from repro.faults import FaultPlan, FaultyArchiveNode
from repro.faults.errors import SourceGapError
from repro.reliability import shield


class LegacyChunkRunner(ChunkRunner):
    """The pre-single-pass ``run_chunk``, verbatim (one scan per
    heuristic, flash loans via ``get_logs``)."""

    def run_chunk(self, chunk):
        from repro.core.datasets import MevDataset
        from repro.core.heuristics.arbitrage import detect_arbitrages
        from repro.core.heuristics.flashloan import \
            detect_flash_loan_txs
        from repro.core.heuristics.liquidation import \
            detect_liquidations
        from repro.core.heuristics.sandwich import detect_sandwiches
        from repro.engine.executors import ChunkResult

        node = self._chunk_node()
        lo, hi = chunk
        try:
            partial = MevDataset(
                sandwiches=detect_sandwiches(node, self.prices,
                                             lo, hi),
                arbitrages=detect_arbitrages(node, self.prices,
                                             lo, hi),
                liquidations=detect_liquidations(node, self.prices,
                                                 lo, hi),
            )
            flash_txs = detect_flash_loan_txs(node, lo, hi)
        except CHUNK_FAILURES:
            return ChunkResult(chunk=chunk, payload=None,
                               stats=self._stats_of(node))
        payload = {"rows": partial.to_rows(),
                   "flash_txs": sorted(flash_txs)}
        return ChunkResult(chunk=chunk, payload=payload,
                           stats=self._stats_of(node))


def _chunks(span, size=25):
    lo, hi = span
    out = []
    while lo <= hi:
        out.append((lo, min(lo + size - 1, hi)))
        lo += size
    return out


def _runner(cls, sim_result, fault_plan=None):
    node = sim_result.node
    if fault_plan is not None:
        # Each runner gets its own fault wrapper: injected faults are
        # pure in (seed, source, op, key) but the gate's attempt
        # counters live on the wrapper, so sharing one instance would
        # let the first runner consume the other's faults.
        node = FaultyArchiveNode(node, fault_plan)
    shielded, _, _ = shield(node)
    return cls.for_pipeline(shielded, PriceService(sim_result.oracle))


def _runners(sim_result, fault_plan=None):
    return (_runner(ChunkRunner, sim_result, fault_plan),
            _runner(LegacyChunkRunner, sim_result, fault_plan))


def assert_identical_artifacts(new, legacy, chunks):
    for chunk in chunks:
        got = new.run_chunk(chunk)
        want = legacy.run_chunk(chunk)
        assert got.chunk == want.chunk
        assert got.payload == want.payload
        assert got.stats == want.stats


class TestSinglePassMatchesLegacy:
    def test_without_faults(self, sim_result, span):
        new, legacy = _runners(sim_result)
        assert_identical_artifacts(new, legacy, _chunks(span))

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_under_chaos(self, sim_result, span, seed):
        plan = FaultPlan.from_profile("chaos", seed, *span)
        new, legacy = _runners(sim_result, plan)
        assert_identical_artifacts(new, legacy, _chunks(span))

    @pytest.mark.parametrize("profile", ["transient", "gaps", "outage"])
    def test_under_other_profiles(self, sim_result, span, profile):
        plan = FaultPlan.from_profile(profile, 2, *span)
        new, legacy = _runners(sim_result, plan)
        assert_identical_artifacts(new, legacy, _chunks(span, size=10))

    def test_permanent_failure_artifacts_match(self, sim_result, span):
        """The equivalence must cover failed chunks too, not just the
        happy path — force an unretryable archive and compare the
        failure artifacts."""

        class DeadNode:
            def __init__(self, inner):
                self.inner = inner

            def __getattr__(self, name):
                return getattr(self.inner, name)

            def iter_blocks(self, from_block=None, to_block=None):
                raise SourceGapError("archive range pruned")

        prices = PriceService(sim_result.oracle)
        new = ChunkRunner(node=DeadNode(sim_result.node), prices=prices)
        legacy = LegacyChunkRunner(node=DeadNode(sim_result.node),
                                   prices=prices)
        chunk = _chunks(span)[0]
        got = new.run_chunk(chunk)
        want = legacy.run_chunk(chunk)
        assert got.failed and want.failed
        assert got.payload == want.payload == None  # noqa: E711
        assert got.stats == want.stats
