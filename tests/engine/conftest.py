"""Shared world + fingerprint helpers for the execution-engine suite.

One simulated study window per session; every engine test re-measures
it through a different executor configuration and asserts the output is
*bit-identical* — rows and quality ledger both — to the serial run.
"""

import json

import pytest

from repro import run_inspector
from repro.sim import ScenarioConfig, build_paper_scenario


def fingerprint(dataset):
    """A run's identity: its rows and its quality ledger, canonical."""
    return (json.dumps(dataset.to_rows(), sort_keys=True),
            json.dumps(dataset.quality.to_dict(), sort_keys=True))


@pytest.fixture(scope="session")
def sim_result():
    from repro.chain.transaction import reset_tx_counter
    reset_tx_counter()  # identical world regardless of test order
    config = ScenarioConfig(blocks_per_month=12, seed=7)
    world = build_paper_scenario(config)
    return world.run()


@pytest.fixture(scope="session")
def span(sim_result):
    """The study window's inclusive block range."""
    return (sim_result.node.earliest_block_number(),
            sim_result.node.latest_block_number())


@pytest.fixture(scope="session")
def serial_baseline(sim_result):
    """The serial chunked run every executor is compared against."""
    return run_inspector(sim_result, chunk_size=25, workers=1)
