"""Tests for the price oracle and oracle-update intents."""

import pytest

from repro.chain.execution import ExecutionContext
from repro.chain.state import WorldState
from repro.chain.transaction import Transaction
from repro.chain.types import address_from_label, ether
from repro.lending.oracle import (
    PRICE_SCALE,
    OracleUpdateIntent,
    PriceOracle,
)

KEEPER = address_from_label("keeper")
MINER = address_from_label("miner")


@pytest.fixture
def oracle():
    o = PriceOracle()
    o.set_price("DAI", PRICE_SCALE // 3_000, block_number=0)
    return o


class TestPrices:
    def test_weth_is_numeraire(self, oracle):
        assert oracle.price("WETH") == PRICE_SCALE

    def test_set_and_get(self, oracle):
        assert oracle.price("DAI") == PRICE_SCALE // 3_000

    def test_unknown_token_raises(self, oracle):
        with pytest.raises(KeyError):
            oracle.price("SHIB")
        assert not oracle.has_price("SHIB")

    def test_nonpositive_price_rejected(self, oracle):
        with pytest.raises(ValueError):
            oracle.set_price("DAI", 0)

    def test_value_in_eth(self, oracle):
        value = oracle.value_in_eth("DAI", ether(3_000))
        assert value == pytest.approx(ether(1), abs=3_000)

    def test_weth_value_identity(self, oracle):
        assert oracle.value_in_eth("WETH", ether(5)) == ether(5)


class TestHistory:
    def test_price_at_between_updates(self, oracle):
        oracle.set_price("DAI", PRICE_SCALE // 2_000, block_number=100)
        assert oracle.price_at("DAI", 50) == PRICE_SCALE // 3_000
        assert oracle.price_at("DAI", 100) == PRICE_SCALE // 2_000
        assert oracle.price_at("DAI", 500) == PRICE_SCALE // 2_000

    def test_price_at_before_first_update(self):
        oracle = PriceOracle()
        oracle.set_price("DAI", 10**15, block_number=10)
        assert oracle.price_at("DAI", 5) is None

    def test_price_at_unknown_token(self, oracle):
        assert oracle.price_at("SHIB", 10) is None

    def test_value_in_eth_at(self, oracle):
        oracle.set_price("DAI", PRICE_SCALE // 2_000, block_number=100)
        at_old = oracle.value_in_eth_at("DAI", ether(6_000), 50)
        at_new = oracle.value_in_eth_at("DAI", ether(6_000), 150)
        assert at_old == pytest.approx(ether(2), abs=10**6)
        assert at_new == pytest.approx(ether(3), abs=10**6)


class TestOracleUpdateIntent:
    def run_update(self, oracle, price, block=7):
        state = WorldState()
        tx = Transaction(sender=KEEPER, nonce=0, to=oracle.address)
        ctx = ExecutionContext(state, tx, block_number=block,
                               coinbase=MINER,
                               contracts={oracle.address: oracle})
        intent = OracleUpdateIntent(oracle.address, "DAI", price)
        outcome = intent.execute(ctx)
        return ctx, outcome

    def test_update_changes_price_and_emits(self, oracle):
        ctx, outcome = self.run_update(oracle, PRICE_SCALE // 2_500)
        assert outcome.success
        assert oracle.price("DAI") == PRICE_SCALE // 2_500
        assert len(ctx.logs) == 1
        assert ctx.logs[0].token == "DAI"

    def test_update_recorded_in_history(self, oracle):
        self.run_update(oracle, PRICE_SCALE // 2_500, block=7)
        assert oracle.price_at("DAI", 7) == PRICE_SCALE // 2_500

    def test_update_rolls_back_with_state(self, oracle):
        state = WorldState()
        snap = state.snapshot()
        tx = Transaction(sender=KEEPER, nonce=0, to=oracle.address)
        ctx = ExecutionContext(state, tx, block_number=9, coinbase=MINER,
                               contracts={oracle.address: oracle})
        OracleUpdateIntent(oracle.address, "DAI",
                           PRICE_SCALE // 100).execute(ctx)
        assert oracle.price("DAI") == PRICE_SCALE // 100
        state.revert_to(snap)
        assert oracle.price("DAI") == PRICE_SCALE // 3_000
        assert oracle.price_at("DAI", 9) == PRICE_SCALE // 3_000
