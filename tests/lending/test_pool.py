"""Tests for lending-pool loans, health factors and liquidations."""

import pytest

from repro.chain.execution import ExecutionContext, Revert
from repro.chain.state import WorldState
from repro.chain.transaction import Transaction
from repro.chain.types import address_from_label, ether
from repro.lending.oracle import PRICE_SCALE, PriceOracle
from repro.lending.pool import LendingPool, LiquidationIntent

BORROWER = address_from_label("borrower")
LIQUIDATOR = address_from_label("liquidator")
MINER = address_from_label("miner")


@pytest.fixture
def env():
    state = WorldState()
    oracle = PriceOracle()
    oracle.set_price("DAI", PRICE_SCALE // 3_000)  # 3000 DAI per ETH
    pool = LendingPool("Aave", oracle)
    pool.provision(state, "DAI", ether(10_000_000))
    state.mint_token("WETH", BORROWER, ether(100))
    state.mint_token("DAI", LIQUIDATOR, ether(1_000_000))
    return state, oracle, pool


def ctx_for(state, pool, sender, block=1):
    tx = Transaction(sender=sender, nonce=0, to=pool.address)
    return ExecutionContext(state, tx, block_number=block, coinbase=MINER,
                            contracts={pool.address: pool})


def open_standard_loan(state, pool):
    """10 WETH collateral (30k DAI value), 20k DAI debt → HF ≈ 1.24."""
    ctx = ctx_for(state, pool, BORROWER)
    return pool.open_loan(ctx, "WETH", ether(10), "DAI", ether(20_000))


class TestOpenLoan:
    def test_healthy_loan_opens(self, env):
        state, _, pool = env
        loan = open_standard_loan(state, pool)
        assert loan.loan_id in pool.loans
        assert state.token_balance("DAI", BORROWER) == ether(20_000)
        assert state.token_balance("WETH", pool.address) == ether(10)

    def test_emits_borrow_event(self, env):
        state, _, pool = env
        ctx = ctx_for(state, pool, BORROWER)
        pool.open_loan(ctx, "WETH", ether(10), "DAI", ether(20_000))
        assert any(type(log).__name__ == "BorrowEvent"
                   for log in ctx.logs)

    def test_undercollateralized_rejected(self, env):
        state, _, pool = env
        ctx = ctx_for(state, pool, BORROWER)
        with pytest.raises(Revert):
            pool.open_loan(ctx, "WETH", ether(10), "DAI", ether(29_000))

    def test_health_factor_math(self, env):
        state, _, pool = env
        loan = open_standard_loan(state, pool)
        # 30000 * 0.825 / 20000 = 1.2375
        assert pool.health_factor(loan) == pytest.approx(1.2375, rel=1e-6)
        assert not pool.is_liquidatable(loan)


class TestLiquidation:
    def price_drop(self, oracle, eth_price_dai):
        """Set WETH price by adjusting DAI/ETH inverse: collateral is WETH,
        debt is DAI; drop WETH value by raising DAI price."""
        oracle.set_price("DAI", PRICE_SCALE // eth_price_dai)

    def test_loan_becomes_liquidatable_after_price_drop(self, env):
        state, oracle, pool = env
        loan = open_standard_loan(state, pool)
        self.price_drop(oracle, 2_000)  # collateral now 20k DAI value
        assert pool.is_liquidatable(loan)
        assert loan in pool.liquidatable_loans()

    def test_healthy_loan_cannot_be_liquidated(self, env):
        state, _, pool = env
        loan = open_standard_loan(state, pool)
        ctx = ctx_for(state, pool, LIQUIDATOR)
        with pytest.raises(Revert):
            pool.liquidate(ctx, loan.loan_id, ether(1_000))

    def test_liquidation_seizes_bonus_collateral(self, env):
        state, oracle, pool = env
        loan = open_standard_loan(state, pool)
        self.price_drop(oracle, 2_000)
        ctx = ctx_for(state, pool, LIQUIDATOR)
        repay = pool.max_repay(loan)  # 50 % of 20k = 10k DAI
        seized = pool.liquidate(ctx, loan.loan_id, repay)
        # 10k DAI = 5 WETH at 2000; +8 % bonus = 5.4 WETH
        assert seized == pytest.approx(ether(5.4), rel=1e-6)
        assert state.token_balance("WETH", LIQUIDATOR) == seized
        # Liquidator profit: received 5.4 WETH worth 10.8k DAI for 10k DAI.
        value_received = oracle.value_in_eth("WETH", seized)
        value_paid = oracle.value_in_eth("DAI", repay)
        assert value_received > value_paid

    def test_close_factor_caps_repayment(self, env):
        state, oracle, pool = env
        loan = open_standard_loan(state, pool)
        self.price_drop(oracle, 2_000)
        ctx = ctx_for(state, pool, LIQUIDATOR)
        pool.liquidate(ctx, loan.loan_id, ether(20_000))
        assert loan.debt_amount == ether(10_000)  # only half repaid

    def test_liquidation_restores_health(self, env):
        state, oracle, pool = env
        loan = open_standard_loan(state, pool)
        self.price_drop(oracle, 2_400)  # just below the HF=1 boundary
        ctx = ctx_for(state, pool, LIQUIDATOR)
        pool.liquidate(ctx, loan.loan_id, pool.max_repay(loan))
        assert not pool.is_liquidatable(loan)

    def test_second_liquidator_frontrun_fate(self, env):
        """The loser of a liquidation race reverts (paper Definition 3)."""
        state, oracle, pool = env
        loan = open_standard_loan(state, pool)
        self.price_drop(oracle, 2_400)
        winner_ctx = ctx_for(state, pool, LIQUIDATOR)
        pool.liquidate(winner_ctx, loan.loan_id, pool.max_repay(loan))
        loser = address_from_label("slow-liquidator")
        state.mint_token("DAI", loser, ether(100_000))
        loser_ctx = ctx_for(state, pool, loser)
        with pytest.raises(Revert):
            pool.liquidate(loser_ctx, loan.loan_id, ether(10_000))

    def test_emits_liquidation_event(self, env):
        state, oracle, pool = env
        loan = open_standard_loan(state, pool)
        self.price_drop(oracle, 2_000)
        ctx = ctx_for(state, pool, LIQUIDATOR)
        pool.liquidate(ctx, loan.loan_id, ether(1_000))
        events = [log for log in ctx.logs
                  if type(log).__name__ == "LiquidationEvent"]
        assert len(events) == 1
        assert events[0].liquidator == LIQUIDATOR
        assert events[0].borrower == BORROWER
        assert events[0].debt_repaid == ether(1_000)

    def test_unknown_loan_reverts(self, env):
        state, _, pool = env
        ctx = ctx_for(state, pool, LIQUIDATOR)
        with pytest.raises(Revert):
            pool.liquidate(ctx, 999_999, ether(1))

    def test_rollback_restores_loan_book(self, env):
        state, oracle, pool = env
        loan = open_standard_loan(state, pool)
        self.price_drop(oracle, 2_000)
        snap = state.snapshot()
        ctx = ctx_for(state, pool, LIQUIDATOR)
        pool.liquidate(ctx, loan.loan_id, ether(5_000))
        state.revert_to(snap)
        assert loan.debt_amount == ether(20_000)
        assert loan.collateral_amount == ether(10)
        assert state.token_balance("WETH", LIQUIDATOR) == 0

    def test_open_loan_rollback_removes_loan(self, env):
        state, _, pool = env
        snap = state.snapshot()
        loan = open_standard_loan(state, pool)
        state.revert_to(snap)
        assert loan.loan_id not in pool.loans


class TestLiquidationIntent:
    def test_intent_executes_and_tips(self, env):
        state, oracle, pool = env
        loan = open_standard_loan(state, pool)
        oracle.set_price("DAI", PRICE_SCALE // 2_000)
        state.credit_eth(LIQUIDATOR, ether(1))
        ctx = ctx_for(state, pool, LIQUIDATOR)
        intent = LiquidationIntent(pool.address, loan.loan_id,
                                   ether(5_000), coinbase_tip=ether(0.5))
        outcome = intent.execute(ctx)
        assert outcome.success
        assert ctx.coinbase_transfer == ether(0.5)
        assert state.eth_balance(MINER) == ether(0.5)


class TestConfigValidation:
    def test_bad_close_factor(self):
        with pytest.raises(ValueError):
            LendingPool("X", PriceOracle(), close_factor_bps=0)

    def test_bad_bonus(self):
        with pytest.raises(ValueError):
            LendingPool("X", PriceOracle(), bonus_bps=10_000)

    def test_bad_threshold(self):
        with pytest.raises(ValueError):
            LendingPool("X", PriceOracle(),
                        liquidation_threshold_bps=20_000)
