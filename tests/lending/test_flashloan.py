"""Tests for flash loans: atomic repay-or-revert, fee, composition."""

import pytest

from repro.chain.block import BlockBuilder
from repro.chain.state import WorldState
from repro.chain.transaction import Transaction
from repro.chain.types import address_from_label, ether, gwei
from repro.dex.registry import SUSHISWAP, UNISWAP_V2, ExchangeRegistry
from repro.dex.router import ArbitrageIntent
from repro.lending.flashloan import FlashLoanIntent, FlashLoanProvider

USER = address_from_label("flash-user")
MINER = address_from_label("miner")


@pytest.fixture
def env():
    state = WorldState()
    provider = FlashLoanProvider("Aave")
    provider.provision(state, "WETH", ether(10_000))
    state.credit_eth(USER, ether(10))
    contracts = {provider.address: provider}
    return state, provider, contracts


def run_tx(state, contracts, intent, gas_limit=1_000_000):
    tx = Transaction(sender=USER, nonce=state.nonce(USER),
                     to=list(contracts)[0], gas_price=gwei(10),
                     gas_limit=gas_limit, intent=intent)
    builder = BlockBuilder(state, number=1, timestamp=13, coinbase=MINER,
                           base_fee=0, contracts=contracts)
    receipt = builder.apply_transaction(tx)
    builder.finalize()
    return receipt


class TestFlashLoanMechanics:
    def test_unrepayable_loan_reverts_whole_tx(self, env):
        state, provider, contracts = env
        # No inner intent and no funds to pay the fee → cannot repay.
        intent = FlashLoanIntent(provider.address, "WETH", ether(1_000))
        receipt = run_tx(state, contracts, intent)
        assert not receipt.status
        assert provider.available(state, "WETH") == ether(10_000)
        assert state.token_balance("WETH", USER) == 0

    def test_loan_with_fee_covered_succeeds(self, env):
        state, provider, contracts = env
        state.mint_token("WETH", USER, ether(1))  # covers the 9 bps fee
        intent = FlashLoanIntent(provider.address, "WETH", ether(1_000))
        receipt = run_tx(state, contracts, intent)
        assert receipt.status
        fee = provider.fee_for(ether(1_000))
        assert fee == ether(1_000) * 9 // 10_000
        assert provider.available(state, "WETH") == ether(10_000) + fee
        assert state.token_balance("WETH", USER) == ether(1) - fee

    def test_emits_event_only_on_success(self, env):
        state, provider, contracts = env
        state.mint_token("WETH", USER, ether(1))
        ok = run_tx(state, contracts,
                    FlashLoanIntent(provider.address, "WETH", ether(100)))
        fail = run_tx(state, contracts,
                      FlashLoanIntent(provider.address, "WETH",
                                      ether(9_999)))
        ok_events = [l for l in ok.logs
                     if type(l).__name__ == "FlashLoanEvent"]
        assert len(ok_events) == 1
        assert ok_events[0].amount == ether(100)
        assert fail.logs == []

    def test_liquidity_exhausted_reverts(self, env):
        state, provider, contracts = env
        intent = FlashLoanIntent(provider.address, "WETH", ether(50_000))
        receipt = run_tx(state, contracts, intent)
        assert not receipt.status
        assert receipt.error == "flash loan liquidity exhausted"

    def test_nonpositive_amount_reverts(self, env):
        state, provider, contracts = env
        receipt = run_tx(state, contracts,
                         FlashLoanIntent(provider.address, "WETH", 0))
        assert not receipt.status

    def test_gas_includes_inner(self, env):
        _, provider, _ = env
        bare = FlashLoanIntent(provider.address, "WETH", 1)
        wrapped = FlashLoanIntent(provider.address, "WETH", 1,
                                  inner=ArbitrageIntent(
                                      route=["a", "b"], token_in="WETH",
                                      amount_in=1))
        assert wrapped.gas_estimate() > bare.gas_estimate()


class TestFlashLoanArbitrage:
    """Flash-loan-funded arbitrage: the paper's amplified-capital MEV."""

    def test_penniless_searcher_profits(self, env):
        state, provider, contracts = env
        registry = ExchangeRegistry()
        uni = registry.create_pool(UNISWAP_V2, "WETH", "DAI")
        sushi = registry.create_pool(SUSHISWAP, "WETH", "DAI")
        uni.add_liquidity(state, WETH=ether(1_000), DAI=ether(3_000_000))
        sushi.add_liquidity(state, WETH=ether(1_000),
                            DAI=ether(3_450_000))
        contracts.update(registry.contracts)
        arb = ArbitrageIntent(route=[sushi.address, uni.address],
                              token_in="WETH", amount_in=ether(20))
        intent = FlashLoanIntent(provider.address, "WETH", ether(20),
                                 inner=arb)
        receipt = run_tx(state, contracts, intent)
        assert receipt.status
        # The searcher kept profit minus the flash fee, from zero capital.
        assert state.token_balance("WETH", USER) > 0
        event_names = [type(l).__name__ for l in receipt.logs]
        assert "FlashLoanEvent" in event_names
        assert event_names.count("SwapEvent") == 2

    def test_failed_inner_arb_reverts_loan(self, env):
        state, provider, contracts = env
        registry = ExchangeRegistry()
        uni = registry.create_pool(UNISWAP_V2, "WETH", "DAI")
        sushi = registry.create_pool(SUSHISWAP, "WETH", "DAI")
        # Balanced pools: no arbitrage → inner reverts → loan reverts.
        uni.add_liquidity(state, WETH=ether(1_000), DAI=ether(3_000_000))
        sushi.add_liquidity(state, WETH=ether(1_000),
                            DAI=ether(3_000_000))
        contracts.update(registry.contracts)
        arb = ArbitrageIntent(route=[sushi.address, uni.address],
                              token_in="WETH", amount_in=ether(20))
        intent = FlashLoanIntent(provider.address, "WETH", ether(20),
                                 inner=arb)
        receipt = run_tx(state, contracts, intent)
        assert not receipt.status
        assert provider.available(state, "WETH") == ether(10_000)
        assert uni.reserve_of(state, "WETH") == ether(1_000)
