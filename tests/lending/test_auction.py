"""Tests for auction-based liquidations — and their MEV immunity."""

import pytest

from repro.chain.block import BlockBuilder
from repro.chain.execution import ExecutionContext, Revert
from repro.chain.node import ArchiveNode, Blockchain
from repro.chain.state import WorldState
from repro.chain.transaction import Transaction
from repro.chain.types import address_from_label, ether, gwei
from repro.core.heuristics.liquidation import detect_liquidations
from repro.core.profit import PriceService
from repro.lending.auction import (
    AuctionHouse,
    BidIntent,
    SettleAuctionIntent,
    StartAuctionIntent,
)
from repro.lending.oracle import PRICE_SCALE, PriceOracle
from repro.lending.pool import LendingPool

BORROWER = address_from_label("auc-borrower")
KEEPER = address_from_label("auc-keeper")
BIDDER_A = address_from_label("auc-bidder-a")
BIDDER_B = address_from_label("auc-bidder-b")
MINER = address_from_label("auc-miner")


@pytest.fixture
def env():
    state = WorldState()
    oracle = PriceOracle()
    oracle.set_price("DAI", PRICE_SCALE // 3_000)
    pool = LendingPool("Maker", oracle)
    pool.provision(state, "DAI", ether(10_000_000))
    house = AuctionHouse(pool, duration_blocks=10)
    contracts = {pool.address: pool, house.address: house}
    state.mint_token("WETH", BORROWER, ether(10))
    for bidder in (KEEPER, BIDDER_A, BIDDER_B):
        state.credit_eth(bidder, ether(100))
        state.mint_token("DAI", bidder, ether(500_000))
    # Open a loan, then crash the collateral.
    tx = Transaction(sender=BORROWER, nonce=0, to=pool.address)
    ctx = ExecutionContext(state, tx, block_number=1, coinbase=MINER,
                           contracts=contracts)
    loan = pool.open_loan(ctx, "WETH", ether(10), "DAI", ether(20_000))
    oracle.set_price("DAI", PRICE_SCALE // 2_000)
    return state, pool, house, loan, contracts


def run_tx(state, contracts, sender, intent, number, gas=500_000):
    tx = Transaction(sender=sender, nonce=state.nonce(sender),
                     to=list(contracts)[-1], gas_price=gwei(20),
                     gas_limit=gas, intent=intent)
    builder = BlockBuilder(state, number=number, timestamp=13 * number,
                           coinbase=MINER, base_fee=0,
                           contracts=contracts)
    receipt = builder.apply_transaction(tx)
    builder.finalize()
    return receipt


class TestAuctionLifecycle:
    def test_full_auction_flow(self, env):
        state, pool, house, loan, contracts = env
        start = run_tx(state, contracts, KEEPER,
                       StartAuctionIntent(house.address, loan.loan_id),
                       number=2)
        assert start.status
        auction_id = 1 if not house.auctions else \
            list(house.auctions)[0]
        # Two bidders escalate over separate blocks.
        assert run_tx(state, contracts, BIDDER_A,
                      BidIntent(house.address, auction_id,
                                ether(20_000)), number=3).status
        assert run_tx(state, contracts, BIDDER_B,
                      BidIntent(house.address, auction_id,
                                ether(21_000)), number=4).status
        # Bidder A got its escrow back when outbid.
        assert state.token_balance("DAI", BIDDER_A) == ether(500_000)
        # Settlement only after expiry.
        early = run_tx(state, contracts, BIDDER_B,
                       SettleAuctionIntent(house.address, auction_id),
                       number=5)
        assert not early.status
        settle = run_tx(state, contracts, BIDDER_B,
                        SettleAuctionIntent(house.address, auction_id),
                        number=12)
        assert settle.status
        assert state.token_balance("WETH", BIDDER_B) == ether(10)
        assert loan.is_closed

    def test_healthy_loan_cannot_be_auctioned(self, env):
        state, pool, house, loan, contracts = env
        pool.oracle.set_price("DAI", PRICE_SCALE // 3_000)  # healthy
        receipt = run_tx(state, contracts, KEEPER,
                         StartAuctionIntent(house.address,
                                            loan.loan_id), number=2)
        assert not receipt.status

    def test_bid_below_increment_rejected(self, env):
        state, pool, house, loan, contracts = env
        run_tx(state, contracts, KEEPER,
               StartAuctionIntent(house.address, loan.loan_id),
               number=2)
        auction_id = list(house.auctions)[0]
        run_tx(state, contracts, BIDDER_A,
               BidIntent(house.address, auction_id, ether(20_000)),
               number=3)
        low = run_tx(state, contracts, BIDDER_B,
                     BidIntent(house.address, auction_id,
                               ether(20_100)), number=4)  # < +3 %
        assert not low.status

    def test_no_duplicate_auctions(self, env):
        state, pool, house, loan, contracts = env
        run_tx(state, contracts, KEEPER,
               StartAuctionIntent(house.address, loan.loan_id),
               number=2)
        duplicate = run_tx(state, contracts, BIDDER_A,
                           StartAuctionIntent(house.address,
                                              loan.loan_id), number=3)
        assert not duplicate.status

    def test_settle_without_bids_reverts(self, env):
        state, pool, house, loan, contracts = env
        run_tx(state, contracts, KEEPER,
               StartAuctionIntent(house.address, loan.loan_id),
               number=2)
        auction_id = list(house.auctions)[0]
        receipt = run_tx(state, contracts, KEEPER,
                         SettleAuctionIntent(house.address, auction_id),
                         number=20)
        assert not receipt.status


class TestMevImmunity:
    def test_settlement_invisible_to_mev_heuristics(self, env):
        """The paper's point: auction liquidations are not in the MEV
        dataset — the liquidation heuristic only sees fixed-spread
        events, and an auction settlement emits none."""
        state, pool, house, loan, contracts = env
        chain = Blockchain()
        oracle = pool.oracle

        def mine(sender, intent, number):
            tx = Transaction(sender=sender,
                             nonce=state.nonce(sender),
                             to=house.address, gas_price=gwei(20),
                             gas_limit=500_000, intent=intent)
            builder = BlockBuilder(state, number=number,
                                   timestamp=13 * number,
                                   coinbase=MINER, base_fee=0,
                                   contracts=contracts)
            builder.apply_transaction(tx)
            chain.append(builder.finalize())

        mine(KEEPER, StartAuctionIntent(house.address, loan.loan_id), 1)
        auction_id = list(house.auctions)[0]
        mine(BIDDER_A, BidIntent(house.address, auction_id,
                                 ether(20_000)), 2)
        for number in range(3, 12):
            builder = BlockBuilder(state, number=number,
                                   timestamp=13 * number,
                                   coinbase=MINER, base_fee=0,
                                   contracts=contracts)
            chain.append(builder.finalize())
        mine(BIDDER_A, SettleAuctionIntent(house.address, auction_id),
             12)
        assert loan.is_closed
        records = detect_liquidations(ArchiveNode(chain),
                                      PriceService(oracle))
        assert records == []
