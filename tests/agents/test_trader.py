"""Tests for retail traders, borrowers, and the oracle keeper."""

import random

import pytest

from repro.agents.fees import FeeModel
from repro.agents.trader import BorrowerPopulation, OracleKeeper, \
    TraderPopulation
from repro.chain.block import BlockBuilder
from repro.chain.types import address_from_label, ether, gwei
from repro.dex.router import ArbitrageIntent, SwapIntent
from repro.sim.prices import PriceUniverse

from tests.agents.conftest import make_view

FEES = FeeModel(base_fee=0, london_active=False, prevailing=gwei(50))
MINER = address_from_label("m")


@pytest.fixture
def traders():
    return TraderPopulation(random.Random(5), accounts=20)


class TestTraderSwaps:
    def test_swap_is_valid_and_executes(self, market, traders):
        state, registry, *_ = market
        tx = traders.make_swap(state, registry, FEES)
        assert isinstance(tx.intent, SwapIntent)
        builder = BlockBuilder(state, number=1, timestamp=13,
                               coinbase=MINER, base_fee=0,
                               contracts=registry.contracts)
        receipt = builder.apply_transaction(tx)
        builder.finalize()
        assert receipt is not None and receipt.status

    def test_swap_has_slippage_protection(self, market, traders):
        state, registry, *_ = market
        protected = 0
        for _ in range(50):
            tx = traders.make_swap(state, registry, FEES)
            if tx is None:
                continue
            assert tx.intent.min_amount_out > 0
            protected += 1
        assert protected > 30

    def test_slippage_mixture_has_loose_tail(self, traders):
        samples = [traders._sample_slippage_bps() for _ in range(2_000)]
        assert min(samples) >= 10
        assert max(samples) <= 1_000
        assert any(s > 200 for s in samples)
        assert any(s < 50 for s in samples)

    def test_no_pools_returns_none(self, traders):
        from repro.chain.state import WorldState
        from repro.dex.registry import ExchangeRegistry
        assert traders.make_swap(WorldState(), ExchangeRegistry(),
                                 FEES) is None


class TestTransfersAndArbs:
    def test_transfer_executes(self, market, traders):
        state, *_ = market
        tx = traders.make_transfer(state, FEES)
        builder = BlockBuilder(state, number=1, timestamp=13,
                               coinbase=MINER, base_fee=0)
        receipt = builder.apply_transaction(tx)
        builder.finalize()
        assert receipt is not None and receipt.status

    def test_naive_arb_when_gap_exists(self, market, traders):
        state, registry, *_ = market
        tx = traders.make_naive_arbitrage(state, registry, FEES)
        assert tx is not None
        assert isinstance(tx.intent, ArbitrageIntent)
        assert tx.meta["role"] == "amateur-arb"

    def test_no_arb_without_gap(self, traders):
        from repro.chain.state import WorldState
        from repro.dex.registry import UNISWAP_V2, ExchangeRegistry
        state = WorldState()
        registry = ExchangeRegistry()
        pool = registry.create_pool(UNISWAP_V2, "WETH", "DAI")
        pool.add_liquidity(state, WETH=ether(100), DAI=ether(300_000))
        assert traders.make_naive_arbitrage(state, registry,
                                            FEES) is None


class TestBorrowers:
    def test_borrow_opens_fragile_loan(self, market):
        state, registry, oracle, lending, *_ = market
        borrowers = BorrowerPopulation(random.Random(5), accounts=10)
        tx = borrowers.make_borrow(state, lending, oracle, FEES)
        assert tx is not None
        builder = BlockBuilder(state, number=1, timestamp=13,
                               coinbase=MINER, base_fee=0,
                               contracts={lending.address: lending})
        receipt = builder.apply_transaction(tx)
        builder.finalize()
        assert receipt.status
        loans = lending.open_loans()
        assert len(loans) == 1
        health = lending.health_factor(loans[0])
        assert 1.0 < health < 1.5

    def test_validation(self):
        with pytest.raises(ValueError):
            BorrowerPopulation(random.Random(1), accounts=0)
        with pytest.raises(ValueError):
            BorrowerPopulation(random.Random(1), target_health=0.9)


class TestOracleKeeper:
    def test_updates_on_schedule(self, market):
        state, _, oracle, *_ = market
        universe = PriceUniverse(seed=1)
        universe.add_token("DAI", oracle.price("DAI"))
        keeper = OracleKeeper(random.Random(5), oracle, universe,
                              update_interval_blocks=10)
        assert keeper.make_updates(state, FEES, block_number=7) == []
        updates = keeper.make_updates(state, FEES, block_number=10)
        assert len(updates) == 1
        assert updates[0].intent.token == "DAI"

    def test_updates_execute_and_change_price(self, market):
        state, _, oracle, *_ = market
        before = oracle.price("DAI")
        universe = PriceUniverse(seed=1)
        universe.add_token("DAI", before, volatility=0.5)
        keeper = OracleKeeper(random.Random(5), oracle, universe,
                              update_interval_blocks=1)
        tx = keeper.make_updates(state, FEES, block_number=1)[0]
        builder = BlockBuilder(state, number=1, timestamp=13,
                               coinbase=MINER, base_fee=0,
                               contracts={oracle.address: oracle})
        receipt = builder.apply_transaction(tx)
        builder.finalize()
        assert receipt.status
        assert oracle.price("DAI") != before

    def test_interval_validation(self, market):
        _, _, oracle, *_ = market
        with pytest.raises(ValueError):
            OracleKeeper(random.Random(1), oracle, PriceUniverse(),
                         update_interval_blocks=0)
