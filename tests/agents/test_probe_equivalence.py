"""Probe-ladder fast path vs. its retained reference.

``ArbitrageSearcher._probe_cycle`` is registered as a fast path
(``@fast_path(reference="_probe_cycle_reference", toggle="memo")``);
R102 requires a test exercising the pair.  This is it: on the same
frozen market state, the memoized ladder (view ``memo={}``) must return
exactly what ``_probe_cycle_reference`` returns on the naive per-rung
path (view ``memo=None``) — same optimal size, same projected profit,
for every candidate route in both orientations.
"""

import random

import repro.agents.searcher as searcher_mod
from repro.agents.fees import FeeModel
from repro.agents.searcher import (
    ArbitrageSearcher,
    ChannelPolicy,
    MarketView,
)
from repro.chain.state import WorldState
from repro.chain.types import ether, gwei
from repro.dex.registry import CURVE, SUSHISWAP, UNISWAP_V2, \
    ExchangeRegistry
from repro.lending.oracle import PRICE_SCALE, PriceOracle


def _market():
    state = WorldState()
    registry = ExchangeRegistry()
    weth_dai = registry.create_pool(UNISWAP_V2, "WETH", "DAI")
    weth_usdc = registry.create_pool(SUSHISWAP, "WETH", "USDC")
    curve = registry.create_pool(CURVE, "DAI", "USDC")
    weth_dai.add_liquidity(state, WETH=ether(2_000),
                           DAI=ether(6_000_000))
    weth_usdc.add_liquidity(state, WETH=ether(2_000),
                            USDC=ether(6_000_000))
    curve.add_liquidity(state, DAI=ether(1_500_000),
                        USDC=ether(8_500_000))
    oracle = PriceOracle()
    oracle.set_price("DAI", PRICE_SCALE // 3_000)
    oracle.set_price("USDC", PRICE_SCALE // 3_000)
    return state, registry, oracle


def _view(state, registry, oracle, memo):
    return MarketView(state=state, registry=registry, oracle=oracle,
                      pending=[], block_number=100,
                      fees=FeeModel(base_fee=0, london_active=False,
                                    prevailing=gwei(50)),
                      rng=random.Random(7), memo=memo)


def test_probe_cycle_matches_reference():
    state, registry, oracle = _market()
    searcher = ArbitrageSearcher("probe-eq", ChannelPolicy(),
                                 min_profit_wei=ether(0.01))
    state.mint_token("WETH", searcher.address, ether(1_000))
    # The cross-view probe cache is keyed by exact reserves, so a hit
    # is exact — but start cold anyway so this test stands alone.
    searcher_mod._PROBE_CACHE.clear()
    fast_view = _view(state, registry, oracle, memo={})
    ref_view = _view(state, registry, oracle, memo=None)
    routes = searcher._triangle_candidates(fast_view)
    assert routes, "market must offer probe candidates"
    for route in routes:
        fast = searcher._probe_cycle(fast_view, route)
        ref = searcher._probe_cycle(ref_view, route)
        assert fast == ref, f"probe ladder diverged on {route}"
    # At least one orientation is profitable in this depegged market;
    # equality above must not be vacuous None == None everywhere.
    assert any(searcher._probe_cycle(fast_view, route) is not None
               for route in routes)


def test_probe_cycle_memo_none_routes_to_reference(monkeypatch):
    """toggle=memo really is the dispatch: memo=None hits the
    reference implementation and nothing else."""
    state, registry, oracle = _market()
    searcher = ArbitrageSearcher("probe-ref", ChannelPolicy(),
                                 min_profit_wei=ether(0.01))
    state.mint_token("WETH", searcher.address, ether(1_000))
    calls = []
    original = ArbitrageSearcher._probe_cycle_reference

    def spy(self, view, route, capital):
        calls.append(list(route))
        return original(self, view, route, capital)

    monkeypatch.setattr(ArbitrageSearcher, "_probe_cycle_reference",
                        spy)
    view = _view(state, registry, oracle, memo=None)
    route = searcher._triangle_candidates(view)[0]
    searcher._probe_cycle(view, route)
    assert calls == [route]
