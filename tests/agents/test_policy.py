"""Tests for searcher channel policies and activity windows."""

import pytest

from repro.agents.searcher import (
    CHANNEL_FLASHBOTS,
    CHANNEL_PRIVATE,
    CHANNEL_PUBLIC,
    ChannelPolicy,
    SandwichSearcher,
    Searcher,
)


class TestChannelPolicy:
    def test_default_public(self):
        assert ChannelPolicy().channel_at(10**6) == CHANNEL_PUBLIC

    def test_flashbots_window(self):
        policy = ChannelPolicy(flashbots_from=100, flashbots_until=200)
        assert policy.channel_at(99) == CHANNEL_PUBLIC
        assert policy.channel_at(100) == CHANNEL_FLASHBOTS
        assert policy.channel_at(199) == CHANNEL_FLASHBOTS
        assert policy.channel_at(200) == CHANNEL_PUBLIC

    def test_flashbots_open_ended(self):
        policy = ChannelPolicy(flashbots_from=100)
        assert policy.channel_at(10**9) == CHANNEL_FLASHBOTS

    def test_private_after_flashbots(self):
        policy = ChannelPolicy(flashbots_from=100, flashbots_until=200,
                               private_pool="eden", private_from=200)
        assert policy.channel_at(150) == CHANNEL_FLASHBOTS
        assert policy.channel_at(200) == CHANNEL_PRIVATE

    def test_private_until_shutdown(self):
        policy = ChannelPolicy(private_pool="taichi", private_from=100,
                               private_until=300)
        assert policy.channel_at(200) == CHANNEL_PRIVATE
        assert policy.channel_at(300) == CHANNEL_PUBLIC

    def test_flashbots_takes_precedence_over_private(self):
        policy = ChannelPolicy(flashbots_from=100, private_pool="eden",
                               private_from=50)
        assert policy.channel_at(60) == CHANNEL_PRIVATE
        assert policy.channel_at(150) == CHANNEL_FLASHBOTS


class TestSearcherBase:
    def test_activity_window(self):
        searcher = SandwichSearcher("s", ChannelPolicy(),
                                    active_from=10, active_until=20)
        assert not searcher.is_active(9)
        assert searcher.is_active(10)
        assert searcher.is_active(19)
        assert not searcher.is_active(20)

    def test_address_stable(self):
        a = SandwichSearcher("same", ChannelPolicy())
        b = SandwichSearcher("same", ChannelPolicy())
        assert a.address == b.address

    def test_validation(self):
        with pytest.raises(ValueError):
            SandwichSearcher("s", ChannelPolicy(), faulty_rate=2.0)
        with pytest.raises(ValueError):
            SandwichSearcher("s", ChannelPolicy(), attempt_rate=0.0)
        with pytest.raises(ValueError):
            SandwichSearcher("s", ChannelPolicy(), visibility=0.0)

    def test_base_scan_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Searcher("s", ChannelPolicy()).scan(None)
