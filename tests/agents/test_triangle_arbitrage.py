"""Tests for triangular arbitrage through a connector pool."""

import pytest

from repro.agents.searcher import ArbitrageSearcher, ChannelPolicy
from repro.chain.block import BlockBuilder
from repro.chain.state import WorldState
from repro.chain.types import address_from_label, ether
from repro.dex.registry import CURVE, SUSHISWAP, UNISWAP_V2, \
    ExchangeRegistry
from repro.lending.oracle import PRICE_SCALE, PriceOracle

from tests.agents.conftest import make_view

MINER = address_from_label("tri-miner")


@pytest.fixture
def triangle_market():
    """WETH/DAI and WETH/USDC at parity, but the Curve DAI/USDC pool is
    heavily imbalanced → a pure triangular opportunity."""
    state = WorldState()
    registry = ExchangeRegistry()
    weth_dai = registry.create_pool(UNISWAP_V2, "WETH", "DAI")
    weth_usdc = registry.create_pool(SUSHISWAP, "WETH", "USDC")
    curve = registry.create_pool(CURVE, "DAI", "USDC")
    weth_dai.add_liquidity(state, WETH=ether(2_000),
                           DAI=ether(6_000_000))
    weth_usdc.add_liquidity(state, WETH=ether(2_000),
                            USDC=ether(6_000_000))
    # Heavy depeg: 1.5M DAI vs 8.5M USDC → DAI trades ~2.6 % rich on
    # Curve, comfortably above the 0.64 % round-trip fee floor.
    curve.add_liquidity(state, DAI=ether(1_500_000),
                        USDC=ether(8_500_000))
    oracle = PriceOracle()
    oracle.set_price("DAI", PRICE_SCALE // 3_000)
    oracle.set_price("USDC", PRICE_SCALE // 3_000)
    lending = None
    flash = None
    return state, registry, oracle, weth_dai, weth_usdc, curve


def view_for(market, seed=3):
    state, registry, oracle, *_ = market
    import random
    from repro.agents.fees import FeeModel
    from repro.agents.searcher import MarketView
    from repro.chain.types import gwei
    return MarketView(state=state, registry=registry, oracle=oracle,
                      pending=[], block_number=100,
                      fees=FeeModel(base_fee=0, london_active=False,
                                    prevailing=gwei(50)),
                      rng=random.Random(seed))


class TestTriangleSearch:
    def test_candidates_enumerated(self, triangle_market):
        searcher = ArbitrageSearcher("tri", ChannelPolicy(),
                                     min_profit_wei=ether(0.01))
        routes = searcher._triangle_candidates(view_for(triangle_market))
        assert len(routes) == 2  # both orientations
        assert all(len(route) == 3 for route in routes)

    def test_triangle_opportunity_found_and_profitable(self,
                                                       triangle_market):
        state, registry, *_ = triangle_market
        searcher = ArbitrageSearcher("tri", ChannelPolicy(),
                                     min_profit_wei=ether(0.01))
        state.credit_eth(searcher.address, ether(1_000))
        state.mint_token("WETH", searcher.address, ether(1_000))
        submissions = searcher.scan(view_for(triangle_market))
        assert len(submissions) == 1
        tx = submissions[0].txs[0]
        assert len(tx.intent.route) == 3
        builder = BlockBuilder(state, number=1, timestamp=13,
                               coinbase=MINER, base_fee=0,
                               contracts=registry.contracts)
        receipt = builder.apply_transaction(tx)
        builder.finalize()
        assert receipt.status
        assert state.token_balance("WETH", searcher.address) > \
            ether(1_000)

    def test_triangle_detected_as_three_venue_arbitrage(self,
                                                        triangle_market):
        """The Qin heuristic reports the full three-venue cycle."""
        state, registry, oracle, *_ = triangle_market
        searcher = ArbitrageSearcher("tri", ChannelPolicy(),
                                     min_profit_wei=ether(0.01))
        state.credit_eth(searcher.address, ether(1_000))
        state.mint_token("WETH", searcher.address, ether(1_000))
        tx = searcher.scan(view_for(triangle_market))[0].txs[0]
        from repro.chain.node import ArchiveNode, Blockchain
        from repro.core.heuristics.arbitrage import detect_arbitrages
        from repro.core.profit import PriceService
        chain = Blockchain()
        builder = BlockBuilder(state, number=1, timestamp=13,
                               coinbase=MINER, base_fee=0,
                               contracts=registry.contracts)
        builder.apply_transaction(tx)
        chain.append(builder.finalize())
        records = detect_arbitrages(ArchiveNode(chain),
                                    PriceService(oracle))
        assert len(records) == 1
        record = records[0]
        assert len(record.venues) == 3
        assert "Curve" in record.venues
        assert record.token_cycle[0] == record.token_cycle[-1] == "WETH"
        assert record.profit_wei > 0

    def test_balanced_connector_no_triangle(self):
        state = WorldState()
        registry = ExchangeRegistry()
        weth_dai = registry.create_pool(UNISWAP_V2, "WETH", "DAI")
        weth_usdc = registry.create_pool(SUSHISWAP, "WETH", "USDC")
        curve = registry.create_pool(CURVE, "DAI", "USDC")
        weth_dai.add_liquidity(state, WETH=ether(2_000),
                               DAI=ether(6_000_000))
        weth_usdc.add_liquidity(state, WETH=ether(2_000),
                                USDC=ether(6_000_000))
        curve.add_liquidity(state, DAI=ether(5_000_000),
                            USDC=ether(5_000_000))
        oracle = PriceOracle()
        oracle.set_price("DAI", PRICE_SCALE // 3_000)
        oracle.set_price("USDC", PRICE_SCALE // 3_000)
        market = (state, registry, oracle, weth_dai, weth_usdc, curve)
        searcher = ArbitrageSearcher("tri", ChannelPolicy(),
                                     min_profit_wei=ether(0.01))
        state.mint_token("WETH", searcher.address, ether(1_000))
        assert searcher.scan(view_for(market)) == []
