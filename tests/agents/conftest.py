"""Shared fixtures: a small market world for searcher-level tests."""

import random

import pytest

from repro.agents.fees import FeeModel
from repro.agents.searcher import MarketView
from repro.chain.state import WorldState
from repro.chain.transaction import Transaction
from repro.chain.types import address_from_label, ether, gwei
from repro.dex.registry import SUSHISWAP, UNISWAP_V2, ExchangeRegistry
from repro.dex.router import SwapIntent
from repro.lending.flashloan import FlashLoanProvider
from repro.lending.oracle import PRICE_SCALE, PriceOracle
from repro.lending.pool import LendingPool

VICTIM = address_from_label("victim-account")


@pytest.fixture
def market():
    """State + registry with a cross-venue gap + lending + oracle."""
    state = WorldState()
    registry = ExchangeRegistry()
    uni = registry.create_pool(UNISWAP_V2, "WETH", "DAI")
    sushi = registry.create_pool(SUSHISWAP, "WETH", "DAI")
    uni.add_liquidity(state, WETH=ether(1_000), DAI=ether(3_000_000))
    sushi.add_liquidity(state, WETH=ether(1_000), DAI=ether(3_090_000))
    oracle = PriceOracle()
    oracle.set_price("DAI", PRICE_SCALE // 3_000)
    oracle.set_price("LINK", PRICE_SCALE // 150)
    oracle.set_price("WBTC", PRICE_SCALE * 14)
    oracle.set_price("UNI", PRICE_SCALE // 180)
    lending = LendingPool("AaveV2", oracle)
    lending.provision(state, "DAI", ether(10_000_000))
    flash = FlashLoanProvider("Aave")
    flash.provision(state, "WETH", ether(100_000))
    flash.provision(state, "DAI", ether(100_000_000))
    return state, registry, oracle, lending, flash, uni, sushi


def fund(state, address, eth=1_000.0):
    state.credit_eth(address, ether(eth))
    state.mint_token("WETH", address, ether(eth))
    state.mint_token("DAI", address, ether(eth * 3_000))


def victim_swap_tx(state, pool, amount_eth=20.0, slippage_bps=300,
                   gas_price=gwei(60)):
    """A pending retail swap with sandwich room."""
    state.mint_token("WETH", VICTIM, ether(amount_eth))
    state.credit_eth(VICTIM, ether(10))
    quote = pool.quote_out(state, "WETH", ether(amount_eth))
    min_out = quote * (10_000 - slippage_bps) // 10_000
    return Transaction(
        sender=VICTIM, nonce=state.nonce(VICTIM), to=pool.address,
        gas_limit=150_000, gas_price=gas_price,
        intent=SwapIntent(pool.address, "WETH", ether(amount_eth),
                          min_amount_out=min_out))


def make_view(market, pending=(), block_number=100, base_fee=0,
              london=False, seed=3):
    state, registry, oracle, lending, flash, *_ = market
    fees = FeeModel(base_fee=base_fee, london_active=london,
                    prevailing=gwei(50))
    return MarketView(state=state, registry=registry, oracle=oracle,
                      pending=list(pending), block_number=block_number,
                      fees=fees, rng=random.Random(seed),
                      lending_pools=[lending], flash_provider=flash,
                      competition={"sandwich": 3, "arbitrage": 3,
                                   "liquidation": 2})
