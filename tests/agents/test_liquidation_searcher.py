"""Tests for the liquidation searcher: passive scans and oracle backruns."""

import pytest

from repro.agents.searcher import ChannelPolicy, LiquidationSearcher
from repro.chain.block import BlockBuilder
from repro.chain.execution import ExecutionContext
from repro.chain.transaction import Transaction
from repro.chain.types import address_from_label, ether, gwei
from repro.lending.flashloan import FlashLoanIntent
from repro.lending.oracle import PRICE_SCALE, OracleUpdateIntent
from repro.lending.pool import LiquidationIntent

from tests.agents.conftest import fund, make_view

BORROWER = address_from_label("leveraged-borrower")
MINER = address_from_label("m")


def make_searcher(policy=None, **kw):
    kw.setdefault("min_profit_wei", ether(0.01))
    return LiquidationSearcher("test-liq", policy or ChannelPolicy(),
                               **kw)


def open_loan(market, health_price=3_000):
    """Open a 10-WETH / 20k-DAI loan on the fixture lending pool."""
    state, registry, oracle, lending, *_ = market
    state.mint_token("WETH", BORROWER, ether(10))
    tx = Transaction(sender=BORROWER, nonce=state.nonce(BORROWER),
                     to=lending.address)
    ctx = ExecutionContext(state, tx, block_number=1, coinbase=MINER,
                           contracts={lending.address: lending})
    return lending.open_loan(ctx, "WETH", ether(10), "DAI",
                             ether(20_000))


class TestPassive:
    def test_liquidates_unhealthy_loan(self, market):
        state, registry, oracle, lending, *_ = market
        loan = open_loan(market)
        oracle.set_price("DAI", PRICE_SCALE // 2_000)  # WETH crashed
        searcher = make_searcher()
        fund(state, searcher.address, eth=10_000)
        submissions = searcher.scan(make_view(market))
        assert len(submissions) == 1
        truth = submissions[0].ground_truth
        assert truth.strategy == "liquidation"
        assert truth.expected_profit_wei > 0
        intent = submissions[0].txs[0].intent
        assert isinstance(intent, LiquidationIntent)
        assert intent.loan_id == loan.loan_id

    def test_healthy_book_yields_nothing(self, market):
        state, *_ = market
        open_loan(market)
        searcher = make_searcher()
        fund(state, searcher.address, eth=10_000)
        assert searcher.scan(make_view(market)) == []

    def test_liquidation_executes(self, market):
        state, registry, oracle, lending, *_ = market
        open_loan(market)
        oracle.set_price("DAI", PRICE_SCALE // 2_000)
        searcher = make_searcher()
        fund(state, searcher.address, eth=10_000)
        tx = searcher.scan(make_view(market))[0].txs[0]
        builder = BlockBuilder(state, number=101, timestamp=13,
                               coinbase=MINER, base_fee=0,
                               contracts={lending.address: lending,
                                          **registry.contracts})
        receipt = builder.apply_transaction(tx)
        builder.finalize()
        assert receipt.status
        assert state.token_balance("WETH", searcher.address) > 0


class TestOracleBackrun:
    def pending_crash_update(self, market):
        _, _, oracle, *_ = market
        keeper = address_from_label("keeper")
        return Transaction(
            sender=keeper, nonce=0, to=oracle.address,
            gas_limit=80_000, gas_price=gwei(70),
            intent=OracleUpdateIntent(oracle.address, "DAI",
                                      PRICE_SCALE // 2_000))

    def test_backruns_unlocking_update(self, market):
        state, *_ = market
        open_loan(market)
        searcher = make_searcher()
        fund(state, searcher.address, eth=10_000)
        update = self.pending_crash_update(market)
        view = make_view(market, pending=[update])
        submission = searcher.scan(view)[0]
        truth = submission.ground_truth
        assert truth.victim_hash == update.hash
        # Public backrun: bid just below the oracle update's gas price.
        tx = submission.txs[0]
        assert tx.gas_price < update.gas_price

    def test_flashbots_backrun_bundles_update_first(self, market):
        state, *_ = market
        open_loan(market)
        searcher = make_searcher(ChannelPolicy(flashbots_from=1))
        fund(state, searcher.address, eth=10_000)
        update = self.pending_crash_update(market)
        view = make_view(market, pending=[update])
        bundle = searcher.scan(view)[0].bundle
        assert len(bundle) == 2
        assert bundle.transactions[0].hash == update.hash

    def test_irrelevant_update_ignored(self, market):
        state, _, oracle, *_ = market
        open_loan(market)
        searcher = make_searcher()
        fund(state, searcher.address, eth=10_000)
        benign = Transaction(
            sender=address_from_label("keeper"), nonce=0,
            to=oracle.address, gas_limit=80_000, gas_price=gwei(70),
            intent=OracleUpdateIntent(oracle.address, "LINK",
                                      PRICE_SCALE // 149))
        view = make_view(market, pending=[benign])
        assert searcher.scan(view) == []


class TestFlashLoanLiquidation:
    def test_thin_capital_wraps_flash_loan(self, market):
        state, registry, oracle, lending, *_ = market
        open_loan(market)
        oracle.set_price("DAI", PRICE_SCALE // 2_000)
        searcher = make_searcher(uses_flash_loans=True)
        fund(state, searcher.address, eth=0.2)
        submission = searcher.scan(make_view(market))[0]
        assert submission.ground_truth.uses_flash_loan
        intent = submission.txs[0].intent
        assert isinstance(intent, FlashLoanIntent)

    def test_flash_liquidation_executes(self, market):
        state, registry, oracle, lending, flash, *_ = market
        open_loan(market)
        oracle.set_price("DAI", PRICE_SCALE // 2_000)
        searcher = make_searcher(uses_flash_loans=True)
        fund(state, searcher.address, eth=0.2)
        tx = searcher.scan(make_view(market))[0].txs[0]
        contracts = {lending.address: lending, flash.address: flash,
                     **registry.contracts}
        builder = BlockBuilder(state, number=101, timestamp=13,
                               coinbase=MINER, base_fee=0,
                               contracts=contracts)
        receipt = builder.apply_transaction(tx)
        builder.finalize()
        assert receipt.status
        names = [type(log).__name__ for log in receipt.logs]
        assert "FlashLoanEvent" in names
        assert "LiquidationEvent" in names
