"""Tests for the sandwich searcher's scanning and crafting."""

import pytest

from repro.agents.searcher import ChannelPolicy, SandwichSearcher
from repro.chain.block import BlockBuilder
from repro.chain.types import address_from_label, ether
from repro.dex.router import SwapIntent

from tests.agents.conftest import fund, make_view, victim_swap_tx


def make_searcher(policy=None, **kw):
    kw.setdefault("visibility", 1.0)
    kw.setdefault("min_profit_wei", ether(0.01))
    return SandwichSearcher("test-sand", policy or ChannelPolicy(), **kw)


class TestScan:
    def test_finds_sandwichable_victim(self, market):
        state, registry, *_ , uni, _ = market
        searcher = make_searcher()
        fund(state, searcher.address)
        victim = victim_swap_tx(state, uni)
        view = make_view(market, pending=[victim])
        submissions = searcher.scan(view)
        assert len(submissions) == 1
        truth = submissions[0].ground_truth
        assert truth.strategy == "sandwich"
        assert truth.victim_hash == victim.hash
        assert truth.expected_profit_wei > 0

    def test_ignores_tight_slippage(self, market):
        state, registry, *_, uni, _ = market
        searcher = make_searcher()
        fund(state, searcher.address)
        victim = victim_swap_tx(state, uni, slippage_bps=1)
        view = make_view(market, pending=[victim])
        assert searcher.scan(view) == []

    def test_ignores_small_victims(self, market):
        state, registry, *_, uni, _ = market
        searcher = make_searcher(min_profit_wei=ether(10))
        fund(state, searcher.address)
        victim = victim_swap_tx(state, uni, amount_eth=0.5)
        view = make_view(market, pending=[victim])
        assert searcher.scan(view) == []

    def test_empty_mempool(self, market):
        state, *_ = market
        searcher = make_searcher()
        fund(state, searcher.address)
        assert searcher.scan(make_view(market)) == []

    def test_never_targets_own_tx(self, market):
        state, registry, *_, uni, _ = market
        searcher = make_searcher()
        fund(state, searcher.address)
        own = victim_swap_tx(state, uni)
        own.sender = searcher.address
        view = make_view(market, pending=[own])
        assert searcher.scan(view) == []

    def test_respects_max_targets(self, market):
        state, registry, *_, uni, sushi = market
        searcher = make_searcher(max_targets_per_block=1)
        fund(state, searcher.address, eth=100_000)
        v1 = victim_swap_tx(state, uni)
        v2 = victim_swap_tx(state, sushi)
        v2.nonce += 1
        view = make_view(market, pending=[v1, v2])
        assert len(searcher.scan(view)) == 1


class TestChannels:
    def test_flashbots_bundle_weaves_victim(self, market):
        state, registry, *_, uni, _ = market
        searcher = make_searcher(ChannelPolicy(flashbots_from=1))
        fund(state, searcher.address)
        victim = victim_swap_tx(state, uni)
        view = make_view(market, pending=[victim])
        submission = searcher.scan(view)[0]
        assert submission.channel == "flashbots"
        bundle = submission.bundle
        assert len(bundle) == 3
        assert bundle.transactions[1].hash == victim.hash
        # Tip on the back leg (paid only if the attack executes).
        assert bundle.transactions[2].intent.coinbase_tip > 0

    def test_public_txs_straddle_victim_price(self, market):
        state, registry, *_, uni, _ = market
        searcher = make_searcher()  # default public policy
        fund(state, searcher.address)
        victim = victim_swap_tx(state, uni)
        view = make_view(market, pending=[victim])
        submission = searcher.scan(view)[0]
        assert submission.channel == "public"
        front, back = submission.txs
        assert front.gas_price > victim.gas_price
        assert back.gas_price < victim.gas_price

    def test_private_sequence(self, market):
        state, registry, *_, uni, _ = market
        policy = ChannelPolicy(private_pool="eden", private_from=1)
        searcher = make_searcher(policy)
        fund(state, searcher.address)
        victim = victim_swap_tx(state, uni)
        view = make_view(market, pending=[victim])
        submission = searcher.scan(view)[0]
        assert submission.channel == "private"
        assert submission.private_pool == "eden"
        assert len(submission.private_sequence) == 3


class TestExecution:
    def test_flashbots_sandwich_profitable_end_to_end(self, market):
        """The crafted bundle, applied to a real block, nets a profit."""
        state, registry, *_, uni, _ = market
        searcher = make_searcher(ChannelPolicy(flashbots_from=1))
        fund(state, searcher.address)
        victim = victim_swap_tx(state, uni)
        view = make_view(market, pending=[victim])
        bundle = searcher.scan(view)[0].bundle
        miner = address_from_label("blocksmith")
        weth_before = state.token_balance("WETH", searcher.address)
        eth_before = state.eth_balance(searcher.address)
        builder = BlockBuilder(state, number=101, timestamp=13,
                               coinbase=miner, base_fee=0,
                               contracts=registry.contracts)
        receipts = builder.apply_atomic_sequence(bundle.transactions)
        builder.finalize()
        assert receipts is not None
        # Attacker spent WETH on the frontrun and recovered more on the
        # backrun; net worth in WETH terms rose even after gas + tip.
        weth_after = state.token_balance("WETH", searcher.address)
        eth_after = state.eth_balance(searcher.address)
        gross = weth_after - weth_before
        costs = eth_before - eth_after
        assert gross > 0
        assert gross > costs  # tip fraction < 1 of gross

    def test_faulty_searcher_omits_guards(self, market):
        state, registry, *_, uni, _ = market
        searcher = make_searcher(ChannelPolicy(flashbots_from=1),
                                 faulty_rate=1.0)
        fund(state, searcher.address)
        victim = victim_swap_tx(state, uni)
        view = make_view(market, pending=[victim])
        submission = searcher.scan(view)[0]
        assert submission.ground_truth.faulty
        front = submission.bundle.transactions[0]
        assert front.intent.min_amount_out == 0
        # The faulty tip exceeds the projected profit → negative net.
        back = submission.bundle.transactions[2]
        assert back.intent.coinbase_tip > \
            submission.ground_truth.expected_profit_wei
