"""Tests for the arbitrage searcher: passive gaps, copying, flash loans."""

import pytest

from repro.agents.searcher import ArbitrageSearcher, ChannelPolicy
from repro.chain.block import BlockBuilder
from repro.chain.types import address_from_label, ether, gwei
from repro.chain.transaction import Transaction
from repro.dex.router import ArbitrageIntent
from repro.lending.flashloan import FlashLoanIntent

from tests.agents.conftest import VICTIM, fund, make_view


def make_searcher(policy=None, **kw):
    kw.setdefault("min_profit_wei", ether(0.01))
    return ArbitrageSearcher("test-arb", policy or ChannelPolicy(), **kw)


class TestPassive:
    def test_finds_cross_venue_gap(self, market):
        state, *_ = market
        searcher = make_searcher()
        fund(state, searcher.address)
        submissions = searcher.scan(make_view(market))
        assert len(submissions) == 1
        truth = submissions[0].ground_truth
        assert truth.strategy == "arbitrage"
        assert truth.victim_hash is None
        assert truth.expected_profit_wei > 0

    def test_no_gap_no_submission(self, market):
        state, registry, *_, uni, sushi = market
        # Drain sushi's skew: equalize prices by matching reserve ratios.
        extra = (uni.reserve_of(state, "DAI") * 1_000
                 // uni.reserve_of(state, "WETH") // 1_000)
        searcher = make_searcher(min_profit_wei=ether(100))
        fund(state, searcher.address)
        assert searcher.scan(make_view(market)) == []

    def test_sized_arb_executes_profitably(self, market):
        state, registry, *_ = market
        searcher = make_searcher()
        fund(state, searcher.address)
        submission = searcher.scan(make_view(market))[0]
        tx = submission.txs[0]
        before = state.token_balance("WETH", searcher.address)
        builder = BlockBuilder(state, number=101, timestamp=13,
                               coinbase=address_from_label("m"),
                               base_fee=0, contracts=registry.contracts)
        receipt = builder.apply_transaction(tx)
        builder.finalize()
        assert receipt.status
        assert state.token_balance("WETH", searcher.address) > before


class TestProactiveCopy:
    def make_victim_arb(self, market):
        state, registry, *_, uni, sushi = market
        state.mint_token("WETH", VICTIM, ether(2))
        state.credit_eth(VICTIM, ether(5))
        return Transaction(
            sender=VICTIM, nonce=state.nonce(VICTIM), to=sushi.address,
            gas_limit=400_000, gas_price=gwei(50),
            intent=ArbitrageIntent(route=[sushi.address, uni.address],
                                   token_in="WETH",
                                   amount_in=ether(2)))

    def test_copies_and_frontruns_pending_arb(self, market):
        state, *_ = market
        searcher = make_searcher()
        fund(state, searcher.address)
        victim = self.make_victim_arb(market)
        view = make_view(market, pending=[victim])
        submission = searcher.scan(view)[0]
        truth = submission.ground_truth
        assert truth.victim_hash == victim.hash
        copy_tx = submission.txs[0]
        assert copy_tx.sender == searcher.address
        assert copy_tx.gas_price > victim.gas_price  # Definition 2
        assert copy_tx.intent.route == list(victim.intent.route)

    def test_never_copies_professionals(self, market):
        state, *_ = market
        searcher = make_searcher()
        fund(state, searcher.address)
        victim = self.make_victim_arb(market)
        victim.meta["mev"] = "arbitrage"  # another searcher's tx
        view = make_view(market, pending=[victim])
        submissions = searcher.scan(view)
        # Falls back to the passive gap (no victim attached).
        assert all(s.ground_truth.victim_hash is None
                   for s in submissions)


class TestFlashLoans:
    def test_thin_capital_triggers_flash_loan(self, market):
        state, *_ = market
        searcher = make_searcher(uses_flash_loans=True)
        fund(state, searcher.address, eth=0.5)  # under-capitalized
        submission = searcher.scan(make_view(market))[0]
        assert submission.ground_truth.uses_flash_loan
        assert isinstance(submission.txs[0].intent, FlashLoanIntent)

    def test_rich_searcher_skips_flash_loan(self, market):
        state, *_ = market
        searcher = make_searcher(uses_flash_loans=True)
        fund(state, searcher.address, eth=100_000)
        submission = searcher.scan(make_view(market))[0]
        assert not submission.ground_truth.uses_flash_loan
        assert isinstance(submission.txs[0].intent, ArbitrageIntent)

    def test_flash_loan_arb_executes(self, market):
        state, registry, _, _, flash, *_ = market
        searcher = make_searcher(uses_flash_loans=True)
        fund(state, searcher.address, eth=0.5)
        submission = searcher.scan(make_view(market))[0]
        contracts = {flash.address: flash, **registry.contracts}
        builder = BlockBuilder(state, number=101, timestamp=13,
                               coinbase=address_from_label("m"),
                               base_fee=0, contracts=contracts)
        receipt = builder.apply_transaction(submission.txs[0])
        builder.finalize()
        assert receipt.status
        assert any(type(log).__name__ == "FlashLoanEvent"
                   for log in receipt.logs)
