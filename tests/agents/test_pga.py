"""Tests for the open-PGA vs sealed-bid auction mechanisms."""

import random

import pytest

from repro.agents.pga import (
    MechanismComparison,
    PgaBidder,
    compare_mechanisms,
    run_open_pga,
    run_sealed_bid,
)
from repro.chain.types import ether


def bidder(name, eth, margin=0.05):
    return PgaBidder(name=name, valuation_wei=ether(eth), margin=margin)


class TestBidder:
    def test_max_fee_respects_margin(self):
        b = bidder("a", 1.0, margin=0.10)
        assert b.max_fee_wei == ether(0.9)

    def test_validation(self):
        with pytest.raises(ValueError):
            PgaBidder("a", 0)
        with pytest.raises(ValueError):
            PgaBidder("a", 1, margin=1.0)


class TestOpenPga:
    def test_strongest_bidder_wins(self):
        outcome = run_open_pga([bidder("weak", 0.2),
                                bidder("strong", 1.0),
                                bidder("mid", 0.5)])
        assert outcome.winner == "strong"
        assert outcome.winner_profit_wei > 0

    def test_price_lands_near_second_valuation(self):
        outcome = run_open_pga([bidder("strong", 1.0),
                                bidder("second", 0.5)])
        # English-auction result: pay ≈ runner-up's ceiling, keep the gap.
        assert ether(0.4) < outcome.fee_paid_wei < ether(0.65)
        assert outcome.winner_profit_wei > ether(0.35)

    def test_single_bidder_pays_reserve(self):
        outcome = run_open_pga([bidder("alone", 1.0)],
                               start_fee_wei=ether(0.01))
        assert outcome.winner == "alone"
        assert outcome.fee_paid_wei == ether(0.01)

    def test_escalation_recorded(self):
        outcome = run_open_pga([bidder("a", 1.0), bidder("b", 0.9)])
        assert outcome.rounds == len(outcome.bid_history)
        fees = [fee for _, fee in outcome.bid_history]
        assert fees == sorted(fees)  # strictly ascending bids

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            run_open_pga([])

    def test_winner_never_pays_above_ceiling(self):
        rng = random.Random(5)
        for _ in range(50):
            bidders = [bidder(f"b{i}", rng.uniform(0.05, 2.0))
                       for i in range(4)]
            outcome = run_open_pga(bidders)
            winner = next(b for b in bidders
                          if b.name == outcome.winner)
            assert outcome.fee_paid_wei <= winner.max_fee_wei


class TestSealedBid:
    def test_highest_tip_wins(self):
        rng = random.Random(7)
        outcome = run_sealed_bid([bidder("small", 0.05),
                                  bidder("big", 2.0)], rng)
        assert outcome.winner == "big"
        assert outcome.rounds == 1

    def test_everyone_bids_blind(self):
        rng = random.Random(7)
        outcome = run_sealed_bid([bidder(f"b{i}", 0.5)
                                  for i in range(4)], rng)
        assert len(outcome.bid_history) == 4

    def test_winner_pays_own_bid_near_valuation(self):
        rng = random.Random(7)
        shares = []
        for _ in range(200):
            outcome = run_sealed_bid([bidder("a", 0.5),
                                      bidder("b", 0.45)], rng)
            shares.append(outcome.miner_share)
        assert sum(shares) / len(shares) > 0.7


class TestComparison:
    def test_sealed_bids_transfer_more_to_miners(self):
        rng = random.Random(3)
        result = compare_mechanisms(rng, opportunities=150)
        assert isinstance(result, MechanismComparison)
        # The paper's §8.2 claim, quantified: sealed bids hand the miner
        # a much larger share of the opportunity than open PGAs did.
        assert result.sealed_miner_share > \
            result.pga_miner_share + 0.15
        assert result.sealed_searcher_profit_wei < \
            result.pga_searcher_profit_wei

    def test_validation(self):
        with pytest.raises(ValueError):
            compare_mechanisms(random.Random(1), opportunities=0)
