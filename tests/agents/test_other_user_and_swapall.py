"""Tests for the OtherBundleUser population and SwapAllIntent."""

import pytest

from repro.agents.searcher import ChannelPolicy, OtherBundleUser
from repro.chain.block import BlockBuilder
from repro.chain.state import InsufficientBalance
from repro.chain.transaction import Transaction
from repro.chain.types import address_from_label, ether, gwei
from repro.dex.router import SwapAllIntent

from tests.agents.conftest import fund, make_view

MINER = address_from_label("other-miner")


def make_user(policy=None, activity=1.0, **kw):
    return OtherBundleUser("test-other",
                           policy or ChannelPolicy(flashbots_from=1),
                           activity=activity, **kw)


class TestOtherBundleUser:
    def test_submits_single_tx_protected_swap(self, market):
        state, *_ = market
        user = make_user()
        fund(state, user.address)
        submissions = user.scan(make_view(market))
        assert len(submissions) == 1
        bundle = submissions[0].bundle
        assert len(bundle) == 1
        intent = bundle.transactions[0].intent
        assert intent.min_amount_out > 0  # MEV-protected
        assert intent.coinbase_tip > 0    # pays the miner
        assert submissions[0].ground_truth.strategy == "other"

    def test_inactive_off_flashbots(self, market):
        state, *_ = market
        user = make_user(policy=ChannelPolicy())  # public only
        fund(state, user.address)
        assert user.scan(make_view(market)) == []

    def test_activity_throttles(self, market):
        state, *_ = market
        user = make_user(activity=0.0001)
        fund(state, user.address)
        hits = sum(bool(user.scan(make_view(market, seed=i)))
                   for i in range(50))
        assert hits <= 2

    def test_bundle_rush_raises_activity(self, market):
        state, *_ = market
        user = make_user(activity=0.2)
        fund(state, user.address)
        calm = rush = 0
        for i in range(200):
            view = make_view(market, seed=i)
            calm += bool(user.scan(view))
            view_rush = make_view(market, seed=i)
            view_rush.bundle_rush = True
            rush += bool(user.scan(view_rush))
        assert rush > calm

    def test_bundle_executes(self, market):
        state, registry, *_ = market
        user = make_user()
        fund(state, user.address)
        bundle = user.scan(make_view(market))[0].bundle
        builder = BlockBuilder(state, number=101, timestamp=13,
                               coinbase=MINER, base_fee=0,
                               contracts=registry.contracts)
        receipts = builder.apply_atomic_sequence(bundle.transactions)
        builder.finalize()
        assert receipts is not None
        assert receipts[0].coinbase_transfer > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            make_user(activity=1.5)


class TestSwapAllIntent:
    def test_swaps_entire_balance(self, market):
        state, registry, *_, uni, _ = market
        trader = address_from_label("swapall-trader")
        state.credit_eth(trader, ether(1))
        state.mint_token("WETH", trader, ether(7))
        tx = Transaction(sender=trader, nonce=0, to=uni.address,
                         gas_price=gwei(10), gas_limit=200_000,
                         intent=SwapAllIntent(uni.address, "WETH"))
        builder = BlockBuilder(state, number=101, timestamp=13,
                               coinbase=MINER, base_fee=0,
                               contracts=registry.contracts)
        receipt = builder.apply_transaction(tx)
        builder.finalize()
        assert receipt.status
        assert state.token_balance("WETH", trader) == 0
        assert state.token_balance("DAI", trader) > 0

    def test_empty_balance_reverts(self, market):
        state, registry, *_, uni, _ = market
        trader = address_from_label("swapall-empty")
        state.credit_eth(trader, ether(1))
        tx = Transaction(sender=trader, nonce=0, to=uni.address,
                         gas_price=gwei(10), gas_limit=200_000,
                         intent=SwapAllIntent(uni.address, "WETH"))
        builder = BlockBuilder(state, number=101, timestamp=13,
                               coinbase=MINER, base_fee=0,
                               contracts=registry.contracts)
        receipt = builder.apply_transaction(tx)
        builder.finalize()
        assert not receipt.status
        assert receipt.error == "no balance to swap"
