"""Tests for miner profiles, hashpower lottery, payout schedules."""

import random
from collections import Counter

import pytest

from repro.agents.miner import (
    MinerProfile,
    MinerSet,
    PayoutSchedule,
    zipf_hashpowers,
)


def miner(name="m", hashpower=1.0, join=None, leave=None, **kw):
    return MinerProfile(name=name, hashpower=hashpower,
                        flashbots_join_block=join,
                        flashbots_leave_block=leave, **kw)


class TestMinerProfile:
    def test_addresses_derived_and_distinct(self):
        m = miner("f2pool")
        assert m.address != m.mev_account
        assert m.address.startswith("0x")

    def test_invalid_hashpower(self):
        with pytest.raises(ValueError):
            miner(hashpower=0)

    def test_enrollment_window(self):
        m = miner(join=100, leave=200)
        assert not m.in_flashbots(99)
        assert m.in_flashbots(100)
        assert m.in_flashbots(199)
        assert not m.in_flashbots(200)

    def test_never_joined(self):
        assert not miner(join=None).in_flashbots(10**6)

    def test_payout_due(self):
        schedule = PayoutSchedule(interval_blocks=50, recipients=10,
                                  amount_wei=1)
        assert schedule.due_at(100)
        assert not schedule.due_at(101)


class TestMinerSet:
    def test_rejects_empty_and_duplicates(self):
        with pytest.raises(ValueError):
            MinerSet([])
        with pytest.raises(ValueError):
            MinerSet([miner("a"), miner("a")])

    def test_pick_respects_hashpower(self):
        big = miner("big", hashpower=9.0)
        small = miner("small", hashpower=1.0)
        miners = MinerSet([big, small])
        rng = random.Random(42)
        counts = Counter(miners.pick(rng).name for _ in range(5_000))
        share = counts["big"] / 5_000
        assert 0.85 < share < 0.95

    def test_by_address(self):
        a, b = miner("a"), miner("b")
        miners = MinerSet([a, b])
        assert miners.by_address(a.address) is a
        assert miners.by_address("0x" + "00" * 20) is None

    def test_flashbots_membership_over_time(self):
        early = miner("early", join=10)
        late = miner("late", join=100)
        never = miner("never")
        miners = MinerSet([early, late, never])
        assert miners.flashbots_members(5) == []
        assert miners.flashbots_members(50) == [early]
        assert set(m.name for m in miners.flashbots_members(150)) == \
            {"early", "late"}

    def test_hashpower_share(self):
        a = miner("a", hashpower=3.0, join=10)
        b = miner("b", hashpower=1.0)
        miners = MinerSet([a, b])
        assert miners.flashbots_hashpower_share(5) == 0.0
        assert miners.flashbots_hashpower_share(20) == pytest.approx(0.75)


class TestZipf:
    def test_long_tailed(self):
        weights = zipf_hashpowers(55, exponent=1.15)
        assert len(weights) == 55
        assert weights[0] > weights[1] > weights[-1]
        # Top-2 dominate (the >90 % of FB blocks from 2 miners finding)
        assert weights[0] + weights[1] > 0.25 * sum(weights)

    def test_validation(self):
        with pytest.raises(ValueError):
            zipf_hashpowers(0)
        with pytest.raises(ValueError):
            zipf_hashpowers(5, exponent=0)
