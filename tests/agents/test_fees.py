"""Tests for epoch-aware fee-field construction."""

import random

import pytest

from repro.agents.fees import FeeModel
from repro.chain.transaction import EIP1559, LEGACY, Transaction
from repro.chain.types import address_from_label, gwei

A = address_from_label("fee-payer")


def tx_with(fields):
    return Transaction(sender=A, nonce=0, to=A, **fields)


class TestPreLondon:
    def setup_method(self):
        self.fees = FeeModel(base_fee=0, london_active=False,
                             prevailing=gwei(50))

    def test_legacy_fields(self):
        fields = self.fees.fields_for_price(gwei(42))
        assert fields["tx_type"] == LEGACY
        assert fields["gas_price"] == gwei(42)

    def test_user_fields_near_prevailing(self):
        rng = random.Random(1)
        prices = [tx_with(self.fees.user_fields(rng)).gas_price
                  for _ in range(200)]
        assert gwei(30) < sum(prices) / len(prices) < gwei(80)

    def test_bundle_fields_cheap(self):
        fields = self.fees.bundle_fields()
        assert fields["gas_price"] == gwei(1)

    def test_frontrun_exceeds_victim(self):
        rng = random.Random(2)
        fields = self.fees.frontrun_fields(rng, gwei(60), 10**18,
                                           150_000)
        assert fields["gas_price"] > gwei(60)

    def test_backrun_just_below_victim(self):
        fields = self.fees.backrun_fields(gwei(60))
        assert fields["gas_price"] == gwei(60) - 1


class TestPostLondon:
    def setup_method(self):
        self.fees = FeeModel(base_fee=gwei(30), london_active=True,
                             prevailing=gwei(50))

    def test_eip1559_fields(self):
        fields = self.fees.fields_for_price(gwei(42))
        assert fields["tx_type"] == EIP1559
        tx = tx_with(fields)
        assert tx.effective_gas_price(gwei(30)) == gwei(42)

    def test_price_below_base_clamped(self):
        fields = self.fees.fields_for_price(gwei(10))
        tx = tx_with(fields)
        assert tx.is_includable(gwei(30))

    def test_bundle_fields_clear_base_fee(self):
        tx = tx_with(self.fees.bundle_fields())
        assert tx.is_includable(gwei(30))
        assert tx.miner_tip_per_gas(gwei(30)) >= 1

    def test_effective_price_helper(self):
        tx = tx_with(self.fees.fields_for_price(gwei(42)))
        assert self.fees.effective_price(tx) == gwei(42)

    def test_backrun_floor_above_base(self):
        fields = self.fees.backrun_fields(gwei(5))
        tx = tx_with(fields)
        assert tx.is_includable(gwei(30))
