"""Tests for synthetic price processes and the gas-demand model."""

import random
import statistics

import pytest

from repro.chain.types import GWEI
from repro.sim.prices import GasDemandModel, PriceUniverse, \
    TokenPriceProcess


class TestTokenPriceProcess:
    def test_deterministic_given_seed(self):
        a = TokenPriceProcess("DAI", 10**15, seed=3)
        b = TokenPriceProcess("DAI", 10**15, seed=3)
        assert [a.step() for _ in range(10)] == \
            [b.step() for _ in range(10)]

    def test_different_tokens_decorrelated(self):
        a = TokenPriceProcess("DAI", 10**15, seed=3)
        b = TokenPriceProcess("LINK", 10**15, seed=3)
        assert [a.step() for _ in range(5)] != \
            [b.step() for _ in range(5)]

    def test_price_stays_positive(self):
        process = TokenPriceProcess("DAI", 10**6, volatility=0.8,
                                    seed=3)
        for _ in range(300):
            assert process.step() >= 1

    def test_zero_volatility_drift_free(self):
        process = TokenPriceProcess("DAI", 10**15, volatility=0.0,
                                    seed=1)
        assert process.step() == 10**15

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenPriceProcess("DAI", 0)
        with pytest.raises(ValueError):
            TokenPriceProcess("DAI", 1, volatility=-1)


class TestPriceUniverse:
    def test_step_all_advances_everything(self):
        universe = PriceUniverse(seed=2)
        universe.add_token("DAI", 10**15)
        universe.add_token("LINK", 10**16)
        prices = universe.step_all()
        assert set(prices) == {"DAI", "LINK"}
        assert all(p > 0 for p in prices.values())

    def test_duplicate_token_rejected(self):
        universe = PriceUniverse()
        universe.add_token("DAI", 10**15)
        with pytest.raises(ValueError):
            universe.add_token("DAI", 10**15)

    def test_get_missing(self):
        assert PriceUniverse().get("GHOST") is None


class TestGasDemandModel:
    def test_pga_raises_level(self):
        rng = random.Random(4)
        model = GasDemandModel(rng, organic_gwei=40, pga_multiplier=4)
        calm = statistics.fmean(model.level(0.0) for _ in range(500))
        hot = statistics.fmean(model.level(1.0) for _ in range(500))
        assert hot > 2.5 * calm

    def test_level_floor(self):
        model = GasDemandModel(random.Random(4), organic_gwei=0.0001)
        # validation prevents zero, but the floor holds for tiny values
        with pytest.raises(ValueError):
            GasDemandModel(random.Random(4), organic_gwei=0)
        assert model.level(0.0) >= GWEI

    def test_intensity_validation(self):
        model = GasDemandModel(random.Random(4))
        with pytest.raises(ValueError):
            model.level(1.5)

    def test_user_price_near_level(self):
        model = GasDemandModel(random.Random(4), noise_sigma=0.0)
        prices = [model.user_gas_price(0.0) for _ in range(300)]
        mean = statistics.fmean(prices)
        assert 30 * GWEI < mean < 55 * GWEI
