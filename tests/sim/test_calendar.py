"""Tests for the study calendar block↔month arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.calendar import STUDY_MONTHS, StudyCalendar


@pytest.fixture
def calendar():
    return StudyCalendar(blocks_per_month=100)


class TestStructure:
    def test_study_window_is_23_months(self):
        assert len(STUDY_MONTHS) == 23
        assert STUDY_MONTHS[0] == "2020-05"
        assert STUDY_MONTHS[-1] == "2022-03"

    def test_total_blocks(self, calendar):
        assert calendar.total_blocks == 2_300

    def test_validation(self):
        with pytest.raises(ValueError):
            StudyCalendar(blocks_per_month=0)
        with pytest.raises(ValueError):
            StudyCalendar(blocks_per_month=10, months=())


class TestMapping:
    def test_first_and_last_block_of_month(self, calendar):
        assert calendar.month_of(1) == "2020-05"
        assert calendar.month_of(100) == "2020-05"
        assert calendar.month_of(101) == "2020-06"
        assert calendar.month_of(2_300) == "2022-03"

    def test_out_of_window_rejected(self, calendar):
        with pytest.raises(ValueError):
            calendar.month_of(0)
        with pytest.raises(ValueError):
            calendar.month_of(2_301)

    def test_month_bounds_round_trip(self, calendar):
        first, last = calendar.month_bounds("2021-02")
        assert calendar.month_of(first) == "2021-02"
        assert calendar.month_of(last) == "2021-02"
        assert last - first + 1 == 100

    def test_unknown_month_rejected(self, calendar):
        with pytest.raises(ValueError):
            calendar.month_bounds("2019-01")

    def test_blocks_in(self, calendar):
        blocks = calendar.blocks_in("2020-05")
        assert list(blocks)[:3] == [1, 2, 3]
        assert len(list(blocks)) == 100

    @given(st.integers(1, 2_300))
    def test_month_of_consistent_with_bounds(self, block):
        calendar = StudyCalendar(blocks_per_month=100)
        month = calendar.month_of(block)
        first, last = calendar.month_bounds(month)
        assert first <= block <= last


class TestDays:
    def test_day_indexes_increase(self, calendar):
        days = [calendar.day_of(b) for b in range(1, 2_301, 50)]
        assert days == sorted(days)

    def test_days_per_month(self, calendar):
        first_day = calendar.day_of(1)
        next_month_day = calendar.day_of(101)
        assert next_month_day - first_day == 30

    def test_months_up_to(self, calendar):
        months = calendar.months_up_to(150)
        assert months == ["2020-05", "2020-06"]
