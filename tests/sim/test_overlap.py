"""Overlapped spill I/O and the flat-GC long-run regime.

Two layers under test.  The unit layer: :class:`BackgroundWriter`
preserves submission order, applies backpressure, and re-raises a
worker failure at the next call site instead of swallowing it;
:class:`FlatGC` restores the collector exactly as it found it.  The
system layer pins the tentpole claim — a spilled world run with
``overlap_io=True`` produces *byte-identical* segment files, an
identical manifest, identical seal fingerprints, and an identical
block/tx hash sequence to a fully synchronous run (``overlap_io`` is a
scheduling choice, never a semantic one).
"""

import gc
import os
import threading
import time

import pytest

from repro.chain.segments import SegmentStore
from repro.chain.transaction import reset_tx_counter
from repro.sim import ScenarioConfig, build_paper_scenario
from repro.sim.overlap import BackgroundWriter, FlatGC


class TestBackgroundWriter:
    def test_jobs_run_in_submission_order(self):
        order = []
        with BackgroundWriter() as writer:
            for index in range(8):
                writer.submit(f"job {index}",
                              lambda index=index: order.append(index))
            writer.flush()
        assert order == list(range(8))

    def test_backpressure_bounds_the_queue(self):
        release = threading.Event()
        started = threading.Event()
        with BackgroundWriter(max_pending=1) as writer:
            writer.submit("block", lambda: (started.set(),
                                            release.wait(5)))
            started.wait(5)
            # One more fits the queue; the next submit must block until
            # the worker drains, so run it from a helper thread.
            writer.submit("queued", lambda: None)
            done = threading.Event()
            helper = threading.Thread(
                target=lambda: (writer.submit("waits", lambda: None),
                                done.set()))
            helper.start()
            assert not done.wait(0.1)  # genuinely blocked
            release.set()
            assert done.wait(5)
            helper.join()

    def test_worker_error_reraises_on_flush(self):
        def boom():
            raise OSError("disk gone")

        with BackgroundWriter() as writer:
            writer.submit("failing write", boom)
            with pytest.raises(RuntimeError, match="failing write"):
                writer.flush()

    def test_worker_error_reraises_on_next_submit(self):
        def boom():
            raise OSError("disk gone")

        writer = BackgroundWriter()
        try:
            writer.submit("failing write", boom)
            time.sleep(0.05)
            with pytest.raises(RuntimeError, match="failing write"):
                for _ in range(100):
                    writer.submit("later", lambda: None)
                    time.sleep(0.01)
        finally:
            try:
                writer.close()
            except RuntimeError:
                pass

    def test_close_is_idempotent(self):
        writer = BackgroundWriter()
        writer.submit("work", lambda: None)
        writer.close()
        writer.close()


class TestFlatGC:
    def test_install_and_uninstall_restore_thresholds(self):
        before = gc.get_threshold()
        flat = FlatGC(gen0_threshold=1_000_000)
        flat.install()
        assert gc.get_threshold()[0] == 1_000_000
        assert flat.installed
        flat.uninstall()
        assert gc.get_threshold() == before
        assert not flat.installed

    def test_epoch_boundary_without_install_is_a_noop(self):
        before = gc.get_threshold()
        FlatGC().epoch_boundary()
        assert gc.get_threshold() == before

    def test_context_manager(self):
        before = gc.get_threshold()
        with FlatGC(gen0_threshold=500_000):
            assert gc.get_threshold()[0] == 500_000
        assert gc.get_threshold() == before


def spilled_run(root, overlap_io):
    """One spilled world run; returns (result, seals, store)."""
    reset_tx_counter()
    config = ScenarioConfig(blocks_per_month=6, seed=3, epoch_blocks=4)
    world = build_paper_scenario(config)
    store = SegmentStore.create(str(root))
    world.attach_segment_store(store, max_resident_epochs=2,
                               overlap_io=overlap_io, spool_seals=True)
    seals = {}
    result = world.run(blocks=20, collect_seals=seals)
    return result, seals, store


class TestOverlapIdentity:
    """overlap_io must be invisible in every durable artifact."""

    @pytest.fixture()
    def runs(self, tmp_path):
        sync_result, sync_seals, sync_store = spilled_run(
            tmp_path / "sync", overlap_io=False)
        overlap_result, overlap_seals, overlap_store = spilled_run(
            tmp_path / "overlap", overlap_io=True)
        return ((sync_result, sync_seals, sync_store),
                (overlap_result, overlap_seals, overlap_store))

    def test_segment_files_byte_identical(self, runs):
        (_, _, sync_store), (_, _, overlap_store) = runs
        names = sorted(os.listdir(sync_store.root))
        assert names == sorted(os.listdir(overlap_store.root))
        assert any(name.startswith("seg-") for name in names)
        for name in names:
            sync_bytes = open(
                os.path.join(sync_store.root, name), "rb").read()
            overlap_bytes = open(
                os.path.join(overlap_store.root, name), "rb").read()
            assert sync_bytes == overlap_bytes, name

    def test_nothing_left_in_flight_after_run(self, runs):
        (_, _, sync_store), (_, _, overlap_store) = runs
        assert sync_store.in_flight_epochs == []
        assert overlap_store.in_flight_epochs == []

    def test_seal_fingerprints_identical(self, runs):
        (_, sync_seals, _), (_, overlap_seals, _) = runs
        assert sorted(sync_seals) == sorted(overlap_seals)
        for epoch, seal in sync_seals.items():
            assert seal.fingerprint == \
                overlap_seals[epoch].fingerprint, epoch

    def test_final_chain_identical(self, runs):
        (sync_result, _, _), (overlap_result, _, _) = runs
        sync_seq = [(b.hash, tuple(b.tx_hashes))
                    for b in sync_result.blockchain.iter_range()]
        overlap_seq = [(b.hash, tuple(b.tx_hashes))
                       for b in overlap_result.blockchain.iter_range()]
        assert sync_seq == overlap_seq

    def test_spooled_seals_load_back(self, runs):
        (_, sync_seals, sync_store), (_, _, overlap_store) = runs
        for store in (sync_store, overlap_store):
            for epoch, seal in sync_seals.items():
                loaded = store.load_sidecar(f"seal-{epoch:06d}.pkl")
                assert loaded.fingerprint == seal.fingerprint
