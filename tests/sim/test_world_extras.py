"""Tests for miner-side world mechanics: payouts, rogue, self-MEV."""

import pytest

from repro.flashbots.bundle import MINER_PAYOUT, ROGUE
from repro.sim import ScenarioConfig, build_paper_scenario


@pytest.fixture(scope="module")
def result():
    config = ScenarioConfig(blocks_per_month=25, seed=17)
    world = build_paper_scenario(config)
    return world.run()


def bundle_rows(result, bundle_type):
    rows = []
    for api_block in result.flashbots_api.all_blocks():
        for row in api_block.transactions:
            if row.bundle_type == bundle_type:
                rows.append((api_block, row))
    return rows


class TestPayoutBundles:
    def test_payouts_present_in_fb_epoch(self, result):
        rows = bundle_rows(result, MINER_PAYOUT)
        assert rows
        launch = result.flashbots_launch_block
        assert all(block.block_number >= launch for block, _ in rows)

    def test_payouts_mined_by_the_paying_pool(self, result):
        """A payout bundle is included by the pool whose payout it is."""
        for api_block, row in bundle_rows(result, MINER_PAYOUT):
            tx = result.node.get_transaction(row.tx_hash)
            assert tx.sender == api_block.miner

    def test_giant_payout_occurred_exactly_once(self, result):
        from collections import Counter
        sizes = Counter()
        for _, row in bundle_rows(result, MINER_PAYOUT):
            sizes[row.bundle_id] += 1
        giants = [b for b, n in sizes.items() if n == 700]
        assert len(giants) == 1

    def test_payout_txs_execute(self, result):
        for _, row in bundle_rows(result, MINER_PAYOUT)[:50]:
            receipt = result.node.get_receipt(row.tx_hash)
            assert receipt is not None and receipt.status


class TestRogueBundles:
    def test_rogue_bundles_exist_and_are_miner_own(self, result):
        rows = bundle_rows(result, ROGUE)
        assert rows
        for api_block, row in rows:
            tx = result.node.get_transaction(row.tx_hash)
            assert tx.sender == api_block.miner
            assert tx.meta.get("role") == "rogue"

    def test_rogue_never_observed_pending(self, result):
        for _, row in bundle_rows(result, ROGUE):
            assert not result.observer.was_observed(row.tx_hash)


class TestSelfMev:
    def test_self_mev_only_in_own_blocks(self, result):
        """Every self-MEV sandwich is in a block its miner mined."""
        self_truths = [t for t in result.ground_truths
                       if t.private_pool
                       and t.private_pool.startswith("self:")]
        assert self_truths
        landed = [t for t in self_truths if result.landed(t)]
        assert landed
        for truth in landed:
            miner_name = truth.private_pool.split(":", 1)[1]
            for tx_hash in truth.tx_hashes:
                block, _ = result.blockchain.locate_transaction(tx_hash)
                profile = result.miners.by_address(block.miner)
                assert profile.name == miner_name

    def test_self_mev_absent_from_flashbots_api(self, result):
        for truth in result.ground_truths:
            if not (truth.private_pool
                    and truth.private_pool.startswith("self:")):
                continue
            for tx_hash in truth.tx_hashes:
                if tx_hash == truth.victim_hash:
                    continue
                assert not result.flashbots_api.is_flashbots_tx(tx_hash)
