"""Unit tests for World's internal machinery (samplers, intensity)."""

import pytest

from repro.sim import ScenarioConfig, build_paper_scenario


@pytest.fixture(scope="module")
def world():
    return build_paper_scenario(ScenarioConfig(blocks_per_month=10,
                                               seed=23))


class TestPoisson:
    def test_zero_rate(self, world):
        assert world._poisson(0.0) == 0
        assert world._poisson(-1.0) == 0

    def test_mean_tracks_rate(self, world):
        samples = [world._poisson(3.0) for _ in range(3_000)]
        mean = sum(samples) / len(samples)
        assert 2.7 < mean < 3.3

    def test_bounded(self, world):
        assert all(world._poisson(2.0) <= 100 for _ in range(200))


class TestActivityScale:
    def test_ramps_over_months(self, world):
        early = world._activity_scale(1)
        late = world._activity_scale(world.calendar.total_blocks)
        assert early < late <= 1.0

    def test_monotone(self, world):
        bpm = world.calendar.blocks_per_month
        scales = [world._activity_scale(1 + i * bpm) for i in range(23)]
        assert scales == sorted(scales)


class TestPgaIntensity:
    def test_all_public_before_flashbots(self, world):
        """Pre-launch every active MEV searcher bids publicly."""
        launch = world.flashbots_launch_block
        intensity = world._pga_intensity(launch - 2)
        assert intensity == 1.0

    def test_drops_after_adoption(self, world):
        launch = world.flashbots_launch_block
        bpm = world.calendar.blocks_per_month
        before = world._pga_intensity(launch - 2)
        after = world._pga_intensity(launch + 5 * bpm)
        assert after < before

    def test_bounded(self, world):
        for block in range(1, world.calendar.total_blocks,
                           world.calendar.blocks_per_month):
            assert 0.0 <= world._pga_intensity(block) <= 1.0


class TestCompetition:
    def test_counts_by_strategy(self, world):
        counts = world._competition(world.calendar.total_blocks // 2)
        assert counts.get("sandwich", 0) > 0
        assert counts.get("arbitrage", 0) > 0
        assert sum(counts.values()) <= len(world.searchers)
