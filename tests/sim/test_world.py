"""Tests for the simulation driver on a miniature scenario.

These use a very small configuration (a handful of blocks per month) so
each test runs in well under a second; the full calibrated shapes are
exercised by the integration tests and benchmarks.
"""

import pytest

from repro.sim import ScenarioConfig, build_paper_scenario


@pytest.fixture(scope="module")
def small_world():
    config = ScenarioConfig(blocks_per_month=20, seed=13)
    world = build_paper_scenario(config)
    world.run()
    return world


@pytest.fixture(scope="module")
def result(small_world):
    return small_world.result()


class TestChainProgress:
    def test_full_window_mined(self, result):
        assert result.blockchain.height == 20 * 23

    def test_blocks_contiguous(self, result):
        numbers = [b.number for b in result.blockchain.blocks]
        assert numbers == list(range(1, len(numbers) + 1))

    def test_blocks_carry_traffic(self, result):
        total_txs = sum(len(b.transactions)
                        for b in result.blockchain.blocks)
        assert total_txs > result.blockchain.height  # >1 tx/block avg

    def test_monotone_timestamps(self, result):
        stamps = [b.timestamp for b in result.blockchain.blocks]
        assert stamps == sorted(stamps)


class TestFlashbotsEpoch:
    def test_no_flashbots_blocks_before_launch(self, result):
        launch = result.flashbots_launch_block
        for block in result.blockchain.blocks:
            if block.number < launch:
                assert not result.flashbots_api.is_flashbots_block(
                    block.number)

    def test_flashbots_blocks_after_launch(self, result):
        assert result.flashbots_api.block_count() > 0

    def test_api_blocks_mined_by_members(self, result):
        for api_block in result.flashbots_api.all_blocks():
            miner = result.miners.by_address(api_block.miner)
            assert miner is not None
            assert miner.in_flashbots(api_block.block_number)


class TestForkMechanics:
    def test_base_fee_zero_before_london(self, result):
        london = result.forks.london_block
        for block in result.blockchain.blocks:
            if block.number < london:
                assert block.base_fee == 0

    def test_base_fee_active_after_london(self, result):
        london = result.forks.london_block
        post = [b for b in result.blockchain.blocks
                if b.number >= london]
        assert all(b.base_fee > 0 for b in post)


class TestConservation:
    def test_no_negative_balances(self, small_world):
        state = small_world.state
        assert all(v >= 0 for v in state._eth.values())
        for ledger in state._tokens.values():
            assert all(v >= 0 for v in ledger.values())

    def test_included_txs_removed_from_mempool(self, small_world):
        result = small_world.result()
        for block in result.blockchain.blocks[-5:]:
            for tx in block.transactions:
                assert tx.hash not in small_world.mempool


class TestGroundTruth:
    def test_ground_truth_collected(self, result):
        assert len(result.ground_truths) > 0
        strategies = {t.strategy for t in result.ground_truths}
        assert "sandwich" in strategies

    def test_landed_truths_on_chain(self, result):
        for truth in result.landed_truths()[:50]:
            for tx_hash in truth.tx_hashes:
                assert result.blockchain.locate_transaction(tx_hash) \
                    is not None

    def test_observer_never_sees_private_submissions(self, result):
        """The measurement node cannot have observed any transaction that
        went through Flashbots or a private pool."""
        for truth in result.ground_truths:
            if truth.channel == "public":
                continue
            for tx_hash in truth.tx_hashes:
                if truth.victim_hash == tx_hash:
                    continue
                assert not result.observer.was_observed(tx_hash)


class TestDeterminism:
    @staticmethod
    def shape(result):
        """Structural fingerprint independent of global tx identifiers."""
        return ([b.miner for b in result.blockchain.blocks],
                [len(b.transactions) for b in result.blockchain.blocks],
                [(t.strategy, t.channel, t.block_submitted)
                 for t in result.ground_truths])

    def test_same_seed_same_world(self):
        a = build_paper_scenario(ScenarioConfig(blocks_per_month=6,
                                                seed=99))
        b = build_paper_scenario(ScenarioConfig(blocks_per_month=6,
                                                seed=99))
        assert self.shape(a.run(60)) == self.shape(b.run(60))

    def test_different_seed_different_world(self):
        a = build_paper_scenario(ScenarioConfig(blocks_per_month=6,
                                                seed=1))
        b = build_paper_scenario(ScenarioConfig(blocks_per_month=6,
                                                seed=2))
        assert self.shape(a.run(60)) != self.shape(b.run(60))
