"""Fast-path world vs. naive reference world: hash-for-hash identity.

``build_paper_scenario(..., fast_paths=False)`` rebuilds the simulator
on the unoptimized code paths — full mempool re-sorts every block, no
probe memoization, no scan caches.  The optimized default must produce
the *identical* world: same block hashes, same transaction hashes, in
the same order, through every fork (the scenarios here span Berlin and
London, so the base fee goes from pinned-at-zero to moving every
block).  Transaction hashes commit to a process-wide uid counter, so
identity here means the two runs agreed on every transaction ever
created, not merely the included ones.
"""

import pytest

from repro.chain.transaction import reset_tx_counter
from repro.sim import ScenarioConfig, build_paper_scenario


def block_sequence(result):
    return [(block.hash, tuple(tx.hash for tx in block.transactions))
            for block in result.blockchain.blocks]


def run_world(config, fast_paths):
    reset_tx_counter()
    return build_paper_scenario(config, fast_paths=fast_paths).run()


class TestFastPathIdentity:
    @pytest.mark.parametrize("bpm,seed", [(6, 7), (4, 23)])
    def test_same_seed_same_world(self, bpm, seed):
        config = ScenarioConfig(blocks_per_month=bpm, seed=seed)
        fast = run_world(config, fast_paths=True)
        reference = run_world(config, fast_paths=False)
        assert block_sequence(fast) == block_sequence(reference)

    def test_scenario_spans_london(self):
        """The identity above only means something if the scenario
        actually crosses the fee-market switch the fast mempool index
        optimizes around."""
        config = ScenarioConfig(blocks_per_month=6, seed=7)
        result = run_world(config, fast_paths=True)
        base_fees = [b.base_fee for b in result.blockchain.blocks]
        assert base_fees[0] == 0  # pre-London: pinned
        assert base_fees[-1] > 0  # post-London: live fee market
        assert len(set(base_fees)) > 2  # and it actually moves

    def test_fast_world_is_deterministic_across_builds(self):
        config = ScenarioConfig(blocks_per_month=5, seed=3)
        first = run_world(config, fast_paths=True)
        second = run_world(config, fast_paths=True)
        assert block_sequence(first) == block_sequence(second)
