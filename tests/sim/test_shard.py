"""Epoch sharding: seal determinism and the splice identity rule.

The property under test is the whole point of the subsystem: sealing
the world at *any* epoch boundary and resuming on a fresh ``World``
reproduces the serial run's block/tx hash sequence exactly — including
boundaries that land mid-Flashbots-adoption ramp and inside a mempool
collector outage window — and a full sharded re-simulation splices
back bit-identically to the serial reference.
"""

import pytest

from repro.chain.transaction import reset_tx_counter
from repro.sim import (
    ScenarioConfig,
    build_paper_scenario,
    plan_epochs,
    restore_paper_scenario,
    resimulate_epochs,
    simulate_sharded,
    splice_epochs,
)
from repro.sim.shard import EpochRunner, EpochResult, block_sequence

EPOCH_BLOCKS = 4  # deliberately does not divide the month length


def config_for(seed):
    return ScenarioConfig(blocks_per_month=6, seed=seed,
                          epoch_blocks=EPOCH_BLOCKS)


def sequence_of(blocks):
    return [(block.hash, tuple(block.tx_hashes)) for block in blocks]


def serial_reference(config, downtime=None):
    """Serial run collecting a seal at every epoch boundary."""
    reset_tx_counter()
    world = build_paper_scenario(config)
    if downtime is not None:
        world.observer.downtime_ranges = downtime
    seals = {}
    result = world.run(collect_seals=seals)
    return result, seals


class TestPlan:
    def test_plan_tiles_the_window(self):
        config = config_for(3)
        plan = plan_epochs(config)
        total = 6 * len(config.months)
        assert plan[0][0] == 1
        assert plan[-1][1] == total
        for (_, hi), (lo, _) in zip(plan, plan[1:]):
            assert lo == hi + 1
        widths = {hi - lo + 1 for lo, hi in plan[:-1]}
        assert widths == {EPOCH_BLOCKS}

    def test_default_epoch_is_one_month(self):
        config = ScenarioConfig(blocks_per_month=6, seed=3)
        plan = plan_epochs(config)
        assert plan[0] == (1, 6)
        assert len(plan) == len(config.months)


class TestSealDeterminism:
    """Seal at a boundary, resume on a fresh world, get the same chain."""

    @pytest.mark.parametrize("seed", [3, 11])
    def test_resume_from_any_boundary_is_bit_identical(self, seed):
        config = config_for(seed)
        serial, seals = serial_reference(config)
        reference = sequence_of(serial.blockchain.blocks)
        launch = serial.flashbots_launch_block
        # One boundary early, one mid-Flashbots-adoption ramp (the
        # first boundary past the launch block), one near the end.
        launch_epoch = launch // EPOCH_BLOCKS + 1
        for epoch in (1, launch_epoch, len(reference) // EPOCH_BLOCKS - 1):
            seal = seals[epoch]
            world = restore_paper_scenario(config, seal)
            resumed = world.run()
            suffix = sequence_of(resumed.blockchain.blocks)
            assert suffix == reference[seal.first_block - 1:], \
                f"seed {seed}, epoch {epoch}"

    def test_boundary_inside_observer_outage_window(self):
        config = config_for(3)
        # Boundary at block 8 sits strictly inside the outage.
        downtime = ((6, 10),)
        serial, seals = serial_reference(config, downtime=downtime)
        reference = sequence_of(serial.blockchain.blocks)
        seal = seals[2]  # first block 9 — mid-outage
        assert downtime[0][0] < seal.first_block <= downtime[0][1]
        world = restore_paper_scenario(config, seal)
        assert world.observer.downtime_ranges == downtime
        resumed = world.run()
        assert sequence_of(resumed.blockchain.blocks) == \
            reference[seal.first_block - 1:]

    def test_seal_refused_off_boundary(self):
        config = config_for(3)
        reset_tx_counter()
        world = build_paper_scenario(config)
        world.run(blocks=EPOCH_BLOCKS + 1)
        with pytest.raises(ValueError, match="boundary"):
            world.seal()

    def test_seal_fingerprint_guards_payload(self):
        config = config_for(3)
        reset_tx_counter()
        world = build_paper_scenario(config)
        world.run(blocks=EPOCH_BLOCKS)
        seal = world.seal()
        carried = seal.carried()
        assert "observer" in carried and "mempool" in carried
        import dataclasses
        tampered = dataclasses.replace(seal, payload=seal.payload + b"x")
        with pytest.raises(ValueError, match="fingerprint"):
            tampered.carried()


class TestSpliceIdentity:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_full_shard_splices_bit_identical(self, workers):
        config = config_for(3)
        serial, sharded, info = simulate_sharded(config, workers=workers)
        assert block_sequence(sharded) == block_sequence(serial)
        assert info["scope"] == "full"
        assert info["resimulated_epochs"] == info["epochs"]
        assert info["workers_requested"] == workers
        assert info["workers_effective"] >= 1

    def test_prefix_gate_covers_the_prefix(self):
        config = config_for(11)
        serial, sharded, info = simulate_sharded(config, workers=1,
                                                 prefix_epochs=3)
        assert info["scope"] == "prefix[3]"
        prefix = block_sequence(sharded)
        assert len(prefix) == 3 * EPOCH_BLOCKS
        assert prefix == block_sequence(serial)[:len(prefix)]

    def test_prefix_must_be_positive(self):
        with pytest.raises(ValueError):
            simulate_sharded(config_for(3), prefix_epochs=0)


class TestRunnerAndSplice:
    def test_runner_demands_matching_seal(self):
        config = config_for(3)
        _, seals = serial_reference(config)
        runner = EpochRunner(config, {})
        with pytest.raises(KeyError):
            runner.run_chunk((1, EPOCH_BLOCKS))
        shifted = {1: seals[2]}  # seal for epoch 2 filed under 1
        runner = EpochRunner(config, shifted)
        with pytest.raises(ValueError, match="starts at"):
            runner.run_chunk((EPOCH_BLOCKS + 1, 2 * EPOCH_BLOCKS))

    def test_epoch_results_never_report_failed(self):
        config = config_for(3)
        _, seals = serial_reference(config)
        results = resimulate_epochs(config, seals,
                                    chunks=plan_epochs(config)[:1])
        assert [r.failed for r in results] == [False]
        assert isinstance(results[0], EpochResult)
        assert results[0].end_seal.first_block == EPOCH_BLOCKS + 1

    def test_splice_rejects_gaps_and_nothing(self):
        config = config_for(3)
        _, seals = serial_reference(config)
        plan = plan_epochs(config)
        results = resimulate_epochs(config, seals,
                                    chunks=[plan[0], plan[2]])
        with pytest.raises(ValueError, match="gap"):
            splice_epochs(config, results)
        with pytest.raises(ValueError):
            splice_epochs(config, [])
