"""Tests for scenario configuration and the calibrated world builder."""

import pytest

from repro.sim import ScenarioConfig, build_paper_scenario


class TestConfig:
    def test_defaults_valid(self):
        config = ScenarioConfig()
        assert config.total_blocks == config.blocks_per_month * 23

    def test_validation(self):
        with pytest.raises(ValueError):
            ScenarioConfig(blocks_per_month=0)
        with pytest.raises(ValueError):
            ScenarioConfig(num_miners=0)
        with pytest.raises(ValueError):
            ScenarioConfig(observation_rate=1.5)
        with pytest.raises(ValueError):
            ScenarioConfig(flashbots_launch_month="2019-01")


class TestScenarioAssembly:
    @pytest.fixture(scope="class")
    def world(self):
        return build_paper_scenario(ScenarioConfig(blocks_per_month=10,
                                                   seed=3))

    def test_miner_population(self, world):
        miners = world.miners.miners
        assert len(miners) == 55
        # Long-tailed: the largest dwarfs the smallest.
        assert miners[0].hashpower > 20 * miners[-1].hashpower
        # A couple of miners never join Flashbots.
        never = [m for m in miners if m.flashbots_join_block is None]
        assert len(never) == 2

    def test_enrollment_biggest_first(self, world):
        joined = [m for m in world.miners.miners
                  if m.flashbots_join_block is not None]
        assert joined[0].flashbots_join_block <= \
            joined[-1].flashbots_join_block

    def test_self_mev_miners_have_personas(self, world):
        self_miners = [m for m in world.miners.miners if m.self_mev]
        assert len(self_miners) == 2
        for miner in self_miners:
            assert miner.address in world.self_mev_searchers

    def test_markets_deployed_and_liquid(self, world):
        assert len(world.registry.pools) == 17
        for pool in world.registry.pools:
            assert min(pool.reserves(world.state)) > 0

    def test_oracle_covers_pool_tokens(self, world):
        for pool in world.registry.pools:
            assert world.oracle.has_price(pool.token0)
            assert world.oracle.has_price(pool.token1)

    def test_private_pools_configured(self, world):
        eden = world.private_pools.get("eden")
        taichi = world.private_pools.get("taichi")
        assert eden is not None and not eden.is_single_miner
        assert taichi is not None
        assert taichi.shutdown_block == \
            world.calendar.first_block_of("2021-10")

    def test_searchers_funded_and_registered(self, world):
        for searcher in world.searchers:
            assert world.relay.is_searcher(searcher.address)
            assert world.state.eth_balance(searcher.address) > 0

    def test_forks_inside_window(self, world):
        assert 1 < world.forks.berlin_block < world.forks.london_block
        assert world.forks.london_block < world.calendar.total_blocks

    def test_observation_window_at_tail(self, world):
        obs_start = world.observer.start_block
        assert obs_start == world.calendar.first_block_of("2021-11")
        assert obs_start > world.flashbots_launch_block
