"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


BPM = ["--bpm", "8", "--seed", "3"]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.bpm == 60
        assert args.seed == 7

    def test_export_needs_path(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["export"])


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1"] + BPM) == 0
        out = capsys.readouterr().out
        assert "MEV Strategy" in out
        assert "Sandwiching" in out
        assert "Total" in out

    def test_figures(self, capsys):
        assert main(["figures"] + BPM) == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out
        assert "Figure 4" in out
        assert "Figure 9" in out

    def test_run_full_report(self, capsys):
        assert main(["run"] + BPM) == 0
        out = capsys.readouterr().out
        for marker in ("MEV Strategy", "Figure 8", "Section 5.2",
                       "Section 6.3", "Goal 2"):
            assert marker in out

    def test_export_round_trips(self, tmp_path, capsys):
        target = tmp_path / "mev.jsonl"
        assert main(["export", str(target)] + BPM) == 0
        assert "wrote" in capsys.readouterr().out
        from repro.core.datasets import MevDataset
        with open(target, encoding="utf-8") as stream:
            loaded = MevDataset.load_jsonl(stream)
        assert loaded.totals()["total"] >= 0
        assert target.read_text().count("\n") == \
            loaded.totals()["total"]
