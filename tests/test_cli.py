"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


BPM = ["--bpm", "8", "--seed", "3"]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.bpm == 60
        assert args.seed == 7

    def test_export_needs_path(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["export"])

    def test_spilling_flags(self):
        args = build_parser().parse_args(
            ["run", "--blocks", "100000", "--epoch-blocks", "5000",
             "--max-resident-epochs", "3", "--segment-dir", "segs"])
        assert args.blocks == 100000
        assert args.epoch_blocks == 5000
        assert args.max_resident_epochs == 3
        assert args.segment_dir == "segs"

    def test_shard_flags(self):
        args = build_parser().parse_args(["bench", "--shard",
                                          "--shard-workers", "3",
                                          "--shard-prefix", "4"])
        assert args.shard is True
        assert args.shard_workers == 3
        assert args.shard_prefix == 4
        defaults = build_parser().parse_args(["bench"])
        assert defaults.shard is False
        assert defaults.shard_workers == 2
        assert defaults.shard_prefix is None


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1"] + BPM) == 0
        out = capsys.readouterr().out
        assert "MEV Strategy" in out
        assert "Sandwiching" in out
        assert "Total" in out

    def test_figures(self, capsys):
        assert main(["figures"] + BPM) == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out
        assert "Figure 4" in out
        assert "Figure 9" in out

    def test_run_full_report(self, capsys):
        assert main(["run"] + BPM) == 0
        out = capsys.readouterr().out
        for marker in ("MEV Strategy", "Figure 8", "Section 5.2",
                       "Section 6.3", "Goal 2"):
            assert marker in out

    def test_run_spilled_report_matches_in_memory(self, tmp_path,
                                                  capsys):
        """`repro run --segment-dir` must print byte-identical output
        to the all-in-memory run of the same scenario."""
        from repro.chain.transaction import reset_tx_counter
        args = BPM + ["--epoch-blocks", "5"]
        reset_tx_counter()
        assert main(["run"] + args) == 0
        in_memory = capsys.readouterr().out
        reset_tx_counter()
        assert main(["run"] + args +
                    ["--segment-dir", str(tmp_path / "segs"),
                     "--max-resident-epochs", "1"]) == 0
        assert capsys.readouterr().out == in_memory

    def test_follow_rejects_spilling_flags(self):
        with pytest.raises(SystemExit):
            main(["run", "--follow", "--blocks", "10"] + BPM)

    def test_export_round_trips(self, tmp_path, capsys):
        target = tmp_path / "mev.jsonl"
        assert main(["export", str(target)] + BPM) == 0
        assert "wrote" in capsys.readouterr().out
        from repro.core.datasets import MevDataset
        with open(target, encoding="utf-8") as stream:
            loaded = MevDataset.load_jsonl(stream)
        assert loaded.totals()["total"] >= 0
        assert target.read_text().count("\n") == \
            loaded.totals()["total"]
