"""Session-scoped simulated study window for integration tests."""

import pytest

from repro import run_inspector
from repro.sim import ScenarioConfig, build_paper_scenario


@pytest.fixture(scope="session")
def sim_result():
    from repro.chain.transaction import reset_tx_counter
    reset_tx_counter()  # identical world regardless of test order
    config = ScenarioConfig(blocks_per_month=50, seed=7)
    world = build_paper_scenario(config)
    return world.run()


@pytest.fixture(scope="session")
def dataset(sim_result):
    return run_inspector(sim_result)
