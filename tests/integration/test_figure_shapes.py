"""Shape tests: do the simulated figures match the paper's findings?

These run the full pipeline over the session-scoped simulated window and
assert the *qualitative* results the paper reports — who wins, in what
order, where the curves turn — not absolute values (our substrate is a
compressed simulator, not the authors' archive node).
"""

import pytest

from repro.analysis import (
    build_table1,
    bundle_stats,
    democratization,
    fig3_flashbots_block_ratio,
    fig4_hashrate_share,
    fig5_miner_distribution,
    fig6_gas_and_sandwiches,
    fig7_mev_types,
    fig9_private_distribution,
    monthly_average_gas_gwei,
    negative_profits,
    profit_distribution,
)


@pytest.fixture(scope="session")
def months(sim_result):
    return list(sim_result.calendar.months)


def month_value(series, month):
    return dict(series)[month]


class TestTable1Shapes:
    def test_strategy_ordering(self, dataset):
        rows = {r.strategy: r for r in build_table1(dataset)}
        # Liquidations are rare next to trading MEV (paper: 33k vs 1M+).
        assert rows["Liquidation"].extractions < \
            rows["Arbitrage"].extractions
        assert rows["Sandwiching"].extractions > 0

    def test_flashbots_shares_in_band(self, dataset):
        rows = {r.strategy: r for r in build_table1(dataset)}
        # Paper: 47.6 % of sandwiches via Flashbots; substantial but not
        # total shares for the others.
        assert 0.25 < rows["Sandwiching"].share_flashbots() < 0.75
        assert 0.1 < rows["Arbitrage"].share_flashbots() < 0.75
        assert 0.0 < rows["Total"].share_flashbots() < 0.8

    def test_flash_loan_structure(self, dataset):
        rows = {r.strategy: r for r in build_table1(dataset)}
        # Structural zero: sandwiches cannot use flash loans.
        assert rows["Sandwiching"].via_flash_loans == 0
        # Flash loans appear in arbitrage and liquidation, rarely.
        assert rows["Arbitrage"].via_flash_loans > 0
        assert rows["Arbitrage"].share_flash_loans() < 0.25
        assert rows["Total"].via_both <= rows["Total"].via_flash_loans


class TestFig3Shape:
    def test_zero_before_launch_then_ramp(self, sim_result, months):
        series = fig3_flashbots_block_ratio(
            sim_result.node, sim_result.flashbots_api,
            sim_result.calendar)
        values = dict(series)
        for month in months[:9]:  # pre-Feb-2021
            assert values[month] == 0.0
        assert values["2021-03"] > 0.15
        peak = max(values[m] for m in months if m >= "2021-04")
        assert peak > 0.5

    def test_late_window_below_peak(self, sim_result, months):
        series = dict(fig3_flashbots_block_ratio(
            sim_result.node, sim_result.flashbots_api,
            sim_result.calendar))
        peak = max(series.values())
        tail = (series["2022-01"] + series["2022-02"]
                + series["2022-03"]) / 3
        assert tail < peak


class TestFig4Shape:
    def test_hashrate_captured(self, sim_result, months):
        series = dict(fig4_hashrate_share(
            sim_result.node, sim_result.flashbots_api,
            sim_result.calendar))
        assert all(series[m] == 0.0 for m in months[:9])
        assert series["2021-03"] > 0.4      # fast capture (paper: 61.7 %)
        assert series["2021-06"] > 0.7      # paper: 97.6 % by May
        late = max(series["2022-01"], series["2022-02"])
        assert late > 0.75                  # paper: ~99.9 %

    def test_ground_truth_enrollment_near_total(self, sim_result):
        """The estimator under-counts at compressed scale; the actual
        enrolled hashpower reaches ≈100 % (paper: 99.9 %)."""
        last_block = sim_result.calendar.total_blocks
        share = sim_result.miners.flashbots_hashpower_share(last_block)
        assert share > 0.97


class TestFig5Shape:
    def test_long_tail_and_bounded_count(self, sim_result):
        series = fig5_miner_distribution(sim_result.flashbots_api,
                                         sim_result.calendar)
        thresholds = sorted(series)
        # Monotone: higher thresholds → fewer miners, every month.
        for low, high in zip(thresholds, thresholds[1:]):
            for (_, n_low), (_, n_high) in zip(series[low],
                                               series[high]):
                assert n_high <= n_low
        # No month has more than 55 distinct Flashbots miners.
        assert max(n for _, n in series[1]) <= 55
        # The top threshold is met by at most a couple of miners.
        assert max(n for _, n in series[thresholds[-1]]) <= 3


class TestFig6Shape:
    def test_gas_collapse_at_adoption_not_forks(self, sim_result,
                                                dataset):
        points = fig6_gas_and_sandwiches(sim_result.node, dataset,
                                         sim_result.calendar)
        gas = dict(monthly_average_gas_gwei(points))
        pre_fb = (gas["2020-11"] + gas["2020-12"] + gas["2021-01"]) / 3
        post_adoption = (gas["2021-06"] + gas["2021-07"]) / 3
        assert post_adoption < 0.6 * pre_fb
        # The drop precedes London (Aug 2021) — the fork isn't the cause.
        assert gas["2021-07"] < 0.7 * pre_fb

    def test_sandwich_series_split(self, sim_result, dataset):
        points = fig6_gas_and_sandwiches(sim_result.node, dataset,
                                         sim_result.calendar)
        fb = sum(p.flashbots_sandwiches for p in points)
        non_fb = sum(p.non_flashbots_sandwiches for p in points)
        assert fb > 0 and non_fb > 0
        # No Flashbots sandwiches before the launch month.
        launch_day = min(p.day for p in points
                         if p.month == "2021-02")
        assert all(p.flashbots_sandwiches == 0 for p in points
                   if p.day < launch_day)


class TestFig7Shape:
    def test_other_dominates(self, sim_result, dataset):
        series = fig7_mev_types(dataset, sim_result.flashbots_api,
                                sim_result.node, sim_result.calendar)
        mid = "2021-08"
        other_s = month_value(series.searchers["other"], mid)
        sandwich_s = month_value(series.searchers["sandwich"], mid)
        assert other_s > sandwich_s
        other_t = month_value(series.transactions["other"], mid)
        assert other_t >= other_s  # txs at least one per searcher

    def test_mev_searchers_rise_then_fall(self, sim_result, dataset):
        series = fig7_mev_types(dataset, sim_result.flashbots_api,
                                sim_result.node, sim_result.calendar)
        sandwich = dict(series.searchers["sandwich"])
        ramp = max(sandwich[m] for m in ("2021-06", "2021-07",
                                         "2021-08"))
        tail = max(sandwich[m] for m in ("2022-02", "2022-03"))
        assert ramp > 0
        assert tail <= ramp


class TestFig8Shape:
    def test_profit_inversion(self, dataset):
        report = profit_distribution(dataset)
        stats = report.stats
        # Miners earn more per sandwich via Flashbots (paper: ≈2.6×)...
        assert report.miner_uplift > 1.5
        # ...searchers earn (much) less (paper: −84.4 %).
        assert report.searcher_drop > 0.5
        assert stats.searchers_flashbots.mean < \
            stats.searchers_non_flashbots.mean
        assert stats.miners_flashbots.mean > \
            stats.miners_non_flashbots.mean

    def test_sample_sizes_meaningful(self, dataset):
        stats = profit_distribution(dataset).stats
        assert stats.miners_flashbots.count > 30
        assert stats.searchers_non_flashbots.count > 30


class TestFig9Shape:
    def test_three_way_split(self, dataset):
        dist = fig9_private_distribution(dataset)
        assert dist.total > 20
        # Paper: 81.2 % Flashbots, 13.2 % other-private, 5.6 % public.
        assert dist.share("flashbots") > 0.45
        assert dist.share("flashbots") > dist.share("private")
        assert dist.share("private") > dist.share("public")
        assert dist.share("public") < 0.25


class TestSection41Shape:
    def test_bundle_statistics(self, sim_result):
        stats = bundle_stats(sim_result.flashbots_api)
        assert 1.0 < stats.bundles_per_block_mean < 4.0
        assert stats.txs_per_bundle_median == 1
        assert 0.5 < stats.single_tx_bundle_share < 0.95
        assert stats.largest_bundle_txs == 700  # the F2Pool payout
        shares = stats.type_shares
        assert shares["flashbots"] > 0.8
        assert 0 < shares.get("miner_payout", 0) < 0.1
        assert 0 < shares.get("rogue", 0) < 0.2


class TestSection52Shape:
    def test_negative_profits_exist_but_rare(self, dataset):
        report = negative_profits(dataset)
        assert report.unprofitable > 0
        # Paper: 1.58 % of Flashbots sandwiches lost money.
        assert report.unprofitable_share < 0.12
        assert report.loss_total_eth > 0


class TestDemocratization:
    def test_concentration(self, sim_result):
        report = democratization(sim_result.flashbots_api,
                                 sim_result.calendar)
        assert report.max_miners_in_a_month <= 55
        # Paper: >90 % of FB blocks from two miners; our zipf is a bit
        # flatter but the top two still dominate.
        assert report.top2_block_share > 0.35
