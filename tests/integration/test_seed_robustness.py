"""Seed robustness: the paper's qualitative findings are not one lucky
seed.  Three small worlds with different seeds must all reproduce the
headline shapes."""

import pytest

from repro import run_inspector
from repro.analysis import build_table1, fig9_private_distribution
from repro.analysis.goals import profit_distribution
from repro.chain.transaction import reset_tx_counter
from repro.sim import ScenarioConfig, build_paper_scenario


@pytest.fixture(scope="module", params=[101, 202, 303])
def study(request):
    reset_tx_counter()
    config = ScenarioConfig(blocks_per_month=30, seed=request.param)
    result = build_paper_scenario(config).run()
    return result, run_inspector(result)


class TestShapesAcrossSeeds:
    def test_table1_bands(self, study):
        _, dataset = study
        rows = {r.strategy: r for r in build_table1(dataset)}
        assert rows["Sandwiching"].via_flash_loans == 0
        assert 0.2 < rows["Sandwiching"].share_flashbots() < 0.8
        assert rows["Total"].extractions > 100

    def test_profit_inversion(self, study):
        _, dataset = study
        report = profit_distribution(dataset)
        assert report.miner_uplift > 1.2
        assert report.searcher_drop > 0.3

    def test_flashbots_dominates_window(self, study):
        _, dataset = study
        dist = fig9_private_distribution(dataset)
        if dist.total < 15:
            pytest.skip("window too sparse at this scale/seed")
        assert dist.share("flashbots") > \
            max(dist.share("private"), dist.share("public"))

    def test_hashrate_capture(self, study):
        result, _ = study
        share = result.miners.flashbots_hashpower_share(
            result.calendar.total_blocks)
        assert share > 0.97
