"""Failure injection: degraded observation, empty worlds, relay bans.

Each test breaks one assumption the measurement methodology relies on
and checks the system degrades the way the paper's caveats predict.
"""

import pytest

from repro import run_inspector
from repro.sim import ScenarioConfig, build_paper_scenario


def small_config(**overrides):
    base = dict(blocks_per_month=15, seed=21)
    base.update(overrides)
    return ScenarioConfig(**base)


class TestDetectionSoundness:
    def test_world_without_searchers_has_no_sandwiches(self):
        """No extractors → the heuristics find nothing to flag."""
        config = small_config(num_sandwich_searchers=0,
                              num_arbitrage_searchers=0,
                              num_liquidation_searchers=0,
                              num_self_mev_miners=0,
                              amateur_arb_rate=0.0)
        result = build_paper_scenario(config).run()
        dataset = run_inspector(result)
        assert dataset.sandwiches == []
        assert dataset.liquidations == []
        # Arbitrage needs an arbitrageur too; none exist.
        assert dataset.arbitrages == []

    def test_retail_only_world_mines_normally(self):
        config = small_config(num_sandwich_searchers=0,
                              num_arbitrage_searchers=0,
                              num_liquidation_searchers=0,
                              num_self_mev_miners=0,
                              num_other_users=0,
                              amateur_arb_rate=0.0)
        result = build_paper_scenario(config).run()
        assert result.blockchain.height == config.total_blocks
        total_txs = sum(len(b.transactions)
                        for b in result.blockchain.blocks)
        assert total_txs > 0


class TestDegradedObservation:
    def test_blind_observer_sees_everything_as_private(self):
        """With the pending-tx collector offline (rate 0), inference
        cannot distinguish anything — no sandwich can satisfy the
        victim-was-public condition, so 'private' vanishes too."""
        config = small_config(observation_rate=0.0)
        result = build_paper_scenario(config).run()
        dataset = run_inspector(result)
        in_window = [r for r in dataset.sandwiches
                     if r.privacy is not None]
        assert all(r.privacy in ("flashbots", "public")
                   for r in in_window)
        # 'public' here means 'unprovable', never observed:
        assert not result.observer.observed_hashes

    def test_lossy_observer_still_classifies_most(self):
        full = build_paper_scenario(small_config(seed=5)).run()
        lossy = build_paper_scenario(
            small_config(seed=5, observation_rate=0.7)).run()
        assert len(lossy.observer) < len(full.observer)
        assert len(lossy.observer) > 0


class TestRelayBans:
    def test_banning_all_searchers_kills_flashbots_blocks(self):
        config = small_config()
        world = build_paper_scenario(config)
        for searcher in world.searchers:
            world.relay.ban(searcher.address)
        result = world.run()
        # Payout/rogue bundles are miner-side and survive the ban, but
        # no searcher bundle is ever accepted.
        api = result.flashbots_api
        for block in api.all_blocks():
            for row in block.transactions:
                assert row.bundle_type in ("miner_payout", "rogue")
        assert world.relay.rejected_count > 0

    def test_banned_miner_receives_no_bundles(self):
        config = small_config()
        world = build_paper_scenario(config)
        top_miner = world.miners.miners[0]
        world.relay.report_equivocation(top_miner.address)
        result = world.run()
        for api_block in result.flashbots_api.all_blocks():
            block = result.node.get_block(api_block.block_number)
            if block.miner != top_miner.address:
                continue
            # The banned miner can still include its own payout/rogue
            # bundles, but nothing relayed.
            for row in api_block.transactions:
                assert row.bundle_type in ("miner_payout", "rogue")
