"""Score the measurement pipeline against simulator ground truth.

The pipeline never reads ground truth; these tests close the loop by
checking that what the heuristics *found* matches what the agents
*actually did* — the validation a real measurement study can only
approximate.
"""

import pytest

from repro.core.datasets import PRIVACY_PRIVATE


def landed_by_strategy(sim_result, strategy):
    return [t for t in sim_result.landed_truths()
            if t.strategy == strategy]


class TestSandwichScores:
    def test_recall(self, sim_result, dataset):
        """Nearly every sandwich that really happened is detected."""
        truths = landed_by_strategy(sim_result, "sandwich")
        detected_pairs = {(r.front_tx, r.back_tx)
                          for r in dataset.sandwiches}
        found = sum(1 for t in truths
                    if (t.tx_hashes[0], t.tx_hashes[1])
                    in detected_pairs)
        assert len(truths) > 50  # the scenario produced real volume
        assert found / len(truths) > 0.85

    def test_precision(self, sim_result, dataset):
        """Nearly every detected sandwich really was one."""
        truth_pairs = {(t.tx_hashes[0], t.tx_hashes[1])
                       for t in landed_by_strategy(sim_result,
                                                   "sandwich")}
        assert len(dataset.sandwiches) > 50
        true_hits = sum(1 for r in dataset.sandwiches
                        if (r.front_tx, r.back_tx) in truth_pairs)
        assert true_hits / len(dataset.sandwiches) > 0.95

    def test_victims_are_real_victims(self, sim_result, dataset):
        truth_victims = {t.victim_hash
                         for t in landed_by_strategy(sim_result,
                                                     "sandwich")}
        matched = sum(1 for r in dataset.sandwiches
                      if r.victim_tx in truth_victims)
        assert matched / len(dataset.sandwiches) > 0.9


class TestArbitrageScores:
    @staticmethod
    def _covered(sim_result, truth):
        """True if every venue on the arbitrage's route is one the
        paper's script crawls (Uniswap V1 is notably absent from the
        arbitrage coverage even though the sandwich script has it)."""
        from repro.dex.registry import ARBITRAGE_VENUES
        tx = sim_result.node.get_transaction(truth.tx_hashes[0])
        if tx is None or tx.intent is None:
            return True
        route = getattr(tx.intent, "route", None) or \
            getattr(getattr(tx.intent, "inner", None), "route", None)
        if route is None:
            return True
        venues = [sim_result.registry.get(addr).venue
                  for addr in route
                  if sim_result.registry.get(addr) is not None]
        return all(v in ARBITRAGE_VENUES for v in venues)

    def test_recall_on_covered_venues(self, sim_result, dataset):
        truths = [t for t in landed_by_strategy(sim_result, "arbitrage")
                  if self._covered(sim_result, t)]
        detected = {r.tx_hash for r in dataset.arbitrages}
        assert len(truths) > 50
        found = sum(1 for t in truths if t.tx_hashes[0] in detected)
        assert found / len(truths) > 0.9

    def test_uncovered_misses_are_all_v1_routes(self, sim_result,
                                                dataset):
        """Everything the heuristic missed routed through Uniswap V1 —
        the paper's own arbitrage script has the same blind spot."""
        detected = {r.tx_hash for r in dataset.arbitrages}
        missed = [t for t in landed_by_strategy(sim_result, "arbitrage")
                  if t.tx_hashes[0] not in detected]
        for truth in missed:
            assert not self._covered(sim_result, truth)

    def test_detects_amateur_arbitrage_too(self, sim_result, dataset):
        """Detected arbitrage includes victims' naive attempts, which
        ground truth (searcher-only) does not track."""
        truth_hashes = {t.tx_hashes[0]
                        for t in landed_by_strategy(sim_result,
                                                    "arbitrage")}
        extras = [r for r in dataset.arbitrages
                  if r.tx_hash not in truth_hashes]
        for record in extras:
            tx = sim_result.node.get_transaction(record.tx_hash)
            assert tx.meta.get("role") == "amateur-arb"


class TestLiquidationScores:
    def test_recall(self, sim_result, dataset):
        truths = landed_by_strategy(sim_result, "liquidation")
        detected = {r.tx_hash for r in dataset.liquidations}
        assert truths, "scenario produced no liquidations"
        found = sum(1 for t in truths if t.tx_hashes[0] in detected)
        assert found / len(truths) > 0.9


class TestLabelJoins:
    def test_flashbots_labels_match_channel(self, sim_result, dataset):
        channel_by_tx = {}
        for truth in sim_result.landed_truths():
            for tx_hash in truth.tx_hashes:
                channel_by_tx[tx_hash] = truth.channel
        mismatches = 0
        checked = 0
        for record in dataset.arbitrages + dataset.liquidations:
            channel = channel_by_tx.get(record.tx_hash)
            if channel is None:
                continue
            checked += 1
            if record.via_flashbots != (channel == "flashbots"):
                mismatches += 1
        assert checked > 50
        assert mismatches == 0

    def test_flash_loan_labels_match(self, sim_result, dataset):
        flash_truth = {t.tx_hashes[0]
                       for t in sim_result.landed_truths()
                       if t.uses_flash_loan}
        for record in dataset.arbitrages + dataset.liquidations:
            if record.tx_hash in flash_truth:
                assert record.via_flashloan

    def test_sandwiches_never_flash_loans(self, dataset):
        assert all(not r.via_flashloan for r in dataset.sandwiches)

    def test_privacy_matches_channel_in_window(self, sim_result,
                                               dataset):
        truth_by_pair = {(t.tx_hashes[0], t.tx_hashes[1]): t
                         for t in sim_result.landed_truths()
                         if t.strategy == "sandwich"}
        checked = 0
        tolerated = 0
        for record in dataset.sandwiches:
            if record.privacy is None:
                continue
            truth = truth_by_pair.get((record.front_tx, record.back_tx))
            if truth is None:
                continue
            checked += 1
            expected = {"flashbots": "flashbots", "private": "private",
                        "public": "public"}[truth.channel]
            if record.privacy == expected:
                continue
            # The one legitimate error mode the paper's method has: a
            # truly private sandwich whose *victim* the observer missed
            # (0.5 % gossip loss) cannot be proven private and falls
            # back to 'public'.  Anything else is a real bug.
            assert (expected, record.privacy) == ("private", "public"), \
                (record, truth)
            assert not sim_result.observer.was_observed(
                record.victim_tx)
            tolerated += 1
        assert checked > 10
        # Missed-victim fallbacks must stay rare (gossip loss is 0.5 %,
        # but few dozen samples make the binomial tail non-trivial).
        assert tolerated <= max(3, checked // 10)


class TestAttributionIntegration:
    def test_self_extracting_miners_recovered(self, sim_result,
                                              dataset):
        """Section 6.3: the planted self-MEV miners are exactly the
        single-miner extractors the analysis surfaces."""
        from repro.core.pool_attribution import attribute_private_pools
        report = attribute_private_pools(dataset)
        planted = {s.address: s for s in
                   sim_result_self_searchers(sim_result)}
        recovered = {account: miner for account, miner, _ in
                     report.single_miner_extractors}
        assert recovered, "no single-miner extractors found"
        # The planted self-extractors are recovered...
        hits = set(planted) & set(recovered)
        assert hits, "no planted self-extractor was recovered"
        # ...each paired with exactly the right miner.
        for account in hits:
            expected_pool = planted[account].policy.private_pool
            miner_name = expected_pool.split(":", 1)[1]
            profile = sim_result.miners.by_address(recovered[account])
            assert profile.name == miner_name
        # Chance false positives (an Eden searcher whose few sandwiches
        # all landed with one member miner) are possible — the paper's
        # own inference shares this caveat — but must stay rare.
        assert len(set(recovered) - set(planted)) <= 2


def sim_result_self_searchers(sim_result):
    """The planted self-MEV personas (via their miner profiles)."""
    # The world object isn't in the result; recover personas from the
    # private-channel ground truth records.
    addresses = {t.searcher for t in sim_result.ground_truths
                 if t.private_pool and t.private_pool.startswith("self:")}

    class Persona:
        def __init__(self, address, pool):
            self.address = address

            class Policy:
                private_pool = pool
            self.policy = Policy()

    personas = []
    for truth in sim_result.ground_truths:
        if truth.private_pool and truth.private_pool.startswith("self:"):
            if truth.searcher in {p.address for p in personas}:
                continue
            personas.append(Persona(truth.searcher, truth.private_pool))
    return personas
