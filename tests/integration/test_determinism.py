"""Determinism regression: same seed ⇒ bit-identical world and tables.

This is the runtime counterpart of lint rule R002: the linter bans
ambient entropy statically; this test re-runs a full scenario twice with
one seed and asserts the chain (every block hash) and the aggregate MEV
measurement (Table 1) replay exactly.
"""

import pytest

from repro import run_inspector
from repro.analysis import build_table1
from repro.chain.transaction import reset_tx_counter
from repro.sim import ScenarioConfig, build_paper_scenario


def _run_world(seed):
    reset_tx_counter()
    config = ScenarioConfig(blocks_per_month=18, seed=seed)
    result = build_paper_scenario(config).run()
    dataset = run_inspector(result)
    block_hashes = [block.hash for block in result.node.iter_blocks()]
    table1 = [(row.strategy, row.extractions, row.via_flashbots,
               row.via_flash_loans, row.via_both)
              for row in build_table1(dataset)]
    totals = dataset.totals()
    return block_hashes, table1, totals


@pytest.fixture(scope="module")
def runs():
    first = _run_world(seed=11)
    second = _run_world(seed=11)
    other = _run_world(seed=12)
    return first, second, other


def test_same_seed_identical_chain(runs):
    first, second, _ = runs
    assert first[0] == second[0]


def test_same_seed_identical_mev_tables(runs):
    first, second, _ = runs
    assert first[1] == second[1]
    assert first[2] == second[2]


def test_different_seed_differs(runs):
    """Guards against the test trivially passing on a constant world."""
    first, _, other = runs
    assert first[0] != other[0]
