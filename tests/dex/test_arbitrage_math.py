"""Property tests for MEV sizing math (arbitrage optimum, sandwich bound)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chain.types import ether
from repro.dex.amm import get_amount_out
from repro.dex.arbitrage_math import (
    _victim_out_after_frontrun,
    max_sandwich_frontrun,
    optimal_two_pool_arbitrage,
    plan_sandwich,
    simulate_two_pool_arbitrage,
)

reserve_st = st.integers(10**15, 10**24)


class TestOptimalArbitrage:
    def test_balanced_pools_no_opportunity(self):
        plan = optimal_two_pool_arbitrage(ether(100), ether(100),
                                          ether(100), ether(100))
        assert plan is None

    def test_gapped_pools_yield_profit(self):
        # Pool 1 sells Y cheap (1 X = 2 Y), pool 2 buys Y dear (1 Y = 1 X).
        plan = optimal_two_pool_arbitrage(ether(100), ether(200),
                                          ether(150), ether(150))
        assert plan is not None
        assert plan.expected_profit > 0

    def test_plan_consistent_with_simulation(self):
        plan = optimal_two_pool_arbitrage(ether(100), ether(200),
                                          ether(150), ether(150))
        simulated = simulate_two_pool_arbitrage(
            plan.amount_in, ether(100), ether(200), ether(150), ether(150))
        assert simulated == plan.expected_out

    def test_tiny_gap_eaten_by_fees(self):
        # 0.1 % price gap < 0.6 % combined fees → no opportunity.
        plan = optimal_two_pool_arbitrage(ether(1_000), ether(1_001),
                                          ether(1_000), ether(1_000))
        assert plan is None

    def test_empty_pool_returns_none(self):
        assert optimal_two_pool_arbitrage(0, 1, 1, 1) is None

    @settings(max_examples=60)
    @given(reserve_st, reserve_st, reserve_st, reserve_st)
    def test_optimum_beats_neighbors(self, a, b, c, d):
        """The closed-form input out-profits ±1 % perturbations."""
        plan = optimal_two_pool_arbitrage(a, b, c, d)
        if plan is None:
            return

        def profit(x):
            if x <= 0:
                return 0
            return simulate_two_pool_arbitrage(x, a, b, c, d) - x

        best = profit(plan.amount_in)
        assert best > 0
        step = max(1, plan.amount_in // 100)
        assert best >= profit(plan.amount_in - step)
        assert best >= profit(plan.amount_in + step)

    @settings(max_examples=60)
    @given(reserve_st, reserve_st, reserve_st, reserve_st)
    def test_none_means_no_profit_anywhere(self, a, b, c, d):
        """When no plan is returned, sampled inputs all lose money."""
        if optimal_two_pool_arbitrage(a, b, c, d) is not None:
            return
        for fraction in (10**6, 10**3, 10, 2):
            x = a // fraction
            if x <= 0:
                continue
            assert simulate_two_pool_arbitrage(x, a, b, c, d) - x <= 0


class TestSandwichSizing:
    def test_tight_slippage_blocks_attack(self):
        r_in, r_out = ether(1_000), ether(1_000)
        victim_in = ether(10)
        exact_out = get_amount_out(victim_in, r_in, r_out)
        # Integer rounding may leave room for a dust-sized frontrun, but
        # never for a profitable one.
        frontrun = max_sandwich_frontrun(r_in, r_out, victim_in, exact_out)
        assert frontrun < 1_000  # wei-scale dust on 1000-ETH reserves
        assert plan_sandwich(r_in, r_out, victim_in, exact_out) is None

    def test_loose_slippage_allows_large_frontrun(self):
        r_in, r_out = ether(1_000), ether(1_000)
        victim_in = ether(10)
        floor = get_amount_out(victim_in, r_in, r_out) // 2  # 50 % slippage
        frontrun = max_sandwich_frontrun(r_in, r_out, victim_in, floor)
        assert frontrun > 0

    def test_boundary_is_exact(self):
        r_in, r_out = ether(500), ether(1_500)
        victim_in = ether(5)
        floor = get_amount_out(victim_in, r_in, r_out) * 95 // 100
        frontrun = max_sandwich_frontrun(r_in, r_out, victim_in, floor)
        assert _victim_out_after_frontrun(frontrun, r_in, r_out,
                                          victim_in, 30) >= floor
        assert _victim_out_after_frontrun(frontrun + 1, r_in, r_out,
                                          victim_in, 30) < floor

    def test_unsatisfiable_victim_returns_zero(self):
        r_in, r_out = ether(100), ether(100)
        victim_in = ether(1)
        impossible_floor = ether(2)
        assert max_sandwich_frontrun(r_in, r_out, victim_in,
                                     impossible_floor) == 0

    @settings(max_examples=50)
    @given(reserve_st, reserve_st, st.integers(10**12, 10**20),
           st.integers(1, 40))
    def test_victim_floor_always_respected(self, r_in, r_out, victim_in,
                                           slip_pct):
        fair = get_amount_out(victim_in, r_in, r_out)
        floor = fair * (100 - slip_pct) // 100
        plan = plan_sandwich(r_in, r_out, victim_in, floor)
        if plan is None:
            return
        assert plan.victim_out >= floor
        assert plan.expected_profit > 0

    def test_capital_cap_limits_frontrun(self):
        r_in, r_out = ether(1_000), ether(1_000)
        victim_in = ether(50)
        floor = get_amount_out(victim_in, r_in, r_out) // 2
        unlimited = plan_sandwich(r_in, r_out, victim_in, floor)
        capped = plan_sandwich(r_in, r_out, victim_in, floor,
                               max_capital=unlimited.frontrun_in // 2)
        assert capped.frontrun_in <= unlimited.frontrun_in // 2
        assert capped.expected_profit < unlimited.expected_profit

    def test_bigger_slippage_tolerance_bigger_profit(self):
        r_in, r_out = ether(1_000), ether(1_000)
        victim_in = ether(20)
        fair = get_amount_out(victim_in, r_in, r_out)
        loose = plan_sandwich(r_in, r_out, victim_in, fair * 90 // 100)
        tight = plan_sandwich(r_in, r_out, victim_in, fair * 99 // 100)
        if loose and tight:
            assert loose.expected_profit >= tight.expected_profit
