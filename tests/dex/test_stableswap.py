"""Tests for the Curve-style stableswap pool."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chain.execution import ExecutionContext, Revert
from repro.chain.state import WorldState
from repro.chain.transaction import Transaction
from repro.chain.types import address_from_label, ether
from repro.dex.amm import get_amount_out
from repro.dex.stableswap import StableSwapPool, compute_d, compute_y

TRADER = address_from_label("trader")
MINER = address_from_label("miner")


@pytest.fixture
def setup():
    state = WorldState()
    pool = StableSwapPool(venue="Curve", token0="DAI", token1="USDC",
                          amp=100)
    pool.add_liquidity(state, DAI=ether(1_000_000), USDC=ether(1_000_000))
    state.mint_token("DAI", TRADER, ether(100_000))
    state.mint_token("USDC", TRADER, ether(100_000))
    return state, pool


def make_ctx(state, pool):
    tx = Transaction(sender=TRADER, nonce=0, to=pool.address)
    return ExecutionContext(state, tx, block_number=1, coinbase=MINER,
                            contracts={pool.address: pool})


class TestInvariantMath:
    def test_d_of_balanced_pool_is_total(self):
        d = compute_d(100, (ether(1_000), ether(1_000)))
        assert d == pytest.approx(ether(2_000), rel=1e-9)

    def test_d_zero_for_empty_pool(self):
        assert compute_d(100, (0, 0)) == 0

    def test_one_sided_pool_rejected(self):
        with pytest.raises(ValueError):
            compute_d(100, (ether(1), 0))

    def test_y_recovers_balance(self):
        balances = (ether(800), ether(1_200))
        d = compute_d(100, balances)
        y = compute_y(100, d, balances[0])
        assert y == pytest.approx(balances[1], abs=10)

    @settings(max_examples=40)
    @given(st.integers(1, 5_000),
           st.integers(10**18, 10**24), st.integers(10**18, 10**24))
    def test_d_between_sum_bounds(self, amp, x0, x1):
        """D lies between the CP geometric bound and the sum."""
        d = compute_d(amp, (x0, x1))
        assert d <= x0 + x1 + 1
        assert d * d >= 4 * x0 * x1 - d  # 2*sqrt(x0*x1) <= D (approx)


class TestStableQuotes:
    def test_near_parity_on_balanced_pool(self, setup):
        state, pool = setup
        out = pool.quote_out(state, "DAI", ether(1_000))
        # Stableswap slippage must be tiny: > 99.9 % out (minus 4 bps fee)
        assert out > ether(1_000) * 999 // 1_000

    def test_flatter_than_constant_product(self, setup):
        state, pool = setup
        trade = ether(100_000)
        stable_out = pool.quote_out(state, "DAI", trade)
        cp_out = get_amount_out(trade, ether(1_000_000), ether(1_000_000),
                                fee_bps=4)
        assert stable_out > cp_out

    def test_higher_amp_flatter_curve(self):
        state = WorldState()
        low = StableSwapPool(venue="Curve", token0="DAI", token1="USDT",
                             amp=10)
        high = StableSwapPool(venue="Curve", token0="DAI", token1="USDC",
                              amp=2_000)
        low.add_liquidity(state, DAI=ether(1_000_000),
                          USDT=ether(1_000_000))
        high.add_liquidity(state, DAI=ether(1_000_000),
                           USDC=ether(1_000_000))
        trade = ether(200_000)
        assert (high.quote_out(state, "DAI", trade)
                > low.quote_out(state, "DAI", trade))

    def test_output_bounded_by_reserves(self, setup):
        state, pool = setup
        out = pool.quote_out(state, "DAI", ether(10_000_000))
        assert out < ether(1_000_000)

    def test_spot_price_near_one(self, setup):
        state, pool = setup
        assert pool.spot_price(state, "DAI") == pytest.approx(1.0,
                                                              rel=2e-3)


class TestStableSwapExecution:
    def test_swap_moves_tokens_and_emits(self, setup):
        state, pool = setup
        ctx = make_ctx(state, pool)
        out = pool.swap(ctx, "DAI", ether(1_000), TRADER)
        assert state.token_balance("USDC", TRADER) == ether(100_000) + out
        assert [type(l).__name__ for l in ctx.logs] == \
            ["SwapEvent", "SyncEvent"]

    def test_slippage_guard(self, setup):
        state, pool = setup
        ctx = make_ctx(state, pool)
        with pytest.raises(Revert):
            pool.swap(ctx, "DAI", ether(1_000), TRADER,
                      min_amount_out=ether(1_001))

    def test_round_trip_loses_money(self, setup):
        state, pool = setup
        ctx = make_ctx(state, pool)
        out = pool.swap(ctx, "DAI", ether(10_000), TRADER)
        back = pool.swap(ctx, "USDC", out, TRADER)
        assert back < ether(10_000)
