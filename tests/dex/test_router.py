"""Tests for swap/arbitrage intents executed through full transactions."""

import pytest

from repro.chain.block import BlockBuilder
from repro.chain.state import WorldState
from repro.chain.transaction import Transaction
from repro.chain.types import address_from_label, ether, gwei
from repro.dex.registry import SUSHISWAP, UNISWAP_V2, ExchangeRegistry
from repro.dex.router import (
    ArbitrageIntent,
    MultiHopSwapIntent,
    SwapIntent,
    route_tokens,
)

TRADER = address_from_label("trader")
MINER = address_from_label("miner")


@pytest.fixture
def world():
    state = WorldState()
    registry = ExchangeRegistry()
    uni = registry.create_pool(UNISWAP_V2, "WETH", "DAI")
    sushi = registry.create_pool(SUSHISWAP, "WETH", "DAI")
    link = registry.create_pool(UNISWAP_V2, "DAI", "LINK")
    uni.add_liquidity(state, WETH=ether(1_000), DAI=ether(3_000_000))
    sushi.add_liquidity(state, WETH=ether(1_000), DAI=ether(3_300_000))
    link.add_liquidity(state, DAI=ether(3_000_000), LINK=ether(400_000))
    state.credit_eth(TRADER, ether(10))
    state.mint_token("WETH", TRADER, ether(100))
    return state, registry, uni, sushi, link


def run(state, registry, intent, gas_limit=500_000):
    tx = Transaction(sender=TRADER, nonce=state.nonce(TRADER),
                     to=registry.pools[0].address, gas_price=gwei(10),
                     gas_limit=gas_limit, intent=intent)
    builder = BlockBuilder(state, number=1, timestamp=13, coinbase=MINER,
                           base_fee=0, contracts=registry.contracts)
    receipt = builder.apply_transaction(tx)
    builder.finalize()
    return receipt


class TestSwapIntent:
    def test_simple_swap(self, world):
        state, registry, uni, *_ = world
        receipt = run(state, registry,
                      SwapIntent(uni.address, "WETH", ether(1)))
        assert receipt.status
        assert state.token_balance("DAI", TRADER) > 0

    def test_slippage_reverts_whole_tx(self, world):
        state, registry, uni, *_ = world
        receipt = run(state, registry,
                      SwapIntent(uni.address, "WETH", ether(1),
                                 min_amount_out=ether(10_000)))
        assert not receipt.status
        assert state.token_balance("WETH", TRADER) == ether(100)

    def test_coinbase_tip_paid_on_success(self, world):
        state, registry, uni, *_ = world
        receipt = run(state, registry,
                      SwapIntent(uni.address, "WETH", ether(1),
                                 coinbase_tip=ether(1)))
        assert receipt.coinbase_transfer == ether(1)

    def test_unknown_pool_reverts(self, world):
        state, registry, *_ = world
        receipt = run(state, registry,
                      SwapIntent(address_from_label("nowhere"), "WETH",
                                 ether(1)))
        assert not receipt.status

    def test_nonpositive_amount_reverts(self, world):
        state, registry, uni, *_ = world
        receipt = run(state, registry, SwapIntent(uni.address, "WETH", 0))
        assert not receipt.status


class TestMultiHopSwap:
    def test_two_hop_route(self, world):
        state, registry, uni, _, link = world
        intent = MultiHopSwapIntent(route=[uni.address, link.address],
                                    token_in="WETH", amount_in=ether(1))
        receipt = run(state, registry, intent)
        assert receipt.status
        assert state.token_balance("LINK", TRADER) > 0
        # two swap events + two syncs
        assert len(receipt.logs) == 4

    def test_gas_grows_with_hops(self):
        one = MultiHopSwapIntent(route=["a"], token_in="X", amount_in=1)
        two = MultiHopSwapIntent(route=["a", "b"], token_in="X",
                                 amount_in=1)
        assert two.gas_estimate() > one.gas_estimate()

    def test_min_out_checked_at_end(self, world):
        state, registry, uni, _, link = world
        intent = MultiHopSwapIntent(route=[uni.address, link.address],
                                    token_in="WETH", amount_in=ether(1),
                                    min_amount_out=ether(10**6))
        receipt = run(state, registry, intent)
        assert not receipt.status
        assert state.token_balance("LINK", TRADER) == 0


class TestArbitrageIntent:
    def test_profitable_cycle_succeeds(self, world):
        state, registry, uni, sushi, _ = world
        # WETH cheap on uni → buy DAI.. wait: WETH price: uni 3000, sushi
        # 3300.  Buy WETH where cheap in DAI terms: route DAI→? Start in
        # WETH: sell WETH on sushi (dear), buy back on uni (cheap).
        intent = ArbitrageIntent(route=[sushi.address, uni.address],
                                 token_in="WETH", amount_in=ether(5))
        receipt = run(state, registry, intent)
        assert receipt.status
        assert state.token_balance("WETH", TRADER) > ether(100)

    def test_unprofitable_cycle_reverts(self, world):
        state, registry, uni, sushi, _ = world
        # Wrong direction: buy dear, sell cheap.
        intent = ArbitrageIntent(route=[uni.address, sushi.address],
                                 token_in="WETH", amount_in=ether(5))
        receipt = run(state, registry, intent)
        assert not receipt.status
        assert state.token_balance("WETH", TRADER) == ether(100)

    def test_open_cycle_reverts(self, world):
        state, registry, uni, _, link = world
        intent = ArbitrageIntent(route=[uni.address, link.address],
                                 token_in="WETH", amount_in=ether(1))
        receipt = run(state, registry, intent)
        assert not receipt.status

    def test_min_profit_enforced(self, world):
        state, registry, uni, sushi, _ = world
        intent = ArbitrageIntent(route=[sushi.address, uni.address],
                                 token_in="WETH", amount_in=ether(5),
                                 min_profit=ether(10_000))
        receipt = run(state, registry, intent)
        assert not receipt.status


class TestRouteTokens:
    def test_follows_pairs(self):
        tokens = route_tokens([("WETH", "DAI"), ("DAI", "LINK")], "WETH")
        assert tokens == ["WETH", "DAI", "LINK"]

    def test_rejects_disconnected_route(self):
        with pytest.raises(ValueError):
            route_tokens([("WETH", "DAI"), ("USDC", "LINK")], "WETH")
