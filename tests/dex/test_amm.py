"""Tests for constant-product AMM math and swap execution."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.chain.execution import ExecutionContext, Revert
from repro.chain.state import WorldState
from repro.chain.transaction import Transaction
from repro.chain.types import address_from_label, ether
from repro.dex.amm import (
    ConstantProductPool,
    get_amount_in,
    get_amount_out,
)

TRADER = address_from_label("trader")
MINER = address_from_label("miner")

reserves_st = st.integers(10**6, 10**27)
amounts_st = st.integers(1, 10**24)


class TestGetAmountOut:
    def test_known_value(self):
        # 1 in, 100/100 reserves, 0.3% fee → floor(0.997*100/100.997)
        out = get_amount_out(ether(1), ether(100), ether(100))
        assert out == 987_158_034_397_061_298

    def test_zero_fee_is_pure_constant_product(self):
        out = get_amount_out(1_000, 10**6, 10**6, fee_bps=0)
        assert out == (1_000 * 10**6) // (10**6 + 1_000)

    def test_rejects_nonpositive_input(self):
        with pytest.raises(ValueError):
            get_amount_out(0, 10**6, 10**6)

    def test_rejects_empty_pool(self):
        with pytest.raises(ValueError):
            get_amount_out(10, 0, 10**6)

    @given(amounts_st, reserves_st, reserves_st)
    def test_output_below_reserves(self, amount_in, r_in, r_out):
        assert get_amount_out(amount_in, r_in, r_out) < r_out

    @given(amounts_st, reserves_st, reserves_st)
    def test_invariant_never_decreases(self, amount_in, r_in, r_out):
        out = get_amount_out(amount_in, r_in, r_out)
        assert (r_in + amount_in) * (r_out - out) >= r_in * r_out

    @given(amounts_st, reserves_st, reserves_st)
    def test_monotone_in_input(self, amount_in, r_in, r_out):
        smaller = get_amount_out(amount_in, r_in, r_out)
        larger = get_amount_out(amount_in + 1, r_in, r_out)
        assert larger >= smaller

    @given(amounts_st, reserves_st, reserves_st)
    def test_round_trip_loses_money(self, amount_in, r_in, r_out):
        """Swapping there and back can never profit (no-free-money)."""
        out = get_amount_out(amount_in, r_in, r_out)
        if out == 0:
            return
        back = get_amount_out(out, r_out - out, r_in + amount_in)
        assert back <= amount_in


class TestGetAmountIn:
    @given(st.integers(1, 10**5), reserves_st, reserves_st)
    def test_quote_in_covers_quote_out(self, amount_out, r_in, r_out):
        if amount_out >= r_out:
            return
        needed = get_amount_in(amount_out, r_in, r_out)
        assert get_amount_out(needed, r_in, r_out) >= amount_out

    def test_rejects_draining_pool(self):
        with pytest.raises(ValueError):
            get_amount_in(10**6, 10**6, 10**6)


@pytest.fixture
def setup():
    state = WorldState()
    pool = ConstantProductPool(venue="UniswapV2", token0="WETH",
                               token1="DAI")
    pool.add_liquidity(state, WETH=ether(1_000), DAI=ether(3_000_000))
    state.mint_token("WETH", TRADER, ether(100))
    state.mint_token("DAI", TRADER, ether(100_000))
    return state, pool


def make_ctx(state, pool):
    tx = Transaction(sender=TRADER, nonce=0, to=pool.address)
    return ExecutionContext(state, tx, block_number=1, coinbase=MINER,
                            contracts={pool.address: pool})


class TestPoolConstruction:
    def test_tokens_canonically_ordered(self):
        pool = ConstantProductPool(venue="X", token0="WETH", token1="DAI")
        assert (pool.token0, pool.token1) == ("DAI", "WETH")

    def test_same_token_rejected(self):
        with pytest.raises(ValueError):
            ConstantProductPool(venue="X", token0="DAI", token1="DAI")

    def test_address_deterministic(self):
        a = ConstantProductPool(venue="X", token0="A", token1="B")
        b = ConstantProductPool(venue="X", token0="B", token1="A")
        assert a.address == b.address

    def test_fee_range_enforced(self):
        with pytest.raises(ValueError):
            ConstantProductPool(venue="X", token0="A", token1="B",
                                fee_bps=10_000)


class TestPoolQueries:
    def test_reserves(self, setup):
        state, pool = setup
        assert pool.reserve_of(state, "WETH") == ether(1_000)
        assert pool.reserve_of(state, "DAI") == ether(3_000_000)

    def test_other(self, setup):
        _, pool = setup
        assert pool.other("WETH") == "DAI"
        assert pool.other("DAI") == "WETH"
        with pytest.raises(ValueError):
            pool.other("USDC")

    def test_spot_price(self, setup):
        state, pool = setup
        assert pool.spot_price(state, "WETH") == pytest.approx(3_000.0)

    def test_quote_matches_formula(self, setup):
        state, pool = setup
        quote = pool.quote_out(state, "WETH", ether(1))
        manual = get_amount_out(ether(1), ether(1_000), ether(3_000_000))
        assert quote == manual


class TestSwapExecution:
    def test_swap_moves_tokens(self, setup):
        state, pool = setup
        ctx = make_ctx(state, pool)
        quoted = pool.quote_out(state, "WETH", ether(1))
        out = pool.swap(ctx, "WETH", ether(1), TRADER)
        assert out == quoted
        assert state.token_balance("WETH", TRADER) == ether(99)
        assert state.token_balance("DAI", TRADER) == ether(100_000) + out

    def test_swap_emits_swap_and_sync(self, setup):
        state, pool = setup
        ctx = make_ctx(state, pool)
        pool.swap(ctx, "WETH", ether(1), TRADER)
        kinds = [type(log).__name__ for log in ctx.logs]
        assert kinds == ["SwapEvent", "SyncEvent"]
        swap = ctx.logs[0]
        assert swap.venue == "UniswapV2"
        assert swap.token_in == "WETH"
        assert swap.amount_in == ether(1)

    def test_sync_reports_post_swap_reserves(self, setup):
        state, pool = setup
        ctx = make_ctx(state, pool)
        pool.swap(ctx, "WETH", ether(1), TRADER)
        sync = ctx.logs[1]
        assert (sync.reserve0, sync.reserve1) == pool.reserves(state)

    def test_slippage_guard_reverts(self, setup):
        state, pool = setup
        ctx = make_ctx(state, pool)
        quoted = pool.quote_out(state, "WETH", ether(1))
        with pytest.raises(Revert):
            pool.swap(ctx, "WETH", ether(1), TRADER,
                      min_amount_out=quoted + 1)

    def test_swap_without_funds_fails(self, setup):
        state, pool = setup
        ctx = make_ctx(state, pool)
        from repro.chain.state import InsufficientBalance
        with pytest.raises(InsufficientBalance):
            pool.swap(ctx, "WETH", ether(101), TRADER)

    def test_consecutive_swaps_worsen_price(self, setup):
        state, pool = setup
        ctx = make_ctx(state, pool)
        first = pool.swap(ctx, "WETH", ether(1), TRADER)
        second = pool.swap(ctx, "WETH", ether(1), TRADER)
        assert second < first
