"""Tests for Balancer-style weighted pools and the integer root math."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chain.execution import ExecutionContext, Revert
from repro.chain.state import WorldState
from repro.chain.transaction import Transaction
from repro.chain.types import address_from_label, ether
from repro.dex.amm import get_amount_out
from repro.dex.weighted import (
    WeightedPool,
    integer_nth_root,
    weighted_amount_out,
)

TRADER = address_from_label("w-trader")
MINER = address_from_label("w-miner")


class TestIntegerNthRoot:
    @given(st.integers(0, 10**40), st.integers(1, 6))
    def test_floor_root_exact(self, value, n):
        root = integer_nth_root(value, n)
        assert root**n <= value
        assert (root + 1)**n > value

    def test_perfect_powers(self):
        assert integer_nth_root(10**36, 2) == 10**18
        assert integer_nth_root(2**40, 4) == 2**10

    def test_validation(self):
        with pytest.raises(ValueError):
            integer_nth_root(-1, 2)
        with pytest.raises(ValueError):
            integer_nth_root(4, 0)


class TestWeightedFormula:
    def test_equal_weights_match_constant_product(self):
        """50/50 weighted == Uniswap V2 with the same fee (exactly, up
        to 1 wei of root-flooring)."""
        for amount in (10**15, 10**18, 37 * 10**17):
            weighted = weighted_amount_out(amount, ether(100),
                                           ether(300_000), 1, 1,
                                           fee_bps=30)
            cp = get_amount_out(amount, ether(100), ether(300_000),
                                fee_bps=30)
            assert abs(weighted - cp) <= cp // 10**9 + 2

    @settings(max_examples=50)
    @given(st.fractions(0, 1), st.integers(10**15, 10**24),
           st.integers(10**15, 10**24),
           st.sampled_from([(1, 1), (4, 1), (1, 4), (3, 2)]))
    def test_no_free_money(self, fraction, r_in, r_out, weights):
        """Round-tripping a weighted pool can never profit."""
        w_in, w_out = weights
        amount_in = max(1, int(r_in * fraction) // 2)
        out = weighted_amount_out(amount_in, r_in, r_out, w_in, w_out)
        if out <= 0 or out > (r_out - out) // 2:
            return  # return leg would exceed the max-in ratio
        back = weighted_amount_out(out, r_out - out, r_in + amount_in,
                                   w_out, w_in)
        assert back <= amount_in

    @settings(max_examples=50)
    @given(st.fractions(0, 1), st.integers(10**15, 10**24),
           st.integers(10**15, 10**24))
    def test_output_below_reserves(self, fraction, r_in, r_out):
        amount_in = max(1, int(r_in * fraction) // 2)
        assert weighted_amount_out(amount_in, r_in, r_out, 4, 1) < r_out

    def test_max_in_ratio_enforced(self):
        with pytest.raises(ValueError):
            weighted_amount_out(ether(51), ether(100), ether(100), 4, 1)

    def test_heavier_in_weight_less_slippage(self):
        """An 80/20 pool (WETH-heavy) slips less for WETH sellers than a
        20/80 pool with the same reserves."""
        big = ether(50)
        heavy = weighted_amount_out(big, ether(1_000), ether(3_000_000),
                                    4, 1)
        light = weighted_amount_out(big, ether(1_000), ether(3_000_000),
                                    1, 4)
        assert heavy > light


class TestWeightedPool:
    @pytest.fixture
    def setup(self):
        state = WorldState()
        pool = WeightedPool(venue="Balancer", token0="WETH",
                            token1="WBTC", weight0=4, weight1=1)
        # 80/20: spot parity needs B_wbtc = price·B_weth·(w_wbtc/w_weth)
        pool.add_liquidity(state, WETH=ether(1_400),
                           WBTC=ether(25))
        state.mint_token("WETH", TRADER, ether(100))
        state.mint_token("WBTC", TRADER, ether(10))
        return state, pool

    def test_weights_follow_canonical_order(self):
        pool = WeightedPool(venue="Balancer", token0="WETH",
                            token1="DAI", weight0=4, weight1=1)
        assert pool.weight_of("WETH") == 4
        assert pool.weight_of("DAI") == 1

    def test_spot_price_uses_weights(self, setup):
        state, pool = setup
        # (25/1) / (1400/4) = 25/350 ≈ 0.0714 WBTC per WETH
        assert pool.spot_price(state, "WETH") == \
            pytest.approx(25 / 350, rel=1e-9)

    def test_swap_moves_tokens_and_emits(self, setup):
        state, pool = setup
        tx = Transaction(sender=TRADER, nonce=0, to=pool.address)
        ctx = ExecutionContext(state, tx, block_number=1,
                               coinbase=MINER,
                               contracts={pool.address: pool})
        out = pool.swap(ctx, "WETH", ether(1), TRADER)
        assert out > 0
        assert state.token_balance("WBTC", TRADER) == ether(10) + out
        assert [type(l).__name__ for l in ctx.logs] == \
            ["SwapEvent", "SyncEvent"]

    def test_slippage_guard(self, setup):
        state, pool = setup
        tx = Transaction(sender=TRADER, nonce=0, to=pool.address)
        ctx = ExecutionContext(state, tx, block_number=1,
                               coinbase=MINER)
        quote = pool.quote_out(state, "WETH", ether(1))
        with pytest.raises(Revert):
            pool.swap(ctx, "WETH", ether(1), TRADER,
                      min_amount_out=quote + 1)

    def test_validation(self):
        with pytest.raises(ValueError):
            WeightedPool(venue="B", token0="A", token1="A")
        with pytest.raises(ValueError):
            WeightedPool(venue="B", token0="A", token1="C", weight0=0)
