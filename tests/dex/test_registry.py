"""Tests for the exchange registry and cross-venue price views."""

import pytest

from repro.chain.state import WorldState
from repro.chain.types import ether
from repro.dex.registry import (
    CURVE,
    SUSHISWAP,
    UNISWAP_V2,
    ExchangeRegistry,
)
from repro.dex.stableswap import StableSwapPool


@pytest.fixture
def registry():
    return ExchangeRegistry()


class TestRegistration:
    def test_create_pool_registers(self, registry):
        pool = registry.create_pool(UNISWAP_V2, "WETH", "DAI")
        assert registry.get(pool.address) is pool
        assert pool in registry.pools

    def test_curve_pools_are_stableswap(self, registry):
        pool = registry.create_pool(CURVE, "DAI", "USDC")
        assert isinstance(pool, StableSwapPool)

    def test_venue_fee_defaults(self, registry):
        sushi = registry.create_pool(SUSHISWAP, "WETH", "DAI")
        assert sushi.fee_bps == 30
        bancor = registry.create_pool("Bancor", "WETH", "DAI")
        assert bancor.fee_bps == 20

    def test_duplicate_pool_rejected(self, registry):
        registry.create_pool(UNISWAP_V2, "WETH", "DAI")
        with pytest.raises(ValueError):
            registry.create_pool(UNISWAP_V2, "WETH", "DAI")

    def test_same_pair_different_venue_ok(self, registry):
        registry.create_pool(UNISWAP_V2, "WETH", "DAI")
        registry.create_pool(SUSHISWAP, "WETH", "DAI")
        assert len(registry.pools_for_pair("WETH", "DAI")) == 2

    def test_contracts_map(self, registry):
        pool = registry.create_pool(UNISWAP_V2, "WETH", "DAI")
        assert registry.contracts == {pool.address: pool}


class TestLookups:
    def test_pair_lookup_order_insensitive(self, registry):
        registry.create_pool(UNISWAP_V2, "WETH", "DAI")
        assert registry.pools_for_pair("DAI", "WETH")
        assert registry.pools_for_pair("WETH", "DAI")

    def test_pools_with_token(self, registry):
        registry.create_pool(UNISWAP_V2, "WETH", "DAI")
        registry.create_pool(UNISWAP_V2, "WETH", "USDC")
        registry.create_pool(UNISWAP_V2, "DAI", "USDC")
        assert len(registry.pools_with_token("WETH")) == 2

    def test_venues_listing(self, registry):
        registry.create_pool(UNISWAP_V2, "WETH", "DAI")
        registry.create_pool(SUSHISWAP, "WETH", "DAI")
        assert registry.venues() == [SUSHISWAP, UNISWAP_V2]


class TestPriceGap:
    def test_needs_two_liquid_pools(self, registry):
        state = WorldState()
        pool = registry.create_pool(UNISWAP_V2, "WETH", "DAI")
        pool.add_liquidity(state, WETH=ether(100), DAI=ether(100))
        assert registry.best_price_gap(state, "WETH", "DAI") is None

    def test_detects_gap_direction(self, registry):
        state = WorldState()
        uni = registry.create_pool(UNISWAP_V2, "WETH", "DAI")
        sushi = registry.create_pool(SUSHISWAP, "WETH", "DAI")
        # WETH cheap on uni (3000 DAI), dear on sushi (3300 DAI)
        uni.add_liquidity(state, WETH=ether(1_000), DAI=ether(3_000_000))
        sushi.add_liquidity(state, WETH=ether(1_000),
                            DAI=ether(3_300_000))
        cheap, dear, ratio = registry.best_price_gap(state, "WETH", "DAI")
        assert cheap is uni
        assert dear is sushi
        assert ratio == pytest.approx(1.1)

    def test_illiquid_pools_skipped(self, registry):
        state = WorldState()
        uni = registry.create_pool(UNISWAP_V2, "WETH", "DAI")
        sushi = registry.create_pool(SUSHISWAP, "WETH", "DAI")
        uni.add_liquidity(state, WETH=ether(1_000), DAI=ether(3_000_000))
        sushi.add_liquidity(state, WETH=0, DAI=0)
        assert registry.best_price_gap(state, "WETH", "DAI") is None
