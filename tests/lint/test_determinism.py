"""R002 — determinism positives and negatives."""

from tests.lint.conftest import run_lint, rule_ids


class TestPositive:
    def test_module_level_random_call_flagged(self):
        findings = run_lint(
            """
            import random

            def roll() -> float:
                return random.random()
            """, module="repro.agents.dice", rules=["R002"])
        assert rule_ids(findings) == ["R002"]
        assert "random.Random" in findings[0].message

    def test_aliased_random_module_flagged(self):
        findings = run_lint(
            """
            import random as rnd

            def pick(items: list) -> object:
                return rnd.choice(items)
            """, module="repro.sim.noise", rules=["R002"])
        assert rule_ids(findings) == ["R002"]

    def test_from_random_import_flagged(self):
        findings = run_lint(
            """
            from random import randint
            """, module="repro.chain.jitter", rules=["R002"])
        assert rule_ids(findings) == ["R002"]

    def test_wall_clock_flagged(self):
        findings = run_lint(
            """
            import time

            def stamp() -> float:
                return time.time()
            """, module="repro.chain.clock", rules=["R002"])
        assert rule_ids(findings) == ["R002"]

    def test_os_urandom_flagged(self):
        findings = run_lint(
            """
            import os

            def salt() -> bytes:
                return os.urandom(8)
            """, module="repro.flashbots.salt", rules=["R002"])
        assert rule_ids(findings) == ["R002"]

    def test_set_iteration_flagged(self):
        findings = run_lint(
            """
            def drain(pending: list) -> list:
                return [tx for tx in set(pending)]
            """, module="repro.chain.mempool2", rules=["R002"])
        assert rule_ids(findings) == ["R002"]
        assert "sorted" in findings[0].message

    def test_for_over_set_literal_flagged(self):
        findings = run_lint(
            """
            def visit() -> None:
                for venue in {"UniswapV2", "SushiSwap"}:
                    pass
            """, module="repro.sim.venues", rules=["R002"])
        assert rule_ids(findings) == ["R002"]


class TestAliasRegression:
    """The forms the rule used to miss (regression pins).

    Unseeded randomness reached through an alias — either a bound
    ``Random()`` instance or a module alias created by assignment —
    must flag exactly like the direct forms.
    """

    def test_unseeded_random_ctor_flagged(self):
        findings = run_lint(
            """
            import random

            def make() -> random.Random:
                return random.Random()
            """, module="repro.agents.rng1", rules=["R002"])
        assert rule_ids(findings) == ["R002"]
        assert "unseeded" in findings[0].message

    def test_unseeded_instance_alias_flagged(self):
        findings = run_lint(
            """
            import random

            def roll() -> float:
                r = random.Random()
                return r.random()
            """, module="repro.agents.rng2", rules=["R002"])
        # flagged at the construction: the alias draws OS entropy
        assert rule_ids(findings) == ["R002"]
        assert "OS entropy" in findings[0].message

    def test_from_import_random_fn_flagged(self):
        findings = run_lint(
            """
            from random import random

            def roll() -> float:
                return random()
            """, module="repro.agents.rng3", rules=["R002"])
        assert rule_ids(findings) == ["R002"]

    def test_unseeded_imported_random_class_flagged(self):
        findings = run_lint(
            """
            from random import Random

            def make() -> Random:
                return Random()
            """, module="repro.agents.rng4", rules=["R002"])
        assert rule_ids(findings) == ["R002"]
        assert "unseeded" in findings[0].message

    def test_module_alias_by_assignment_flagged(self):
        findings = run_lint(
            """
            import random

            r = random

            def roll() -> float:
                return r.random()
            """, module="repro.agents.rng5", rules=["R002"])
        assert rule_ids(findings) == ["R002"]
        assert "module-level" in findings[0].message

    def test_seeded_imported_random_class_ok(self):
        findings = run_lint(
            """
            from random import Random

            def make(seed: int) -> Random:
                return Random(seed)
            """, module="repro.agents.rng6", rules=["R002"])
        assert findings == []

    def test_unrelated_zero_arg_ctor_ok(self):
        findings = run_lint(
            """
            class Random:
                pass

            def make() -> object:
                return Random()
            """, module="repro.agents.rng7", rules=["R002"])
        # a local class that merely shares the name must not flag
        assert findings == []


class TestNegative:
    def test_seeded_random_construction_ok(self):
        findings = run_lint(
            """
            import random

            def make_rng(seed: int) -> random.Random:
                return random.Random(seed)
            """, module="repro.sim.worldx", rules=["R002"])
        assert findings == []

    def test_injected_rng_calls_ok(self):
        findings = run_lint(
            """
            import random

            def roll(rng: random.Random) -> float:
                return rng.random()
            """, module="repro.agents.dice2", rules=["R002"])
        assert findings == []

    def test_sorted_set_iteration_ok(self):
        findings = run_lint(
            """
            def drain(pending: list) -> list:
                return [tx for tx in sorted(set(pending))]
            """, module="repro.chain.mempool3", rules=["R002"])
        assert findings == []

    def test_set_membership_ok(self):
        findings = run_lint(
            """
            def seen(tx: str, used: set) -> bool:
                return tx in used
            """, module="repro.chain.track", rules=["R002"])
        assert findings == []
