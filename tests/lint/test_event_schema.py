"""R004 — event-schema positives and negatives (real events.py schema)."""

from tests.lint.conftest import run_lint, rule_ids


class TestReaderPositive:
    def test_unknown_attribute_on_annotated_param(self):
        findings = run_lint(
            """
            from repro.chain.events import SwapEvent

            def gain(event: SwapEvent) -> int:
                return event.amount_inn
            """, module="repro.core.heuristics.bad", rules=["R004"])
        assert rule_ids(findings) == ["R004"]
        assert "amount_inn" in findings[0].message

    def test_unknown_attribute_after_isinstance(self):
        findings = run_lint(
            """
            from repro.chain.events import SwapEvent

            def takers(logs: list) -> list:
                out = []
                for log in logs:
                    if isinstance(log, SwapEvent):
                        out.append(log.takr)
                return out
            """, module="repro.core.heuristics.bad2", rules=["R004"])
        assert rule_ids(findings) == ["R004"]

    def test_unknown_attribute_via_list_iteration(self):
        findings = run_lint(
            """
            from typing import List

            from repro.chain.events import LiquidationEvent

            def borrowers(events: List[LiquidationEvent]) -> list:
                return [event.borower for event in events]
            """, module="repro.core.heuristics.bad3", rules=["R004"])
        assert rule_ids(findings) == ["R004"]

    def test_unknown_attribute_via_local_helper_return(self):
        findings = run_lint(
            """
            from typing import List

            from repro.chain.events import SwapEvent

            def _collect() -> List[SwapEvent]:
                return []

            def scan() -> int:
                total = 0
                for swap in _collect():
                    total += swap.amount_out_wei
                return total
            """, module="repro.core.heuristics.bad4", rules=["R004"])
        assert rule_ids(findings) == ["R004"]


class TestEmitterPositive:
    def test_undeclared_keyword_flagged(self):
        findings = run_lint(
            """
            from repro.chain.events import SwapEvent

            def emit() -> SwapEvent:
                return SwapEvent(address="0xpool", takerr="0xbot")
            """, module="repro.dex.badpool", rules=["R004"])
        assert rule_ids(findings) == ["R004"]
        assert "takerr" in findings[0].message

    def test_missing_address_flagged(self):
        findings = run_lint(
            """
            from repro.chain.events import TransferEvent

            def emit() -> TransferEvent:
                return TransferEvent(token="WETH", amount=1)
            """, module="repro.chain.badtoken", rules=["R004"])
        assert rule_ids(findings) == ["R004"]
        assert "address" in findings[0].message

    def test_positional_construction_flagged(self):
        findings = run_lint(
            """
            from repro.chain.events import TransferEvent

            def emit() -> TransferEvent:
                return TransferEvent("0xtoken")
            """, module="repro.chain.badtoken2", rules=["R004"])
        assert rule_ids(findings) == ["R004"]
        assert "keyword" in findings[0].message

    def test_stamped_coordinates_not_constructor_fields(self):
        # block_number is declared with field(init=False): settable by
        # the block builder via stamp(), not at construction.
        findings = run_lint(
            """
            from repro.chain.events import TransferEvent

            def emit() -> TransferEvent:
                return TransferEvent(address="0xtok", block_number=3)
            """, module="repro.chain.badtoken3", rules=["R004"])
        assert rule_ids(findings) == ["R004"]


class TestNegative:
    def test_declared_fields_and_stamp_ok(self):
        findings = run_lint(
            """
            from typing import List

            from repro.chain.events import SwapEvent

            def emit() -> SwapEvent:
                return SwapEvent(address="0xpool", venue="UniswapV2",
                                 taker="0xbot", recipient="0xbot",
                                 token_in="WETH", token_out="DAI",
                                 amount_in=10, amount_out=9)

            def read(swaps: List[SwapEvent]) -> list:
                swaps = sorted(swaps,
                               key=lambda s: (s.tx_index, s.log_index))
                return [(s.taker, s.amount_in, s.tx_hash)
                        for s in swaps]
            """, module="repro.core.heuristics.good", rules=["R004"])
        assert findings == []

    def test_isinstance_union_and_subscript_ok(self):
        findings = run_lint(
            """
            from typing import Dict, List

            from repro.chain.events import SwapEvent, SyncEvent

            def group() -> Dict[str, List[SwapEvent]]:
                return {}

            def last_sync(logs: list) -> int:
                reserve = 0
                for log in logs:
                    if isinstance(log, (SwapEvent, SyncEvent)):
                        reserve = log.log_index or 0
                for pool, swaps in group().items():
                    first = swaps[0]
                    reserve += first.amount_in
                return reserve
            """, module="repro.core.heuristics.good2", rules=["R004"])
        assert findings == []

    def test_modules_without_event_imports_skipped(self):
        findings = run_lint(
            """
            def unrelated(thing: object) -> object:
                return thing.whatever
            """, module="repro.core.heuristics.good3", rules=["R004"])
        assert findings == []
