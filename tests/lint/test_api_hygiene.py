"""R005 — public-API hygiene positives and negatives."""

from tests.lint.conftest import run_lint, rule_ids


class TestPositive:
    def test_unannotated_public_function_flagged(self):
        findings = run_lint(
            """
            def detect(node, prices):
                return []
            """, module="repro.core.detect", rules=["R005"])
        assert rule_ids(findings) == ["R005"]
        assert "node" in findings[0].message
        assert "return" in findings[0].message

    def test_missing_return_annotation_flagged(self):
        findings = run_lint(
            """
            def count(records: list):
                return len(records)
            """, module="repro.core.countx", rules=["R005"])
        assert rule_ids(findings) == ["R005"]

    def test_public_method_flagged(self):
        findings = run_lint(
            """
            class Inspector:
                def run(self, blocks):
                    return blocks
            """, module="repro.core.inspectx", rules=["R005"])
        assert rule_ids(findings) == ["R005"]
        assert "Inspector.run" in findings[0].message

    def test_all_restricts_but_still_checks_exports(self):
        findings = run_lint(
            """
            __all__ = ["exported"]

            def exported(x):
                return x

            def also_public_but_not_exported(y):
                return y
            """, module="repro.core.allx", rules=["R005"])
        assert rule_ids(findings) == ["R005"]
        assert "exported" in findings[0].message


class TestNegative:
    def test_fully_annotated_ok(self):
        findings = run_lint(
            """
            from typing import List, Optional

            def detect(node: object, limit: Optional[int] = None,
                       ) -> List[int]:
                return []

            class Inspector:
                def __init__(self, node: object) -> None:
                    self.node = node

                def run(self, blocks: int) -> int:
                    return blocks
            """, module="repro.core.goodapi", rules=["R005"])
        assert findings == []

    def test_private_helpers_ignored(self):
        findings = run_lint(
            """
            def _helper(x):
                return x
            """, module="repro.core.privx", rules=["R005"])
        assert findings == []

    def test_other_packages_out_of_scope(self):
        findings = run_lint(
            """
            def loose(x):
                return x
            """, module="repro.sim.loosey", rules=["R005"])
        assert findings == []
