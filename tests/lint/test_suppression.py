"""Suppression comments: line scope, line-above scope, file scope."""

from tests.lint.conftest import run_lint, rule_ids


def test_same_line_suppression():
    findings = run_lint(
        """
        def fee(amount: int) -> int:
            return amount / 2  # repro-lint: disable=R001
        """, module="repro.chain.supp1", rules=["R001"])
    assert findings == []


def test_line_above_suppression():
    findings = run_lint(
        """
        def fee(amount: int) -> int:
            # repro-lint: disable=R001
            return amount / 2
        """, module="repro.chain.supp2", rules=["R001"])
    assert findings == []


def test_suppression_lists_multiple_rules():
    findings = run_lint(
        """
        import random

        def fee(amount: int) -> int:
            return int(amount / random.random())  # repro-lint: disable=R001,R002
        """, module="repro.chain.supp3", rules=["R001", "R002"])
    assert findings == []


def test_wrong_rule_id_does_not_suppress():
    findings = run_lint(
        """
        def fee(amount: int) -> int:
            return amount / 2  # repro-lint: disable=R002
        """, module="repro.chain.supp4", rules=["R001"])
    assert rule_ids(findings) == ["R001"]


def test_trailing_comment_does_not_bleed_to_next_line():
    findings = run_lint(
        """
        def fees(amount: int) -> tuple:
            a = amount / 2  # repro-lint: disable=R001
            b = amount / 3
            return (a, b)
        """, module="repro.chain.supp8", rules=["R001"])
    assert rule_ids(findings) == ["R001"]
    assert findings[0].line == 4


def test_file_wide_suppression():
    findings = run_lint(
        """
        # repro-lint: disable-file=R001

        def fee(amount: int) -> int:
            return amount / 2

        def tax(amount: int) -> int:
            return amount / 3
        """, module="repro.chain.supp5", rules=["R001"])
    assert findings == []


def test_disable_all():
    findings = run_lint(
        """
        import random

        def fee(amount: int) -> int:
            return int(amount / random.random())  # repro-lint: disable=all
        """, module="repro.chain.supp6", rules=["R001", "R002"])
    assert findings == []


class TestDecoratedDefScope:
    """A directive on a decorator line covers the whole decorated def."""

    def test_directive_on_decorator_line_covers_body(self):
        findings = run_lint(
            """
            def deco(f):
                return f

            @deco  # repro-lint: disable=R001
            def fee(amount: int) -> int:
                return amount / 2
            """, module="repro.chain.supp9", rules=["R001"])
        assert findings == []

    def test_standalone_directive_above_decorator_covers_body(self):
        findings = run_lint(
            """
            def deco(f):
                return f

            # repro-lint: disable=R001
            @deco
            def fee(amount: int) -> int:
                return amount / 2
            """, module="repro.chain.supp10", rules=["R001"])
        assert findings == []

    def test_decorator_directive_does_not_bleed_past_def(self):
        findings = run_lint(
            """
            def deco(f):
                return f

            @deco  # repro-lint: disable=R001
            def fee(amount: int) -> int:
                return amount / 2

            def tax(amount: int) -> int:
                return amount / 3
            """, module="repro.chain.supp11", rules=["R001"])
        assert rule_ids(findings) == ["R001"]
        assert findings[0].line == 10

    def test_wrong_rule_on_decorator_does_not_suppress(self):
        findings = run_lint(
            """
            def deco(f):
                return f

            @deco  # repro-lint: disable=R002
            def fee(amount: int) -> int:
                return amount / 2
            """, module="repro.chain.supp12", rules=["R001"])
        assert rule_ids(findings) == ["R001"]


class TestMultiLineStatementScope:
    """A directive anywhere on a wrapped simple statement covers the
    whole statement span — but compound headers never leak into their
    bodies."""

    def test_directive_on_last_line_covers_statement_start(self):
        findings = run_lint(
            """
            def fee(amount: int, parts: int) -> int:
                total = (amount /
                         parts)  # repro-lint: disable=R001
                return int(total)
            """, module="repro.chain.supp13", rules=["R001"])
        assert findings == []

    def test_directive_on_first_line_covers_statement_end(self):
        findings = run_lint(
            """
            import random

            def fee(amount: int) -> int:
                total = int(  # repro-lint: disable=R002
                    amount * random.random())
                return total
            """, module="repro.chain.supp14", rules=["R002"])
        assert findings == []

    def test_compound_header_directive_does_not_cover_body(self):
        findings = run_lint(
            """
            def fee(amount: int, flag: bool) -> int:
                if flag:  # repro-lint: disable=R001
                    return amount / 2
                return amount
            """, module="repro.chain.supp15", rules=["R001"])
        assert rule_ids(findings) == ["R001"]

    def test_multiline_scope_does_not_bleed_to_next_statement(self):
        findings = run_lint(
            """
            def fees(amount: int, parts: int) -> tuple:
                a = (amount /
                     parts)  # repro-lint: disable=R001
                b = amount / 3
                return (a, b)
            """, module="repro.chain.supp16", rules=["R001"])
        assert rule_ids(findings) == ["R001"]
        assert findings[0].line == 5


def test_directive_inside_string_ignored():
    findings = run_lint(
        '''
        NOTE = "# repro-lint: disable-file=R001"

        def fee(amount: int) -> int:
            return amount / 2
        ''', module="repro.chain.supp7", rules=["R001"])
    assert rule_ids(findings) == ["R001"]
