"""Suppression comments: line scope, line-above scope, file scope."""

from tests.lint.conftest import run_lint, rule_ids


def test_same_line_suppression():
    findings = run_lint(
        """
        def fee(amount: int) -> int:
            return amount / 2  # repro-lint: disable=R001
        """, module="repro.chain.supp1", rules=["R001"])
    assert findings == []


def test_line_above_suppression():
    findings = run_lint(
        """
        def fee(amount: int) -> int:
            # repro-lint: disable=R001
            return amount / 2
        """, module="repro.chain.supp2", rules=["R001"])
    assert findings == []


def test_suppression_lists_multiple_rules():
    findings = run_lint(
        """
        import random

        def fee(amount: int) -> int:
            return int(amount / random.random())  # repro-lint: disable=R001,R002
        """, module="repro.chain.supp3", rules=["R001", "R002"])
    assert findings == []


def test_wrong_rule_id_does_not_suppress():
    findings = run_lint(
        """
        def fee(amount: int) -> int:
            return amount / 2  # repro-lint: disable=R002
        """, module="repro.chain.supp4", rules=["R001"])
    assert rule_ids(findings) == ["R001"]


def test_trailing_comment_does_not_bleed_to_next_line():
    findings = run_lint(
        """
        def fees(amount: int) -> tuple:
            a = amount / 2  # repro-lint: disable=R001
            b = amount / 3
            return (a, b)
        """, module="repro.chain.supp8", rules=["R001"])
    assert rule_ids(findings) == ["R001"]
    assert findings[0].line == 4


def test_file_wide_suppression():
    findings = run_lint(
        """
        # repro-lint: disable-file=R001

        def fee(amount: int) -> int:
            return amount / 2

        def tax(amount: int) -> int:
            return amount / 3
        """, module="repro.chain.supp5", rules=["R001"])
    assert findings == []


def test_disable_all():
    findings = run_lint(
        """
        import random

        def fee(amount: int) -> int:
            return int(amount / random.random())  # repro-lint: disable=all
        """, module="repro.chain.supp6", rules=["R001", "R002"])
    assert findings == []


def test_directive_inside_string_ignored():
    findings = run_lint(
        '''
        NOTE = "# repro-lint: disable-file=R001"

        def fee(amount: int) -> int:
            return amount / 2
        ''', module="repro.chain.supp7", rules=["R001"])
    assert rule_ids(findings) == ["R001"]
