"""R101/R102/R103 against the seeded fixture packages.

Every ``*_tp`` fixture must produce its seeded findings; every paired
``*_tn`` fixture must produce **zero** (the analyzers' false-positive
budget on these shapes is exactly nothing).
"""

from pathlib import Path

import pytest

from repro.lint import LintConfig
from repro.lint.flow import run_deep

FIXTURES = Path(__file__).resolve().parent / "fixtures" / "flow"


def deep(fixture: str, rule_options=None, tests_root=None):
    config = LintConfig(rule_options=rule_options or {})
    report = run_deep([FIXTURES / fixture / "proj"], config,
                      tests_root=tests_root)
    return report.findings


def by_rule(findings, rule_id):
    return [f for f in findings if f.rule_id == rule_id]


class TestR101Taint:
    def test_true_positives(self, tmp_path):
        findings = deep("r101_tp", tests_root=str(tmp_path))
        taint = by_rule(findings, "R101")
        assert len(taint) == 2
        paths = {f.path for f in taint}
        assert all(path.endswith("emit.py") for path in paths)
        messages = " | ".join(f.message for f in taint)
        assert "hash_of" in messages
        assert "time.time()" in messages
        # the two-hop flow names the intermediate helper it crossed
        assert "via " in messages

    def test_true_negatives(self, tmp_path):
        findings = deep("r101_tn", tests_root=str(tmp_path))
        assert by_rule(findings, "R101") == []

    def test_sanctioned_list_silences_a_source(self, tmp_path):
        options = {"R101": {
            "sanctioned": ["proj.clock:stamp", "proj.clock:jitter"]}}
        findings = deep("r101_tp", rule_options=options,
                        tests_root=str(tmp_path))
        assert by_rule(findings, "R101") == []


class TestR102Pairing:
    def test_true_positives(self, tmp_path):
        findings = by_rule(
            deep("r102_tp", tests_root=str(tmp_path)), "R102")
        messages = [f.message for f in findings]
        assert any("lost_reference" in m and "no such" in m
                   for m in messages)
        assert any("toggle='indexed'" in m and "never consults" in m
                   for m in messages)
        assert any("no test" in m and "walk_reference" in m
                   for m in messages)
        assert any("bypasses" in m and "scan_reference" in m
                   for m in messages)
        bypass = [f for f in findings if "bypasses" in f.message]
        assert bypass[0].path.endswith("bypass.py")

    def test_true_negatives(self):
        tests_root = str(FIXTURES / "r102_tn" / "tests")
        findings = deep("r102_tn", tests_root=tests_root)
        assert by_rule(findings, "R102") == []

    def test_missing_equivalence_coverage_flags(self, tmp_path):
        # same well-formed pairs, but pointed at an empty test tree
        findings = by_rule(
            deep("r102_tn", tests_root=str(tmp_path)), "R102")
        assert len(findings) == 2
        assert any("ordered_reference" in f.message for f in findings)
        assert any("fast_paths=False" in f.message for f in findings)


R103_ROOTS = {"R103": {
    "roots": ["proj.engine:Runner.run_chunk",
              "proj.engine:Executor.execute",
              "proj.engine:_init"],
    "allow-globals": ["proj.engine._WORKER"],
}}


class TestR103Parallel:
    def test_true_positives(self, tmp_path):
        findings = by_rule(
            deep("r103_tp", rule_options=R103_ROOTS,
                 tests_root=str(tmp_path)), "R103")
        messages = [f.message for f in findings]
        assert len(findings) == 3
        assert any("COUNTER" in m for m in messages)
        assert any("CACHE" in m and "shared" in m for m in messages)
        assert any("lambda" in m and "pickled" in m for m in messages)
        # reachability witness names the root
        assert any("run_chunk" in m for m in messages)

    def test_true_negatives(self, tmp_path):
        findings = by_rule(
            deep("r103_tn", rule_options=R103_ROOTS,
                 tests_root=str(tmp_path)), "R103")
        assert findings == []

    def test_allow_list_is_load_bearing(self, tmp_path):
        options = {"R103": {
            "roots": R103_ROOTS["R103"]["roots"],
            "allow-globals": []}}
        findings = by_rule(
            deep("r103_tn", rule_options=options,
                 tests_root=str(tmp_path)), "R103")
        assert len(findings) == 1
        assert "_WORKER" in findings[0].message


class TestRepoIsDeepClean:
    def test_src_tree_has_no_deep_findings(self):
        repo_root = Path(__file__).resolve().parents[2]
        from repro.lint import load_config
        config = load_config(pyproject=repo_root / "pyproject.toml")
        report = run_deep(
            [repo_root / "src"], config,
            tests_root=str(repo_root / "tests"))
        assert report.findings == []
        # all four registered fast-path modules were seen
        assert report.modules > 50
        assert report.functions > 500

    def test_all_known_pairs_are_registered(self):
        """The PR-5 pairs must carry @fast_path markers (R102 scope)."""
        repo_root = Path(__file__).resolve().parents[2]
        from repro.lint import LintConfig as Cfg
        from repro.lint.flow.project import load_project
        project = load_project([repo_root / "src"], Cfg())
        marked = set()
        for name, fn in project.functions.items():
            if any(d.get("name") == "fast_path"
                   for d in fn.decorators):
                marked.add(name)
        assert "repro.chain.mempool:Mempool.ordered" in marked
        assert "repro.chain.node:ArchiveNode.iter_blocks" in marked
        assert "repro.chain.node:ArchiveNode.get_logs" in marked
        assert "repro.agents.searcher:Searcher._probe_cycle" in marked \
            or ("repro.agents.searcher:ArbitrageSearcher._probe_cycle"
                in marked)
        assert "repro.sim.world:World._run_searchers" in marked
        assert "repro.sim.world:World._self_mev_sequences" in marked
        assert "repro.sim.scenario:build_paper_scenario" in marked
