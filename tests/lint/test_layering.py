"""R003 — layering positives and negatives."""

from tests.lint.conftest import run_lint, rule_ids


class TestPositive:
    def test_core_importing_sim_flagged(self):
        findings = run_lint(
            """
            from repro.sim.world import World
            """, module="repro.core.cheat", rules=["R003"])
        assert rule_ids(findings) == ["R003"]
        assert "ground truth" in findings[0].message

    def test_core_importing_agents_flagged(self):
        findings = run_lint(
            """
            import repro.agents.searcher
            """, module="repro.core.heuristics.peek", rules=["R003"])
        assert rule_ids(findings) == ["R003"]

    def test_chain_importing_core_flagged(self):
        findings = run_lint(
            """
            from repro.core.datasets import MevDataset
            """, module="repro.chain.upward", rules=["R003"])
        assert rule_ids(findings) == ["R003"]

    def test_from_repro_import_subpackage_flagged(self):
        # ``from repro import sim`` imports the forbidden subpackage
        # even though the dotted target is just ``repro``.
        findings = run_lint(
            """
            from repro import sim
            """, module="repro.analysis.peek", rules=["R003"])
        assert rule_ids(findings) == ["R003"]

    def test_one_finding_per_import_statement(self):
        findings = run_lint(
            """
            from repro.sim import ScenarioConfig, build_paper_scenario
            """, module="repro.analysis.sweep", rules=["R003"])
        assert rule_ids(findings) == ["R003"]


class TestNegative:
    def test_core_importing_chain_ok(self):
        findings = run_lint(
            """
            from repro.chain.events import SwapEvent
            from repro.chain.node import ArchiveNode
            """, module="repro.core.heuristics.fine", rules=["R003"])
        assert findings == []

    def test_calendar_allowlisted(self):
        findings = run_lint(
            """
            from repro.sim.calendar import StudyCalendar
            """, module="repro.analysis.figuresx", rules=["R003"])
        assert findings == []

    def test_sim_importing_agents_ok(self):
        # The simulator composing agents is the intended direction.
        findings = run_lint(
            """
            from repro.agents.searcher import Searcher
            """, module="repro.sim.scenariox", rules=["R003"])
        assert findings == []

    def test_custom_allow_option(self):
        from repro.lint import LintConfig
        config = LintConfig(enable=["R003"])
        config.rule_options["R003"] = {
            "allow": ["repro.sim.calendar", "repro.sim.config"]}
        findings = run_lint(
            """
            from repro.sim.config import ScenarioConfig
            """, module="repro.analysis.custom", config=config)
        assert findings == []
