"""Shared helpers for the linter's own test suite.

``run_lint`` lints an inline snippet while *posing* as a given dotted
module (rule applicability is package-based), against the real event
schema in ``src/repro/chain/events.py``.
"""

import textwrap
from pathlib import Path
from typing import List, Optional, Sequence

import pytest

from repro.lint import Finding, LintConfig, lint_source, make_rules

REPO_ROOT = Path(__file__).resolve().parents[2]
EVENTS_PATH = REPO_ROOT / "src" / "repro" / "chain" / "events.py"


def run_lint(source: str, module: str,
             rules: Optional[Sequence[str]] = None,
             config: Optional[LintConfig] = None) -> List[Finding]:
    if config is None:
        config = LintConfig(events_path=str(EVENTS_PATH))
    rule_objs = make_rules(rules if rules is not None else config.enable,
                           config.options_for)
    return lint_source(textwrap.dedent(source),
                       path=Path("snippet.py"), config=config,
                       rules=rule_objs, module=module,
                       display_path="snippet.py")


def rule_ids(findings: Sequence[Finding]) -> List[str]:
    return [finding.rule_id for finding in findings]


@pytest.fixture
def fixture_tree(tmp_path):
    """Build a mini ``src/repro`` tree in tmp_path for engine/CLI tests.

    Returns a writer: ``add("repro/chain/mod.py", source)``; the tree
    ships the real ``events.py`` so R004 resolves its schema from the
    tree itself (no ``events_path`` override).
    """
    src = tmp_path / "src"

    def add(relative: str, source: str = "") -> Path:
        path = src / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        directory = path.parent
        while directory != src and directory != directory.parent:
            init = directory / "__init__.py"
            if not init.exists():
                init.write_text("")
            directory = directory.parent
        path.write_text(textwrap.dedent(source))
        return path

    add("repro/chain/events.py", EVENTS_PATH.read_text())
    return add
