"""R001 — wei-safety positives and negatives."""

from tests.lint.conftest import run_lint, rule_ids


class TestPositive:
    def test_true_division_flagged(self):
        findings = run_lint(
            """
            def fee(amount: int) -> int:
                return amount / 2
            """, module="repro.chain.fees", rules=["R001"])
        assert rule_ids(findings) == ["R001"]
        assert findings[0].line == 3
        assert "//" in findings[0].message

    def test_float_call_flagged(self):
        findings = run_lint(
            """
            def widen(amount: int) -> int:
                return int(float(amount))
            """, module="repro.dex.math", rules=["R001"])
        assert rule_ids(findings) == ["R001"]

    def test_float_literal_in_arithmetic_flagged(self):
        findings = run_lint(
            """
            def bump(amount: int) -> int:
                return int(amount * 1.5)
            """, module="repro.lending.rates", rules=["R001"])
        assert rule_ids(findings) == ["R001"]

    def test_aug_div_flagged(self):
        findings = run_lint(
            """
            def halve(amount: int) -> int:
                amount /= 2
                return amount
            """, module="repro.flashbots.tips", rules=["R001"])
        assert rule_ids(findings) == ["R001"]


class TestNegative:
    def test_floor_division_ok(self):
        findings = run_lint(
            """
            def fee(amount: int, bps: int) -> int:
                return amount * bps // 10_000
            """, module="repro.chain.fees", rules=["R001"])
        assert findings == []

    def test_float_returning_helper_exempt(self):
        findings = run_lint(
            """
            ETHER = 10**18

            def to_eth(amount_wei: int) -> float:
                return amount_wei / ETHER
            """, module="repro.chain.types", rules=["R001"])
        assert findings == []

    def test_float_in_annotation_not_flagged(self):
        findings = run_lint(
            """
            def clamp(rate: float) -> int:
                return 1 if rate else 0
            """, module="repro.chain.params", rules=["R001"])
        assert findings == []

    def test_analysis_layer_out_of_scope(self):
        findings = run_lint(
            """
            def mean(values: list) -> float:
                return sum(values) / len(values)
            """, module="repro.analysis.stats", rules=["R001"])
        assert findings == []
