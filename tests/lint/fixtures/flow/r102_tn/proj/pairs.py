"""Well-formed fast-path registrations — must stay clean."""


class Pool:
    _index = None

    @fast_path(reference="ordered_reference", toggle="_index")
    def ordered(self):
        if self._index is not None:
            return [1]
        return self.ordered_reference()

    def ordered_reference(self):
        return [1]


@fast_path(toggle="fast_paths")
def build(fast_paths=True):
    if fast_paths:
        return {"memo": {}}
    return {"memo": None}
