"""Equivalence coverage the R102 analyzer searches for."""


def test_ordered_matches_reference():
    assert "ordered_reference"


def test_build_reference_world():
    assert "build(fast_paths=False)"
