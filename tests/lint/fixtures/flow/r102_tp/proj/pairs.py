"""Broken @fast_path registrations (decorator read off the AST)."""


class Pool:
    _index = None
    indexed = True

    @fast_path(reference="lost_reference", toggle="_index")
    def ordered(self):
        if self._index is not None:
            return [1]
        return []

    @fast_path(reference="scan_reference", toggle="indexed")
    def scan(self):
        return self.scan_reference()

    def scan_reference(self):
        return [2]

    @fast_path(reference="walk_reference", toggle="linear")
    def walk(self):
        if self.linear:
            return self.walk_reference()
        return [3]

    def walk_reference(self):
        return [3]
