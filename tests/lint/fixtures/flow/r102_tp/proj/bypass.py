"""Production call site addressing a reference directly."""

from proj.pairs import Pool


def caller():
    return Pool().scan_reference()
