"""Parallel-safe chunk processing — must stay clean."""

SETUP = {}
_WORKER = None


def _init():
    global _WORKER
    _WORKER = object()


class Runner:
    def run_chunk(self, chunk):
        local = {}
        local[chunk] = 1
        self.cache = {}
        return process(local)


def process(d):
    return sorted(d)


def offline_setup():
    # writes a module global, but is NOT reachable from the roots
    SETUP["x"] = 1
    return SETUP
