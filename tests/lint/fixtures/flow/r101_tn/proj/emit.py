"""Entropy is drawn but never reaches the sink — must stay clean."""

import time

from proj.hashing import hash_of


def block_hash(seed):
    digest = hash_of(("block", seed))
    elapsed = time.time()  # logged, never hashed
    _log(elapsed)
    return digest


def rows(rng):
    # an injected seeded rng is the sanctioned randomness channel
    return hash_of(rng.random())


def _log(value):
    return value
