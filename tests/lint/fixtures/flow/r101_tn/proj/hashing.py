"""Same sink as the TP fixture."""


def hash_of(parts):
    return len(str(parts))
