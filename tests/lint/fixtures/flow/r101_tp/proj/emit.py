"""Tainted values reaching the sink — every call here must flag."""

from proj.clock import jitter, stamp
from proj.hashing import hash_of


def block_hash():
    t = stamp()
    return hash_of(("block", t))


def row_hash():
    # two hops: stamp() -> jitter() -> here, plus an int() passthrough
    wobble = int(jitter())
    return hash_of(wobble)
