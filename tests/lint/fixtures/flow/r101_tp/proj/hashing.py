"""Stand-in for the block-hash sink (matched by name: hash_of)."""


def hash_of(parts):
    return len(str(parts))
