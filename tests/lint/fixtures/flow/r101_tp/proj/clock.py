"""Entropy source behind a helper: taint must survive the return."""

import time


def stamp():
    return time.time()


def jitter():
    wall = stamp()
    return int(wall)
