"""Parallel-unsafe constructs reachable from the chunk roots."""

COUNTER = 0
CACHE = {}


class Runner:
    def run_chunk(self, chunk):
        global COUNTER
        COUNTER += 1
        return tally(chunk)


def tally(chunk):
    CACHE[chunk] = 1
    return CACHE


class Executor:
    def execute(self, pool, chunks):
        futures = []
        for chunk in chunks:
            futures.append(pool.submit(lambda: tally(chunk)))
        return futures
