"""Engine walking, reporters, config loading, and CLI exit codes."""

import json

import pytest

from repro.lint import LintConfig, lint_paths, render_json, render_text
from repro.lint.cli import main as lint_main
from repro.lint.config import load_config

BAD_WEI = """
def fee(amount: int) -> int:
    return amount / 2
"""

GOOD_WEI = """
def fee(amount: int) -> int:
    return amount // 2
"""


class TestEngine:
    def test_walks_tree_and_derives_modules(self, fixture_tree,
                                            tmp_path):
        fixture_tree("repro/chain/bad.py", BAD_WEI)
        fixture_tree("repro/chain/good.py", GOOD_WEI)
        findings = lint_paths([tmp_path / "src"], LintConfig())
        assert [f.rule_id for f in findings] == ["R001"]
        assert findings[0].path.endswith("bad.py")
        assert findings[0].line == 3

    def test_syntax_error_reported_not_raised(self, fixture_tree,
                                              tmp_path):
        fixture_tree("repro/chain/broken.py", "def broken(:\n")
        findings = lint_paths([tmp_path / "src"], LintConfig())
        assert [f.rule_id for f in findings] == ["E000"]

    def test_exclude_globs(self, fixture_tree, tmp_path):
        fixture_tree("repro/chain/vendored/junk.py", BAD_WEI)
        config = LintConfig(exclude=["*/vendored/*"])
        assert lint_paths([tmp_path / "src"], config) == []

    def test_enable_subset(self, fixture_tree, tmp_path):
        fixture_tree("repro/chain/bad.py", BAD_WEI)
        config = LintConfig(enable=["R002"])
        assert lint_paths([tmp_path / "src"], config) == []

    def test_event_schema_resolved_from_tree(self, fixture_tree,
                                             tmp_path):
        fixture_tree("repro/core/heuristics/bad.py", """
            from repro.chain.events import SwapEvent

            def gain(event: SwapEvent) -> int:
                return event.amount_inn
            """)
        findings = lint_paths([tmp_path / "src"], LintConfig())
        assert [f.rule_id for f in findings] == ["R004"]


class TestReporters:
    @pytest.fixture
    def findings(self, fixture_tree, tmp_path):
        fixture_tree("repro/chain/bad.py", BAD_WEI)
        return lint_paths([tmp_path / "src"], LintConfig())

    def test_text_report(self, findings):
        text = render_text(findings)
        assert "R001" in text
        assert "bad.py:3" in text
        assert "1 finding" in text

    def test_text_report_empty(self):
        assert "no findings" in render_text([])

    def test_json_report(self, findings):
        payload = json.loads(render_json(findings))
        assert payload["count"] == 1
        entry = payload["findings"][0]
        assert entry["rule"] == "R001"
        assert entry["line"] == 3
        assert entry["severity"] == "error"
        assert entry["path"].endswith("bad.py")
        assert "message" in entry


class TestConfigLoading:
    def test_pyproject_section_parsed(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text("""
[tool.repro-lint]
enable = ["r001", "R003"]
exclude = ["src/vendor"]

[tool.repro-lint.rules.R003]
allow = ["repro.sim.calendar"]
""")
        config = load_config(search_from=tmp_path)
        assert config.enable == ["R001", "R003"]
        assert config.exclude == ["src/vendor"]
        assert config.options_for("R003")["allow"] == \
            ["repro.sim.calendar"]

    def test_missing_section_yields_defaults(self, tmp_path):
        from repro.lint.config import DEFAULT_RULES
        (tmp_path / "pyproject.toml").write_text("[project]\nname='x'\n")
        config = load_config(search_from=tmp_path)
        assert config.enable == list(DEFAULT_RULES)

    def test_repo_pyproject_enables_all_rules(self):
        from repro.lint.config import DEFAULT_RULES
        from tests.lint.conftest import REPO_ROOT
        config = load_config(pyproject=REPO_ROOT / "pyproject.toml")
        assert config.enable == list(DEFAULT_RULES)


class TestCli:
    def test_exit_zero_on_clean_tree(self, fixture_tree, tmp_path,
                                     capsys):
        fixture_tree("repro/chain/good.py", GOOD_WEI)
        code = lint_main([str(tmp_path / "src"), "--no-config"])
        assert code == 0
        assert "no findings" in capsys.readouterr().out

    def test_exit_one_on_findings(self, fixture_tree, tmp_path,
                                  capsys):
        fixture_tree("repro/chain/bad.py", BAD_WEI)
        code = lint_main([str(tmp_path / "src"), "--no-config"])
        assert code == 1
        assert "R001" in capsys.readouterr().out

    def test_exit_two_on_missing_path(self, tmp_path, capsys):
        code = lint_main([str(tmp_path / "nope"), "--no-config"])
        assert code == 2

    def test_json_format(self, fixture_tree, tmp_path, capsys):
        fixture_tree("repro/chain/bad.py", BAD_WEI)
        code = lint_main([str(tmp_path / "src"), "--no-config",
                          "--format", "json"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 1

    def test_select_subset(self, fixture_tree, tmp_path, capsys):
        fixture_tree("repro/chain/bad.py", BAD_WEI)
        code = lint_main([str(tmp_path / "src"), "--no-config",
                          "--select", "R002"])
        assert code == 0

    def test_unknown_rule_id_exits_two(self, fixture_tree, tmp_path,
                                       capsys):
        fixture_tree("repro/chain/bad.py", BAD_WEI)
        code = lint_main([str(tmp_path / "src"), "--no-config",
                          "--select", "R999"])
        assert code == 2
        assert "unknown rule id" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("R001", "R002", "R003", "R004", "R005"):
            assert rule_id in out

    def test_repo_source_tree_is_clean(self):
        """The merged tree must lint clean — the zero-findings baseline."""
        from tests.lint.conftest import REPO_ROOT
        config = load_config(pyproject=REPO_ROOT / "pyproject.toml")
        findings = lint_paths([REPO_ROOT / "src"], config)
        assert findings == [], render_text(findings)


class TestDegeneratePackages:
    """The CLI must survive packages that barely parse: empty
    ``__init__.py`` files everywhere and modules with syntax errors."""

    def build(self, tmp_path):
        pkg = tmp_path / "src" / "repro" / "chain"
        pkg.mkdir(parents=True)
        (tmp_path / "src" / "repro" / "__init__.py").write_text("")
        (pkg / "__init__.py").write_text("")
        (pkg / "broken.py").write_text("def broken(:\n")
        (pkg / "mangled.py").write_text("class :\n    pass\n")
        (pkg / "fine.py").write_text(GOOD_WEI)
        return tmp_path / "src"

    def test_syntax_errors_become_findings_not_crashes(self, tmp_path,
                                                       capsys):
        code = lint_main([str(self.build(tmp_path)), "--no-config"])
        out = capsys.readouterr().out
        assert code == 1
        assert "broken.py:1" in out
        assert "mangled.py:1" in out
        assert "E000×2" in out

    def test_empty_inits_lint_clean(self, tmp_path, capsys):
        src = tmp_path / "src" / "repro" / "chain"
        src.mkdir(parents=True)
        (tmp_path / "src" / "repro" / "__init__.py").write_text("")
        (src / "__init__.py").write_text("")
        code = lint_main([str(tmp_path / "src"), "--no-config"])
        assert code == 0
        assert "no findings" in capsys.readouterr().out

    def test_json_report_carries_syntax_findings(self, tmp_path,
                                                 capsys):
        code = lint_main([str(self.build(tmp_path)), "--no-config",
                          "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["count"] == 2
        assert {e["rule"] for e in payload["findings"]} == {"E000"}

    def test_deep_mode_skips_unparseable_and_survives(self, tmp_path,
                                                      capsys):
        code = lint_main([str(self.build(tmp_path)), "--deep",
                          "--no-config",
                          "--tests-root", str(tmp_path / "tests")])
        out = capsys.readouterr().out
        assert code == 1
        assert "broken.py:1" in out
        assert "mangled.py:1" in out


class TestReproCliIntegration:
    def test_repro_lint_subcommand(self, fixture_tree, tmp_path,
                                   capsys):
        from repro.cli import main as repro_main
        fixture_tree("repro/chain/bad.py", BAD_WEI)
        code = repro_main(["lint", str(tmp_path / "src")])
        assert code == 1
        assert "R001" in capsys.readouterr().out
