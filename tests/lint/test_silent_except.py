"""R006 — silent-exception-swallow positives and negatives."""

from tests.lint.conftest import run_lint, rule_ids


class TestPositive:
    def test_bare_except_flagged(self):
        findings = run_lint(
            """
            def load(path: str) -> str:
                try:
                    return open(path).read()
                except:
                    return ""
            """, module="repro.core.loader", rules=["R006"])
        assert rule_ids(findings) == ["R006"]
        assert "bare 'except:'" in findings[0].message

    def test_broad_pass_flagged(self):
        findings = run_lint(
            """
            def fetch(source: object) -> None:
                try:
                    source.pull()
                except Exception:
                    pass
            """, module="repro.chain.fetch", rules=["R006"])
        assert rule_ids(findings) == ["R006"]
        assert "silently discards" in findings[0].message

    def test_base_exception_ellipsis_flagged(self):
        findings = run_lint(
            """
            def poll(source: object) -> None:
                try:
                    source.poll()
                except BaseException:
                    ...
            """, module="repro.flashbots.poll", rules=["R006"])
        assert rule_ids(findings) == ["R006"]

    def test_broad_in_tuple_with_noop_body_flagged(self):
        findings = run_lint(
            """
            def probe(source: object) -> None:
                try:
                    source.probe()
                except (ValueError, Exception):
                    pass
            """, module="repro.core.probe", rules=["R006"])
        assert rule_ids(findings) == ["R006"]


class TestNegative:
    def test_narrow_handler_ok(self):
        findings = run_lint(
            """
            def clear(path: object) -> None:
                try:
                    path.unlink()
                except FileNotFoundError:
                    return
            """, module="repro.reliability.cleanup", rules=["R006"])
        assert findings == []

    def test_broad_handler_that_acts_ok(self):
        findings = run_lint(
            """
            def guarded(op: object, stats: object) -> object:
                try:
                    return op()
                except Exception:
                    stats.failures += 1
                    raise
            """, module="repro.reliability.calls", rules=["R006"])
        assert findings == []

    def test_narrow_pass_ok(self):
        """Swallowing a *specific* exception is a judgement call the
        rule leaves to review; only broad swallows are mechanical."""
        findings = run_lint(
            """
            def tidy(queue: object) -> None:
                try:
                    queue.drain()
                except KeyError:
                    pass
            """, module="repro.chain.queues", rules=["R006"])
        assert findings == []

    def test_outside_package_ignored(self):
        findings = run_lint(
            """
            def anything() -> None:
                try:
                    raise ValueError
                except:
                    pass
            """, module="scripts.helper", rules=["R006"])
        assert findings == []

    def test_suppression_comment_honoured(self):
        findings = run_lint(
            """
            def best_effort(op: object) -> None:
                try:
                    op()
                except Exception:  # repro-lint: disable=R006
                    pass
            """, module="repro.core.opt", rules=["R006"])
        assert findings == []
