"""Deep-mode infrastructure: cache, suppressions, SARIF, baseline, CLI."""

import json
import textwrap
from pathlib import Path

import pytest

from repro.lint import LintConfig
from repro.lint.cli import main as lint_main
from repro.lint.findings import Finding
from repro.lint.flow import (
    FLOW_RULES,
    filter_baselined,
    load_baseline,
    run_deep,
    write_baseline,
)
from repro.lint.reporters import render_sarif

FIXTURES = Path(__file__).resolve().parent / "fixtures" / "flow"

R103_OPTIONS = {"R103": {"roots": ["proj.engine:Runner.run_chunk"],
                         "allow-globals": []}}


def write_proj(tmp_path, name, source):
    proj = tmp_path / "proj"
    proj.mkdir(exist_ok=True)
    (proj / "__init__.py").write_text("")
    (proj / name).write_text(textwrap.dedent(source))
    return proj


class TestSummaryCache:
    def test_second_run_hits_for_every_module(self, tmp_path):
        cache_dir = tmp_path / "cache"
        config = LintConfig()
        cold = run_deep([FIXTURES / "r101_tp" / "proj"], config,
                        cache_dir=cache_dir,
                        tests_root=str(tmp_path))
        warm = run_deep([FIXTURES / "r101_tp" / "proj"], config,
                        cache_dir=cache_dir,
                        tests_root=str(tmp_path))
        assert cold.cache_hits == 0
        assert cold.cache_misses == warm.cache_hits > 0
        assert warm.cache_misses == 0
        # identical findings either way — the cache is invisible
        assert [f.message for f in cold.findings] == \
            [f.message for f in warm.findings]

    def test_edited_file_misses_only_itself(self, tmp_path):
        cache_dir = tmp_path / "cache"
        proj = tmp_path / "work" / "proj"
        proj.mkdir(parents=True)
        (proj / "__init__.py").write_text("")
        (proj / "a.py").write_text("def f():\n    return 1\n")
        (proj / "b.py").write_text("def g():\n    return 2\n")
        config = LintConfig()
        run_deep([proj], config, cache_dir=cache_dir)
        (proj / "a.py").write_text("def f():\n    return 3\n")
        warm = run_deep([proj], config, cache_dir=cache_dir)
        assert warm.cache_misses == 1
        assert warm.cache_hits == 2  # __init__ and b.py

    def test_corrupt_cache_entry_is_recomputed(self, tmp_path):
        cache_dir = tmp_path / "cache"
        config = LintConfig()
        run_deep([FIXTURES / "r101_tn" / "proj"], config,
                 cache_dir=cache_dir, tests_root=str(tmp_path))
        for entry in cache_dir.glob("*.json"):
            entry.write_text("{not json")
        report = run_deep([FIXTURES / "r101_tn" / "proj"], config,
                          cache_dir=cache_dir,
                          tests_root=str(tmp_path))
        assert report.cache_hits == 0
        assert report.findings == []


class TestDeepSuppression:
    UNSAFE = """
        G = dict()

        class Runner:
            def run_chunk(self, c):
                G[c] = 1@DIRECTIVE@
                return G
    """

    def run(self, tmp_path, directive=""):
        proj = write_proj(tmp_path, "engine.py",
                          self.UNSAFE.replace("@DIRECTIVE@",
                                              directive))
        config = LintConfig(rule_options=R103_OPTIONS)
        return run_deep([proj], config,
                        tests_root=str(tmp_path)).findings

    def test_finding_without_directive(self, tmp_path):
        findings = self.run(tmp_path)
        assert [f.rule_id for f in findings] == ["R103"]

    def test_inline_directive_silences_deep_finding(self, tmp_path):
        findings = self.run(tmp_path,
                            directive="  # repro-lint: disable=R103")
        assert findings == []


class TestSarif:
    def test_document_shape(self):
        findings = [Finding(path="src/x.py", line=3, rule_id="R101",
                            severity="error", message="tainted", col=4)]
        meta = dict(FLOW_RULES)
        document = json.loads(render_sarif(findings, meta))
        assert document["version"] == "2.1.0"
        run = document["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
        assert rule_ids == ["R101", "R102", "R103"]
        result = run["results"][0]
        assert result["ruleId"] == "R101"
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region == {"startLine": 3, "startColumn": 5}

    def test_empty_run_is_valid(self):
        document = json.loads(render_sarif([], {}))
        assert document["runs"][0]["results"] == []


class TestBaseline:
    def test_round_trip_and_filter(self, tmp_path):
        old = Finding(path="a.py", line=10, rule_id="R103",
                      message="known issue")
        new = Finding(path="a.py", line=20, rule_id="R101",
                      message="fresh issue")
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, [old])
        accepted = load_baseline(baseline_path)
        remaining = filter_baselined([old, new], accepted)
        assert remaining == [new]

    def test_line_drift_does_not_resurrect(self, tmp_path):
        old = Finding(path="a.py", line=10, rule_id="R103",
                      message="known issue")
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, [old])
        moved = Finding(path="a.py", line=99, rule_id="R103",
                        message="known issue")
        accepted = load_baseline(baseline_path)
        assert filter_baselined([moved], accepted) == []

    def test_bad_baseline_raises(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text(json.dumps({"version": 99}))
        with pytest.raises(ValueError):
            load_baseline(bad)


class TestDeepCli:
    def test_deep_findings_fail_the_run(self, tmp_path, capsys):
        code = lint_main([str(FIXTURES / "r101_tp" / "proj"),
                          "--deep", "--no-config",
                          "--tests-root", str(tmp_path)])
        out = capsys.readouterr()
        assert code == 1
        assert "R101" in out.out
        assert "deep-lint:" in out.err  # stats on stderr, not stdout

    def test_clean_fixture_exits_zero(self, tmp_path):
        code = lint_main([str(FIXTURES / "r101_tn" / "proj"),
                          "--deep", "--no-config",
                          "--tests-root", str(tmp_path)])
        assert code == 0

    def test_sarif_output_parses(self, tmp_path, capsys):
        code = lint_main([str(FIXTURES / "r101_tp" / "proj"),
                          "--deep", "--no-config", "--format", "sarif",
                          "--tests-root", str(tmp_path)])
        out = capsys.readouterr().out
        document = json.loads(out)
        assert code == 1
        assert document["runs"][0]["results"]
        listed = {r["id"]
                  for r in document["runs"][0]["tool"]["driver"]["rules"]}
        assert {"R101", "R102", "R103"} <= listed

    def test_baseline_workflow(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        args = [str(FIXTURES / "r101_tp" / "proj"), "--deep",
                "--no-config", "--tests-root", str(tmp_path),
                "--baseline", str(baseline)]
        assert lint_main(args + ["--write-baseline"]) == 0
        capsys.readouterr()
        # identical findings now baselined: the run is clean
        assert lint_main(args) == 0
        out = capsys.readouterr()
        assert "no findings" in out.out

    def test_write_baseline_requires_baseline(self, capsys):
        assert lint_main(["--write-baseline"]) == 2
        assert "--baseline" in capsys.readouterr().err

    def test_list_rules_includes_flow_analyzers(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("R101", "R102", "R103"):
            assert rule_id in out
        assert "--deep" in out

    def test_flow_cache_flag_creates_cache(self, tmp_path):
        cache_dir = tmp_path / "flow-cache"
        lint_main([str(FIXTURES / "r101_tn" / "proj"), "--deep",
                   "--no-config", "--tests-root", str(tmp_path),
                   "--flow-cache", str(cache_dir)])
        assert list(cache_dir.glob("*.json"))


class TestMarkerRuntime:
    def test_fast_path_is_inert_and_introspectable(self):
        from repro.markers import FAST_PATH_ATTR, fast_path

        @fast_path(reference="slow", toggle="flag")
        def quick(x):
            return x + 1

        assert quick(1) == 2
        meta = getattr(quick, FAST_PATH_ATTR)
        assert meta["reference"] == "slow"
        assert meta["toggle"] == "flag"
        assert meta["tested_by"] is None
