"""R007 — banned identifiers whose deprecation cycle has ended.

The rule must catch every way a removed name can sneak back in:
definition, import (with or without an alias), attribute access, bare
reference, and string smuggling through ``__all__``/``getattr``.
"""

from tests.lint.conftest import run_lint, rule_ids

BANNED = "shield" "_sources"  # avoid the literal token in one piece


class TestPositive:
    def test_definition_flagged(self):
        findings = run_lint(
            f"""
            def {BANNED}(sources):
                return sources
            """, module="repro.reliability.srcx", rules=["R007"])
        assert rule_ids(findings) == ["R007"]
        assert BANNED in findings[0].message

    def test_import_flagged(self):
        findings = run_lint(
            f"""
            from repro.reliability import {BANNED}
            """, module="repro.core.userx", rules=["R007"])
        assert rule_ids(findings) == ["R007"]

    def test_aliased_import_flagged(self):
        findings = run_lint(
            f"""
            from repro.reliability import {BANNED} as harden
            """, module="repro.core.userx", rules=["R007"])
        assert rule_ids(findings) == ["R007"]

    def test_attribute_reference_flagged(self):
        findings = run_lint(
            f"""
            import repro.reliability

            def wire(node):
                return repro.reliability.{BANNED}(node)
            """, module="repro.core.userx", rules=["R007"])
        assert "R007" in rule_ids(findings)

    def test_string_smuggling_flagged(self):
        findings = run_lint(
            f"""
            import repro.reliability as r

            __all__ = ["{BANNED}"]

            def wire(node):
                return getattr(r, "{BANNED}")(node)
            """, module="repro.core.userx", rules=["R007"])
        assert rule_ids(findings).count("R007") >= 2


class TestNegative:
    def test_similar_names_pass(self):
        findings = run_lint(
            """
            def shield(sources):
                return sources

            def shielded_sources(sources):
                return shield(sources)
            """, module="repro.reliability.srcx", rules=["R007"])
        assert findings == []

    def test_lint_package_is_exempt(self):
        # The rule's own configuration names the banned identifiers;
        # repro.lint must not flag itself.
        findings = run_lint(
            f"""
            DEFAULT_BANNED = ("{BANNED}",)
            """, module="repro.lint.rules.banned_apix",
            rules=["R007"])
        assert findings == []

    def test_configured_list_extends(self):
        from repro.lint import LintConfig
        config = LintConfig(rule_options={
            "R007": {"banned": ["legacy_probe"]}})
        findings = run_lint(
            """
            def legacy_probe():
                return 1
            """, module="repro.core.userx", rules=["R007"],
            config=config)
        assert rule_ids(findings) == ["R007"]
