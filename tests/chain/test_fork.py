"""Tests for the hard-fork schedule."""

from repro.chain.fork import MAINNET_FORKS, ForkSchedule


class TestForkSchedule:
    def test_london_activation(self):
        forks = ForkSchedule(berlin_block=100, london_block=200)
        assert not forks.is_london(199)
        assert forks.is_london(200)
        assert forks.is_london(10**9)

    def test_berlin_activation(self):
        forks = ForkSchedule(berlin_block=100, london_block=200)
        assert not forks.is_berlin(99)
        assert forks.is_berlin(100)

    def test_mainnet_constants(self):
        assert MAINNET_FORKS.berlin_block == 12_244_000
        assert MAINNET_FORKS.london_block == 12_965_000
        assert MAINNET_FORKS.berlin_block < MAINNET_FORKS.london_block

    def test_frozen(self):
        import dataclasses
        import pytest
        with pytest.raises(dataclasses.FrozenInstanceError):
            MAINNET_FORKS.london_block = 0
