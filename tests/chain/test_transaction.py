"""Tests for transaction fee arithmetic and identity."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.chain.transaction import EIP1559, LEGACY, Transaction
from repro.chain.types import address_from_label, gwei

A = address_from_label("sender")
B = address_from_label("receiver")


def legacy_tx(price=gwei(50), nonce=0, **kw):
    return Transaction(sender=A, nonce=nonce, to=B, gas_price=price, **kw)


def eip1559_tx(max_fee=gwei(100), tip=gwei(2), nonce=0, **kw):
    return Transaction(sender=A, nonce=nonce, to=B, tx_type=EIP1559,
                       max_fee_per_gas=max_fee,
                       max_priority_fee_per_gas=tip, **kw)


class TestConstruction:
    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError):
            Transaction(sender=A, nonce=0, tx_type="blob")

    def test_eip1559_fee_cap_must_cover_tip(self):
        with pytest.raises(ValueError):
            eip1559_tx(max_fee=gwei(1), tip=gwei(2))

    def test_default_is_legacy(self):
        assert legacy_tx().tx_type == LEGACY


class TestHashing:
    def test_hash_is_stable(self):
        tx = legacy_tx()
        assert tx.hash == tx.hash

    def test_two_identical_payload_txs_differ(self):
        # Distinct transaction objects are distinct network events even if
        # the fields match (the uid mirrors signature uniqueness).
        assert legacy_tx().hash != legacy_tx().hash

    def test_equality_follows_hash(self):
        tx = legacy_tx()
        assert tx == tx
        assert tx != legacy_tx()

    def test_usable_in_sets(self):
        tx = legacy_tx()
        assert len({tx, tx}) == 1


class TestLegacyFees:
    def test_effective_price_ignores_base_fee(self):
        tx = legacy_tx(price=gwei(50))
        assert tx.effective_gas_price(gwei(10)) == gwei(50)

    def test_tip_is_excess_over_base(self):
        tx = legacy_tx(price=gwei(50))
        assert tx.miner_tip_per_gas(gwei(10)) == gwei(40)
        assert tx.miner_tip_per_gas(0) == gwei(50)

    def test_tip_clamped_at_zero(self):
        tx = legacy_tx(price=gwei(5))
        assert tx.miner_tip_per_gas(gwei(10)) == 0

    def test_includable_iff_price_clears_base(self):
        tx = legacy_tx(price=gwei(5))
        assert tx.is_includable(gwei(5))
        assert not tx.is_includable(gwei(6))


class TestEip1559Fees:
    def test_effective_price_caps_at_max_fee(self):
        tx = eip1559_tx(max_fee=gwei(100), tip=gwei(2))
        assert tx.effective_gas_price(gwei(99)) == gwei(100)

    def test_effective_price_is_base_plus_tip(self):
        tx = eip1559_tx(max_fee=gwei(100), tip=gwei(2))
        assert tx.effective_gas_price(gwei(40)) == gwei(42)

    def test_miner_tip_shrinks_near_cap(self):
        tx = eip1559_tx(max_fee=gwei(100), tip=gwei(10))
        assert tx.miner_tip_per_gas(gwei(95)) == gwei(5)

    @given(st.integers(0, 10**12), st.integers(0, 10**12),
           st.integers(0, 10**12))
    def test_miner_never_gets_base_fee(self, base, cap_extra, tip):
        max_fee = tip + cap_extra
        tx = eip1559_tx(max_fee=max_fee, tip=tip)
        assert tx.miner_tip_per_gas(base) <= max(0, max_fee - base)
        assert tx.miner_tip_per_gas(base) <= tip

    def test_upfront_cost_uses_cap(self):
        tx = eip1559_tx(max_fee=gwei(100), tip=gwei(2))
        tx.value = 7
        assert tx.max_upfront_cost() == 7 + tx.gas_limit * gwei(100)
