"""Tests for the read-optimized chain index (``repro.chain.index``).

The index's contract is strong: every ranged query through it must be
*element-for-element* identical to the historical linear scan (which
``ArchiveNode`` keeps as ``_linear_iter_blocks`` / ``_linear_get_logs``
reference paths), including subclass-matching semantics and traversal
order across event types — while appends stay visible without ever
rebuilding.
"""

import random

import pytest

from repro.chain.block import Block
from repro.chain.events import (
    AuctionSettledEvent,
    EventLog,
    FlashLoanEvent,
    LiquidationEvent,
    SwapEvent,
    TransferEvent,
)
from repro.chain.index import ChainIndex, Posting
from repro.chain.node import ArchiveNode, Blockchain
from repro.chain.receipt import Receipt
from repro.chain.types import address_from_label

MINER = address_from_label("index-miner")
SENDER = address_from_label("index-sender")
POOL = address_from_label("index-pool")


def make_receipt(block_number, tx_index, logs, status=True):
    """A synthetic receipt carrying ``logs``, stamped like the block
    builder stamps them."""
    tx_hash = f"0x{block_number:032x}{tx_index:032x}"
    for log_index, log in enumerate(logs):
        log.stamp(block_number, tx_hash, tx_index, log_index)
    return Receipt(tx_hash=tx_hash, block_number=block_number,
                   tx_index=tx_index, sender=SENDER, to=POOL,
                   status=status, gas_used=21_000,
                   effective_gas_price=1, miner_tip_per_gas=1,
                   coinbase_transfer=0, logs=logs)


def make_block(number, receipts=()):
    return Block(number=number, timestamp=13 * number, miner=MINER,
                 base_fee=0, gas_limit=30_000_000,
                 receipts=list(receipts))


def chain_of(*blocks_logs):
    """One chain from per-block log lists: ``chain_of([log, ...], ...)``
    numbers blocks 1..n, one receipt per log list."""
    chain = Blockchain()
    for offset, logs in enumerate(blocks_logs):
        number = offset + 1
        chain.append(make_block(
            number, [make_receipt(number, 0, list(logs))]))
    return chain


class TestChainIndex:
    def test_block_positions_bisect(self):
        chain = chain_of([], [], [], [], [])
        index = chain.index
        assert index.block_positions(2, 4) == (1, 4)
        assert index.block_positions(None, None) == (0, 5)
        assert index.block_positions(6, None) == (5, 5)
        assert index.block_positions(4, 2) == (3, 3)  # empty, clamped

    def test_postings_carry_inclusion_coordinates(self):
        chain = chain_of([TransferEvent(POOL, amount=1)],
                         [SwapEvent(POOL, venue="UniswapV2"),
                          TransferEvent(POOL, amount=2)])
        postings = chain.index.postings(TransferEvent)
        assert postings == [Posting(1, 0, 0), Posting(2, 0, 1)]
        assert chain.index.postings(SwapEvent) == [Posting(2, 0, 0)]
        assert chain.index.postings(FlashLoanEvent) == []

    def test_postings_are_lazy_until_a_log_query(self):
        chain = chain_of([TransferEvent(POOL, amount=1)], [], [])
        node = ArchiveNode(chain)
        list(node.iter_blocks(1, 2))
        assert chain.index.blocks_indexed == 3
        assert chain.index.logs_indexed_through == 0
        node.get_logs(TransferEvent)
        assert chain.index.logs_indexed_through == 3

    def test_append_invalidates_incrementally(self):
        chain = chain_of([TransferEvent(POOL, amount=1)],
                         [TransferEvent(POOL, amount=2)])
        node = ArchiveNode(chain)
        assert [log.amount for log in node.get_logs(TransferEvent)] \
            == [1, 2]
        chain.append(make_block(
            3, [make_receipt(3, 0, [TransferEvent(POOL, amount=3)])]))
        # The very next queries see the appended tip — no rebuild, the
        # index folds only blocks[consumed:].
        assert [log.amount for log in node.get_logs(TransferEvent)] \
            == [1, 2, 3]
        assert [b.number for b in node.iter_blocks(3, 3)] == [3]
        assert chain.index.blocks_indexed == 3
        assert chain.index.logs_indexed_through == 3

    def test_subclass_matching_mirrors_isinstance(self):
        liq = LiquidationEvent(POOL, platform="AaveV2")
        auction = AuctionSettledEvent(POOL, platform="AaveV2")
        swap = SwapEvent(POOL, venue="UniswapV2")
        chain = chain_of([liq], [auction, swap])
        node = ArchiveNode(chain)
        # A base-type query returns every subclass, in traversal order.
        assert node.get_logs(EventLog) == [liq, auction, swap]
        # AuctionSettledEvent is deliberately NOT a LiquidationEvent.
        assert node.get_logs(LiquidationEvent) == [liq]
        assert node.get_logs(AuctionSettledEvent) == [auction]

    def test_returns_the_log_objects_themselves(self):
        swap = SwapEvent(POOL, venue="SushiSwap")
        chain = chain_of([swap])
        (found,) = ArchiveNode(chain).get_logs(SwapEvent)
        assert found is swap

    def test_empty_chain(self):
        chain = Blockchain()
        node = ArchiveNode(chain)
        assert list(node.iter_blocks()) == []
        assert node.get_logs(EventLog) == []
        assert chain.index.block_positions() == (0, 0)

    def test_shared_index_instance_per_chain(self):
        chain = chain_of([])
        assert chain.index is chain.index
        assert isinstance(chain.index, ChainIndex)
        assert ArchiveNode(chain).chain.index is chain.index


class CountingList(list):
    """A block list that counts linear traversals."""

    def __init__(self, *args):
        super().__init__(*args)
        self.iterations = 0

    def __iter__(self):
        self.iterations += 1
        return super().__iter__()


class TestIterBlocksEdgeCases:
    @pytest.mark.parametrize("indexed", [True, False])
    def test_from_block_past_tip_is_empty(self, indexed):
        chain = chain_of([], [], [])
        chain.blocks = CountingList(chain.blocks)
        node = ArchiveNode(chain, indexed=indexed)
        assert list(node.iter_blocks(4)) == []
        assert list(node.iter_blocks(4, 9)) == []
        # Empty-by-construction ranges must not scan the chain.
        assert chain.blocks.iterations == 0
        if indexed:
            assert chain.index.blocks_indexed == 0

    @pytest.mark.parametrize("indexed", [True, False])
    def test_inverted_range_is_empty(self, indexed):
        chain = chain_of([], [], [], [], [])
        chain.blocks = CountingList(chain.blocks)
        node = ArchiveNode(chain, indexed=indexed)
        assert list(node.iter_blocks(4, 2)) == []
        assert chain.blocks.iterations == 0

    @pytest.mark.parametrize("indexed", [True, False])
    def test_in_range_bounds_still_inclusive(self, indexed):
        node = ArchiveNode(chain_of([], [], [], [], []),
                           indexed=indexed)
        assert [b.number for b in node.iter_blocks(2, 4)] == [2, 3, 4]
        assert [b.number for b in node.iter_blocks()] == [1, 2, 3, 4, 5]


def _random_log(rng):
    choice = rng.randrange(5)
    if choice == 0:
        return TransferEvent(POOL, amount=rng.randrange(1000))
    if choice == 1:
        return SwapEvent(POOL, venue=rng.choice(["UniswapV2",
                                                 "SushiSwap"]),
                         amount_in=rng.randrange(1000))
    if choice == 2:
        return LiquidationEvent(POOL, platform="AaveV2",
                                debt_repaid=rng.randrange(1000))
    if choice == 3:
        return FlashLoanEvent(POOL, platform="Aave",
                              amount=rng.randrange(1000))
    return AuctionSettledEvent(POOL, platform="AaveV2",
                               paid=rng.randrange(1000))


class TestIndexedMatchesLinearScan:
    """Property-style: on random chains, every indexed query equals the
    historical linear scan element for element — the reference paths
    (`_linear_get_logs` / `_linear_iter_blocks`) are kept on the node
    precisely so this comparison never goes stale."""

    QUERY_TYPES = (EventLog, TransferEvent, SwapEvent,
                   LiquidationEvent, FlashLoanEvent,
                   AuctionSettledEvent)

    def test_random_chains_and_ranges(self):
        rng = random.Random(0xC0FFEE)
        for _ in range(20):
            chain = Blockchain()
            node = ArchiveNode(chain)
            height = rng.randrange(0, 12)
            for number in range(1, height + 1):
                receipts = [
                    make_receipt(number, tx_index,
                                 [_random_log(rng) for _ in
                                  range(rng.randrange(0, 4))],
                                 status=rng.random() < 0.9)
                    for tx_index in range(rng.randrange(0, 3))]
                chain.append(make_block(number, receipts))
                if rng.random() < 0.3:
                    # Query mid-growth so the incremental refresh (not
                    # just a one-shot build) is what gets compared.
                    node.get_logs(rng.choice(self.QUERY_TYPES))
            for _ in range(15):
                event_type = rng.choice(self.QUERY_TYPES)
                lo = rng.choice([None, rng.randrange(-2, height + 4)])
                hi = rng.choice([None, rng.randrange(-2, height + 4)])
                indexed = node.get_logs(event_type, lo, hi)
                linear = node._linear_get_logs(event_type, lo, hi)
                assert len(indexed) == len(linear)
                assert all(a is b for a, b in zip(indexed, linear))
                got = list(node.iter_blocks(lo, hi))
                want = list(node._linear_iter_blocks(lo, hi))
                if lo is not None and height and \
                        (lo > height or (hi is not None and lo > hi)):
                    assert got == []
                assert got == want
