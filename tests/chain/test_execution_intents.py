"""Unit tests for the execution context and basic intents."""

import pytest

from repro.chain.execution import (
    ExecutionContext,
    Revert,
    execute_transaction,
)
from repro.chain.intents import (
    CoinbaseTipIntent,
    FailingIntent,
    SequenceIntent,
    TokenTransferIntent,
)
from repro.chain.state import WorldState
from repro.chain.transaction import Transaction
from repro.chain.types import address_from_label, ether

A = address_from_label("exec-a")
B = address_from_label("exec-b")
MINER = address_from_label("exec-miner")


@pytest.fixture
def state():
    s = WorldState()
    s.credit_eth(A, ether(10))
    s.mint_token("DAI", A, ether(100))
    return s


def ctx_for(state, tx=None):
    tx = tx or Transaction(sender=A, nonce=0, to=B)
    return ExecutionContext(state, tx, block_number=1, coinbase=MINER)


class TestExecutionContext:
    def test_emit_collects_logs(self, state):
        ctx = ctx_for(state)
        from repro.chain.events import TransferEvent
        ctx.emit(TransferEvent(address=B, token="DAI", sender=A,
                               recipient=B, amount=1))
        assert len(ctx.logs) == 1

    def test_pay_coinbase_moves_eth(self, state):
        ctx = ctx_for(state)
        ctx.pay_coinbase(ether(1))
        assert state.eth_balance(MINER) == ether(1)
        assert ctx.coinbase_transfer == ether(1)

    def test_pay_coinbase_negative_rejected(self, state):
        with pytest.raises(ValueError):
            ctx_for(state).pay_coinbase(-1)

    def test_contract_lookup_reverts_when_missing(self, state):
        with pytest.raises(Revert):
            ctx_for(state).contract(B)

    def test_value_transfer_without_intent(self, state):
        tx = Transaction(sender=A, nonce=0, to=B, value=ether(2))
        outcome = execute_transaction(state, tx, 1, MINER)
        assert outcome.success
        assert outcome.gas_used == 21_000
        assert state.eth_balance(B) == ether(2)

    def test_insufficient_value_reverts_cleanly(self, state):
        tx = Transaction(sender=A, nonce=0, to=B, value=ether(100))
        outcome = execute_transaction(state, tx, 1, MINER)
        assert not outcome.success
        assert state.eth_balance(B) == 0
        assert state.eth_balance(A) == ether(10)


class TestBasicIntents:
    def test_token_transfer_intent(self, state):
        tx = Transaction(sender=A, nonce=0, to=B,
                         intent=TokenTransferIntent("DAI", B,
                                                    ether(5)))
        outcome = execute_transaction(state, tx, 1, MINER)
        assert outcome.success
        assert state.token_balance("DAI", B) == ether(5)
        assert len(outcome.logs) == 1

    def test_token_transfer_zero_reverts(self, state):
        tx = Transaction(sender=A, nonce=0, to=B,
                         intent=TokenTransferIntent("DAI", B, 0))
        assert not execute_transaction(state, tx, 1, MINER).success

    def test_failing_intent_reason_surfaces(self, state):
        tx = Transaction(sender=A, nonce=0, to=B,
                         intent=FailingIntent(reason="boom"))
        outcome = execute_transaction(state, tx, 1, MINER)
        assert not outcome.success
        assert outcome.error == "boom"


class TestSequenceIntent:
    def test_runs_members_in_order(self, state):
        seq = SequenceIntent([TokenTransferIntent("DAI", B, ether(1)),
                              CoinbaseTipIntent(tip=ether(1))])
        tx = Transaction(sender=A, nonce=0, to=B, intent=seq)
        outcome = execute_transaction(state, tx, 1, MINER)
        assert outcome.success
        assert state.token_balance("DAI", B) == ether(1)
        assert state.eth_balance(MINER) == ether(1)

    def test_mid_sequence_failure_reverts_all(self, state):
        seq = SequenceIntent([TokenTransferIntent("DAI", B, ether(1)),
                              FailingIntent(),
                              CoinbaseTipIntent(tip=ether(1))])
        tx = Transaction(sender=A, nonce=0, to=B, intent=seq)
        outcome = execute_transaction(state, tx, 1, MINER)
        assert not outcome.success
        assert state.token_balance("DAI", B) == 0
        assert state.eth_balance(MINER) == 0

    def test_empty_sequence_reverts(self, state):
        tx = Transaction(sender=A, nonce=0, to=B,
                         intent=SequenceIntent([]))
        assert not execute_transaction(state, tx, 1, MINER).success

    def test_gas_estimate_sums_members(self):
        seq = SequenceIntent([FailingIntent(), FailingIntent()])
        assert seq.gas_estimate() == 200_000
