"""Tests for the gossip network and mempool observer."""

import random

from repro.chain.p2p import GossipNetwork, MempoolObserver
from repro.chain.transaction import Transaction
from repro.chain.types import address_from_label, gwei

A = address_from_label("sender")
B = address_from_label("receiver")


def tx(nonce=0):
    return Transaction(sender=A, nonce=nonce, to=B, gas_price=gwei(10))


class TestMempoolObserver:
    def test_records_inside_window(self):
        obs = MempoolObserver(start_block=10, end_block=20)
        t = tx()
        obs.record(t, 15)
        assert obs.was_observed(t.hash)
        assert obs.first_seen(t.hash) == 15

    def test_ignores_outside_window(self):
        obs = MempoolObserver(start_block=10, end_block=20)
        early, late = tx(0), tx(1)
        obs.record(early, 9)
        obs.record(late, 21)
        assert len(obs) == 0

    def test_first_seen_not_overwritten(self):
        obs = MempoolObserver()
        t = tx()
        obs.record(t, 5)
        obs.record(t, 9)
        assert obs.first_seen(t.hash) == 5

    def test_open_ended_window(self):
        obs = MempoolObserver(start_block=0, end_block=None)
        t = tx()
        obs.record(t, 10**9)
        assert obs.was_observed(t.hash)

    def test_observed_hashes_set(self):
        obs = MempoolObserver()
        a, b = tx(0), tx(1)
        obs.record(a, 1)
        obs.record(b, 2)
        assert obs.observed_hashes == {a.hash, b.hash}


class TestGossipNetwork:
    def test_perfect_observation(self):
        net = GossipNetwork(random.Random(1), observation_rate=1.0)
        obs = MempoolObserver()
        net.attach_observer(obs)
        txs = [tx(n) for n in range(50)]
        for t in txs:
            net.broadcast(t, 1)
        assert len(obs) == 50
        assert net.missed_count == 0

    def test_zero_observation(self):
        net = GossipNetwork(random.Random(1), observation_rate=0.0)
        obs = MempoolObserver()
        net.attach_observer(obs)
        net.broadcast(tx(), 1)
        assert len(obs) == 0
        assert net.missed_count == 1

    def test_partial_observation_rate(self):
        net = GossipNetwork(random.Random(7), observation_rate=0.9)
        obs = MempoolObserver()
        net.attach_observer(obs)
        txs = [tx(n) for n in range(2_000)]
        for t in txs:
            net.broadcast(t, 1)
        seen = len(obs)
        assert 1_700 <= seen <= 1_990  # ~90 % of 2000

    def test_broadcast_sets_first_seen(self):
        net = GossipNetwork(random.Random(1))
        t = tx()
        net.broadcast(t, 33)
        assert t.first_seen_block == 33

    def test_misses_outside_window_not_counted(self):
        net = GossipNetwork(random.Random(1), observation_rate=0.0)
        obs = MempoolObserver(start_block=100, end_block=200)
        net.attach_observer(obs)
        net.broadcast(tx(), 5)
        assert net.missed_count == 0

    def test_invalid_rate_rejected(self):
        import pytest
        with pytest.raises(ValueError):
            GossipNetwork(random.Random(1), observation_rate=1.5)
