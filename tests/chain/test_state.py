"""Unit and property tests for WorldState journaling semantics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.chain.state import InsufficientBalance, WorldState
from repro.chain.types import address_from_label

A = address_from_label("alice")
B = address_from_label("bob")


@pytest.fixture
def state():
    return WorldState()


class TestEthBalances:
    def test_default_zero(self, state):
        assert state.eth_balance(A) == 0

    def test_credit_and_debit(self, state):
        state.credit_eth(A, 100)
        state.debit_eth(A, 40)
        assert state.eth_balance(A) == 60

    def test_debit_over_balance_raises(self, state):
        state.credit_eth(A, 10)
        with pytest.raises(InsufficientBalance):
            state.debit_eth(A, 11)

    def test_transfer_moves_value(self, state):
        state.credit_eth(A, 100)
        state.transfer_eth(A, B, 30)
        assert state.eth_balance(A) == 70
        assert state.eth_balance(B) == 30

    def test_negative_amounts_rejected(self, state):
        with pytest.raises(ValueError):
            state.credit_eth(A, -1)
        with pytest.raises(ValueError):
            state.debit_eth(A, -1)


class TestTokens:
    def test_mint_and_balance(self, state):
        state.mint_token("DAI", A, 500)
        assert state.token_balance("DAI", A) == 500

    def test_tokens_are_namespaced(self, state):
        state.mint_token("DAI", A, 500)
        assert state.token_balance("USDC", A) == 0

    def test_transfer_conserves_supply(self, state):
        state.mint_token("DAI", A, 500)
        state.transfer_token("DAI", A, B, 200)
        assert state.token_supply("DAI") == 500
        assert state.token_balance("DAI", B) == 200

    def test_transfer_over_balance_raises(self, state):
        state.mint_token("DAI", A, 5)
        with pytest.raises(InsufficientBalance):
            state.transfer_token("DAI", A, B, 6)


class TestNonces:
    def test_starts_at_zero(self, state):
        assert state.nonce(A) == 0

    def test_bump_returns_consumed(self, state):
        assert state.bump_nonce(A) == 0
        assert state.bump_nonce(A) == 1
        assert state.nonce(A) == 2


class TestJournaling:
    def test_revert_restores_eth(self, state):
        state.credit_eth(A, 100)
        snap = state.snapshot()
        state.transfer_eth(A, B, 60)
        state.revert_to(snap)
        assert state.eth_balance(A) == 100
        assert state.eth_balance(B) == 0

    def test_revert_restores_tokens_and_nonces(self, state):
        state.mint_token("DAI", A, 10)
        snap = state.snapshot()
        state.transfer_token("DAI", A, B, 10)
        state.bump_nonce(A)
        state.revert_to(snap)
        assert state.token_balance("DAI", A) == 10
        assert state.nonce(A) == 0

    def test_nested_snapshots(self, state):
        state.credit_eth(A, 100)
        outer = state.snapshot()
        state.debit_eth(A, 10)
        inner = state.snapshot()
        state.debit_eth(A, 20)
        state.revert_to(inner)
        assert state.eth_balance(A) == 90
        state.revert_to(outer)
        assert state.eth_balance(A) == 100

    def test_commit_clears_journal(self, state):
        state.credit_eth(A, 100)
        state.commit()
        snap = state.snapshot()
        assert snap == 0
        state.debit_eth(A, 1)
        state.revert_to(snap)
        assert state.eth_balance(A) == 100

    def test_invalid_snapshot_rejected(self, state):
        with pytest.raises(ValueError):
            state.revert_to(5)

    @given(st.lists(st.tuples(st.integers(0, 3), st.integers(1, 50)),
                    max_size=30))
    def test_revert_always_restores_initial(self, ops):
        state = WorldState()
        accounts = [address_from_label(f"acct-{i}") for i in range(4)]
        for acct in accounts:
            state.credit_eth(acct, 1_000)
        state.commit()
        snap = state.snapshot()
        for who, amount in ops:
            recipient = accounts[(who + 1) % 4]
            try:
                state.transfer_eth(accounts[who], recipient, amount)
            except InsufficientBalance:
                pass
        state.revert_to(snap)
        assert all(state.eth_balance(a) == 1_000 for a in accounts)
