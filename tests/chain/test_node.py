"""Tests for the blockchain store and archive-node queries."""

import pytest

from repro.chain.block import BlockBuilder
from repro.chain.events import TransferEvent
from repro.chain.intents import TokenTransferIntent
from repro.chain.node import ArchiveNode, Blockchain
from repro.chain.state import WorldState
from repro.chain.transaction import Transaction
from repro.chain.types import address_from_label, ether, gwei

A = address_from_label("alice")
B = address_from_label("bob")
MINER = address_from_label("miner")


def build_chain(num_blocks=3):
    state = WorldState()
    state.credit_eth(A, ether(1_000))
    state.mint_token("DAI", A, 10**6)
    chain = Blockchain()
    for n in range(1, num_blocks + 1):
        bld = BlockBuilder(state, number=n, timestamp=13 * n,
                           coinbase=MINER, base_fee=0)
        tx = Transaction(sender=A, nonce=state.nonce(A), to=B,
                         gas_price=gwei(10), gas_limit=60_000,
                         intent=TokenTransferIntent("DAI", B, n))
        bld.apply_transaction(tx)
        chain.append(bld.finalize())
    return chain


class TestBlockchain:
    def test_height_tracks_appends(self):
        chain = build_chain(3)
        assert chain.height == 3
        assert len(chain) == 3

    def test_empty_chain(self):
        chain = Blockchain()
        assert chain.height is None
        assert chain.block_by_number(1) is None

    def test_non_contiguous_rejected(self):
        chain = build_chain(2)
        rogue = build_chain(1).blocks[0]
        with pytest.raises(ValueError):
            chain.append(rogue)

    def test_block_lookup(self):
        chain = build_chain(3)
        assert chain.block_by_number(2).number == 2
        assert chain.block_by_number(99) is None

    def test_locate_transaction(self):
        chain = build_chain(2)
        tx = chain.blocks[1].transactions[0]
        block, index = chain.locate_transaction(tx.hash)
        assert block.number == 2
        assert index == 0


class TestArchiveNode:
    def test_get_transaction_and_receipt(self):
        chain = build_chain(2)
        node = ArchiveNode(chain)
        tx = chain.blocks[0].transactions[0]
        assert node.get_transaction(tx.hash) is tx
        assert node.get_receipt(tx.hash).tx_hash == tx.hash

    def test_missing_transaction(self):
        node = ArchiveNode(build_chain(1))
        assert node.get_transaction("0x" + "00" * 32) is None
        assert node.get_receipt("0x" + "00" * 32) is None

    def test_iter_blocks_bounds_inclusive(self):
        node = ArchiveNode(build_chain(5))
        numbers = [b.number for b in node.iter_blocks(2, 4)]
        assert numbers == [2, 3, 4]

    def test_get_logs_filters_by_type_and_range(self):
        node = ArchiveNode(build_chain(4))
        logs = node.get_logs(TransferEvent, from_block=2, to_block=3)
        assert [log.amount for log in logs] == [2, 3]
        assert all(isinstance(log, TransferEvent) for log in logs)

    def test_get_logs_in_chain_order(self):
        node = ArchiveNode(build_chain(4))
        logs = node.get_logs(TransferEvent)
        assert [log.block_number for log in logs] == [1, 2, 3, 4]

    def test_iter_receipts(self):
        node = ArchiveNode(build_chain(3))
        receipts = list(node.iter_receipts())
        assert len(receipts) == 3
        assert all(r.status for r in receipts)
