"""Durability tests for the segment store's crash-safe write protocol.

Segment and manifest writes follow the
:class:`~repro.reliability.checkpoint.CheckpointStore` protocol — temp
file, flush+fsync, atomic rename, directory fsync — and with a
:class:`~repro.sim.overlap.BackgroundWriter` attached the manifest
snapshot recorded with each job only ever references segments that are
already durable.  These tests pin the consequences: two fsyncs per
write, a previous generation surviving a crash mid-write, in-flight
epochs served from memory, and a SIGKILLed writer leaving a manifest
whose every entry loads cleanly.
"""

import os
import stat
import subprocess
import sys
import threading

import pytest

from repro.chain.segments import (
    MANIFEST_NAME,
    SegmentIntegrityError,
    SegmentStore,
)
from repro.sim.overlap import BackgroundWriter

from tests.chain.test_segments import build_blocks


class TestDurableWrite:
    def test_segment_write_fsyncs_file_and_directory(self, tmp_path,
                                                     monkeypatch):
        """Rename durability needs *two* fsyncs: the temp file's bytes
        and the parent directory's entry table (the rename itself)."""
        store = SegmentStore.create(str(tmp_path / "segs"))
        blocks = build_blocks(3)
        synced = []
        real_fsync = os.fsync

        def recording_fsync(fd):
            synced.append(stat.S_ISDIR(os.fstat(fd).st_mode))
            real_fsync(fd)

        monkeypatch.setattr(os, "fsync", recording_fsync)
        store.write_segment(0, blocks)
        assert True in synced   # the directory entry table
        assert False in synced  # the temp file's bytes

    def test_no_temp_files_left_behind(self, tmp_path):
        store = SegmentStore.create(str(tmp_path / "segs"))
        store.write_segment(0, build_blocks(3))
        store.write_sidecar("seal-000000.pkl", {"epoch": 0})
        leftovers = [name for name in os.listdir(store.root)
                     if name.endswith(".tmp")]
        assert leftovers == []

    def test_crash_mid_write_keeps_previous_generation(self, tmp_path,
                                                       monkeypatch):
        """A crash *before* the rename leaves the old manifest — which
        never references the segment whose write was torn."""
        root = str(tmp_path / "segs")
        store = SegmentStore.create(root)
        blocks = build_blocks(6)
        store.write_segment(0, blocks[:3])

        def explode(src, dst):
            raise KeyboardInterrupt  # simulated kill at the worst time

        monkeypatch.setattr(os, "replace", explode)
        with pytest.raises(KeyboardInterrupt):
            store.write_segment(1, blocks[3:])
        monkeypatch.undo()
        reopened = SegmentStore(root)
        assert [info.epoch for info in reopened.segments] == [0]
        assert [b.hash for b in reopened.load_segment(0)] == \
            [b.hash for b in blocks[:3]]


class TestInFlightReads:
    def test_queued_epoch_served_from_memory(self, tmp_path):
        """While a segment write waits behind the background writer the
        epoch has no durable file yet; reads come from memory and the
        bytes land (with the manifest) once the worker drains."""
        store = SegmentStore.create(str(tmp_path / "segs"))
        blocks = build_blocks(3)
        release = threading.Event()
        with BackgroundWriter() as writer:
            store.attach_writer(writer)
            writer.submit("stall", lambda: release.wait(10))
            store.write_segment(0, blocks)
            assert store.in_flight_epochs == [0]
            served = store.load_segment(0)
            assert [b.hash for b in served] == [b.hash for b in blocks]
            assert not os.path.exists(
                os.path.join(store.root, "seg-000000.pkl"))
            release.set()
            store.flush()
        assert store.in_flight_epochs == []
        durable = store.load_segment(0)
        assert [b.hash for b in durable] == [b.hash for b in blocks]


class TestSidecars:
    def test_roundtrip_sync_and_overlapped(self, tmp_path):
        store = SegmentStore.create(str(tmp_path / "segs"))
        store.write_sidecar("seal-000000.pkl", {"epoch": 0})
        with BackgroundWriter() as writer:
            store.attach_writer(writer)
            store.write_sidecar("seal-000001.pkl", {"epoch": 1})
            store.flush()
        assert store.load_sidecar("seal-000000.pkl") == {"epoch": 0}
        assert store.load_sidecar("seal-000001.pkl") == {"epoch": 1}

    def test_missing_sidecar_raises(self, tmp_path):
        store = SegmentStore.create(str(tmp_path / "segs"))
        with pytest.raises(SegmentIntegrityError, match="unreadable"):
            store.load_sidecar("seal-999999.pkl")

    def test_corrupt_sidecar_raises(self, tmp_path):
        store = SegmentStore.create(str(tmp_path / "segs"))
        path = store.write_sidecar("seal-000000.pkl", {"epoch": 0})
        with open(path, "wb") as handle:
            handle.write(b"\x80\x05 torn")
        with pytest.raises(SegmentIntegrityError, match="unreadable"):
            store.load_sidecar("seal-000000.pkl")


class TestCrashSafety:
    def test_sigkilled_writer_leaves_a_loadable_manifest(self, tmp_path):
        """A process hard-killed with segment writes still queued behind
        the background writer loses only that queued tail: the manifest
        on disk references exactly the segments that were durable, and
        every one of them loads cleanly — never a partial file."""
        root = str(tmp_path / "segs")
        script = (
            "import os, sys, threading\n"
            "from repro.chain.segments import SegmentStore\n"
            "from repro.chain.state import WorldState\n"
            "from repro.chain.block import BlockBuilder\n"
            "from repro.chain.types import address_from_label, ether\n"
            "from repro.sim.overlap import BackgroundWriter\n"
            "a = address_from_label('alice')\n"
            "state = WorldState()\n"
            "state.credit_eth(a, ether(1000))\n"
            "blocks = []\n"
            "for n in range(1, 13):\n"
            "    bld = BlockBuilder(state, number=n, timestamp=13 * n,\n"
            "                       coinbase=a, base_fee=0)\n"
            "    blocks.append(bld.finalize())\n"
            "store = SegmentStore.create(sys.argv[1])\n"
            "writer = BackgroundWriter()\n"
            "store.attach_writer(writer)\n"
            "store.write_segment(0, blocks[0:3])\n"
            "store.write_segment(1, blocks[3:6])\n"
            "store.flush()\n"  # epochs 0 and 1 durable
            "writer.submit('stall', lambda: threading.Event().wait(30))\n"
            "store.write_segment(2, blocks[6:9])\n"   # queued forever
            "store.write_segment(3, blocks[9:12])\n"  # queued forever
            "os.kill(os.getpid(), 9)\n"
        )
        process = subprocess.run(
            [sys.executable, "-c", script, root],
            env={**os.environ, "PYTHONPATH": os.pathsep.join(sys.path)})
        assert process.returncode == -9  # really died by SIGKILL

        # The store reopens without open_or_create falling back to a
        # wipe: the manifest is intact and references only epochs that
        # were durable before the kill.
        store = SegmentStore(root)
        durable = [info.epoch for info in store.segments]
        assert durable == [0, 1]
        for epoch in durable:
            loaded = store.load_segment(epoch)  # verifies fingerprint
            assert len(loaded) == 3
        # The queued tail never made it into the manifest, and whatever
        # it left on disk (nothing, or a temp file) is invisible to a
        # reader and wiped by the next create().
        for name in os.listdir(root):
            assert not name.startswith("seg-0000t")
        fresh = SegmentStore.open_or_create(root)
        assert [info.epoch for info in fresh.segments] == [0, 1]
