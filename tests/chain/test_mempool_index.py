"""The incremental mempool paths against their naive references.

The optimized simulator leans on two claims about ``Mempool``:

* :class:`FeeOrderIndex` ordering is *element-for-element* equal to the
  full re-sort (``ordered_reference``) at every base fee, through any
  interleaving of adds, replacements, removals and evictions; and
* bucketed ``evict_stale`` drops exactly the set the reference linear
  scan would drop.

These tests drive randomized operation sequences through a paired
incremental/reference pool and assert equality after every step, then
pin the (previously dead) deferred-nonce behaviour of ``select``.
"""

import random

from repro.chain.mempool import FeeOrderIndex, Mempool
from repro.chain.transaction import EIP1559, Transaction
from repro.chain.types import address_from_label, gwei

SENDERS = [address_from_label(f"mp-index-{i}") for i in range(6)]
RECIPIENT = address_from_label("mp-index-recipient")


def legacy_tx(sender, nonce, price_gwei, gas_limit=21_000):
    return Transaction(sender=sender, nonce=nonce, to=RECIPIENT,
                       gas_price=gwei(price_gwei), gas_limit=gas_limit)


def fee_market_tx(sender, nonce, max_fee_gwei, priority_gwei,
                  gas_limit=21_000):
    return Transaction(sender=sender, nonce=nonce, to=RECIPIENT,
                       tx_type=EIP1559,
                       max_fee_per_gas=gwei(max_fee_gwei),
                       max_priority_fee_per_gas=gwei(priority_gwei),
                       gas_limit=gas_limit)


def random_tx(rng):
    sender = SENDERS[rng.randrange(len(SENDERS))]
    nonce = rng.randrange(6)
    if rng.random() < 0.5:
        return legacy_tx(sender, nonce, rng.randint(1, 300))
    priority = rng.randint(1, 20)
    return fee_market_tx(sender, nonce, priority + rng.randint(1, 280),
                         priority)


def hashes(txs):
    return [tx.hash for tx in txs]


class PairedPools:
    """One incremental and one reference pool fed identical operations."""

    def __init__(self, ttl_blocks=25):
        self.fast = Mempool(ttl_blocks=ttl_blocks, incremental=True)
        self.ref = Mempool(ttl_blocks=ttl_blocks, incremental=False)

    def add(self, tx, block):
        admitted_fast = self.fast.add(tx, block)
        admitted_ref = self.ref.add(tx, block)
        assert admitted_fast == admitted_ref
        return admitted_fast

    def remove(self, tx_hashes):
        self.fast.remove(tx_hashes)
        self.ref.remove(tx_hashes)

    def evict(self, block):
        evicted_fast = self.fast.evict_stale(block)
        evicted_ref = self.ref.evict_stale(block)
        assert evicted_fast == evicted_ref
        return evicted_fast

    def assert_equal(self, base_fee):
        fast = hashes(self.fast.ordered(base_fee))
        assert fast == hashes(self.ref.ordered(base_fee))
        assert fast == hashes(self.fast.ordered_reference(base_fee))
        assert len(self.fast) == len(self.ref)
        assert (set(self.fast.transactions)
                == set(self.ref.transactions))


class TestIncrementalMatchesReference:
    def test_random_operation_sequences(self):
        """Property: any op interleaving, any base fee — same order."""
        for seed in range(8):
            rng = random.Random(seed)
            pools = PairedPools(ttl_blocks=25)
            for block in range(120):
                for _ in range(rng.randrange(4)):
                    pools.add(random_tx(rng), block)
                if rng.random() < 0.25:
                    pending = pools.ref.transactions
                    if pending:
                        victim = pending[rng.randrange(len(pending))]
                        pools.remove([victim.hash])
                if rng.random() < 0.3:
                    pools.evict(block)
                base_fee = gwei(rng.choice((0, 1, 5, 20, 80, 250)))
                pools.assert_equal(base_fee)
            for base_fee_gwei in (0, 3, 50, 500):
                pools.assert_equal(gwei(base_fee_gwei))

    def test_replacement_sequences(self):
        """Replacements (accepted and rejected) splice identically."""
        rng = random.Random(99)
        pools = PairedPools()
        incumbents = []
        for block in range(60):
            if incumbents and rng.random() < 0.5:
                sender, nonce, price = incumbents[
                    rng.randrange(len(incumbents))]
                bump = rng.choice((1.05, 1.10, 1.50))  # 5 % must fail
                challenger = legacy_tx(sender, nonce,
                                       int(price * bump) + 1)
                if pools.add(challenger, block):
                    incumbents.append(
                        (sender, nonce, int(price * bump) + 1))
            else:
                sender = SENDERS[rng.randrange(len(SENDERS))]
                nonce = rng.randrange(8)
                price = rng.randint(10, 200)
                if pools.add(legacy_tx(sender, nonce, price), block):
                    incumbents.append((sender, nonce, price))
            pools.assert_equal(gwei(rng.choice((0, 10, 60))))

    def test_base_fee_changes_rekey_exactly(self):
        """EIP-1559 tips depend on the base fee, so relative order can
        flip between fees; the lazy re-key must track every flip."""
        pools = PairedPools()
        pools.add(fee_market_tx(SENDERS[0], 0, 100, 1), 0)
        pools.add(fee_market_tx(SENDERS[1], 0, 40, 30), 0)
        pools.add(legacy_tx(SENDERS[2], 0, 35), 0)
        # At fee 0 the priority-1 tx trails; near max_fee it leads the
        # capped one.  Sweep up, down, and back again.
        for base_fee_gwei in (0, 10, 25, 34, 39, 25, 0, 39):
            pools.assert_equal(gwei(base_fee_gwei))


class TestBucketedEviction:
    def test_eviction_set_matches_reference(self):
        pools = PairedPools(ttl_blocks=10)
        staggered = [(legacy_tx(SENDERS[i % 6], i, 20 + i), i * 3)
                     for i in range(12)]
        for tx, block in staggered:
            pools.add(tx, block)
        for now in (11, 20, 33, 50):
            pools.evict(now)
            pools.assert_equal(0)
        assert len(pools.fast) == 0  # everything eventually expires

    def test_evicts_only_past_ttl(self):
        pool = Mempool(ttl_blocks=10)
        old = legacy_tx(SENDERS[0], 0, 50)
        fresh = legacy_tx(SENDERS[1], 0, 50)
        pool.add(old, 0)
        pool.add(fresh, 5)
        assert pool.evict_stale(11) == 1
        assert old.hash not in pool
        assert fresh.hash in pool

    def test_removed_hash_in_stale_bucket_not_double_counted(self):
        pool = Mempool(ttl_blocks=5)
        tx = legacy_tx(SENDERS[0], 0, 50)
        pool.add(tx, 0)
        pool.remove([tx.hash])
        assert pool.evict_stale(100) == 0

    def test_readmitted_tx_keeps_new_arrival_block(self):
        """A hash lingering in an expired bucket must not evict the
        same transaction re-admitted later."""
        pool = Mempool(ttl_blocks=5)
        tx = legacy_tx(SENDERS[0], 0, 50)
        pool.add(tx, 0)
        pool.remove([tx.hash])
        pool.add(tx, 20)  # same hash, new arrival bucket
        assert pool.evict_stale(10) == 0  # old bucket expires empty
        assert tx.hash in pool
        assert pool.evict_stale(26) == 1  # the new arrival expires


class TestSelectDeferredNonces:
    """Pins the multi-round nonce-gap behaviour of ``select`` (the
    rewrite of what used to be dead ``deferred`` bookkeeping)."""

    def test_out_of_order_nonces_fill_across_rounds(self):
        pool = Mempool()
        low_first = legacy_tx(SENDERS[0], 0, 10)
        high_second = legacy_tx(SENDERS[0], 1, 200)
        pool.add(low_first, 0)
        pool.add(high_second, 0)
        # Fee order puts nonce 1 first; it must wait for nonce 0 and
        # then be picked up in the next round, not dropped.
        chosen = pool.select(base_fee=0, gas_budget=10**9,
                             account_nonces={SENDERS[0]: 0})
        assert hashes(chosen) == [low_first.hash, high_second.hash]

    def test_unfillable_gap_left_pending_unreported(self):
        pool = Mempool()
        gapped = legacy_tx(SENDERS[0], 3, 500)
        pool.add(gapped, 0)
        chosen = pool.select(base_fee=0, gas_budget=10**9,
                             account_nonces={SENDERS[0]: 0})
        assert chosen == []
        assert gapped.hash in pool  # deferred means left pending

    def test_stale_nonce_skipped_entirely(self):
        pool = Mempool()
        mined_already = legacy_tx(SENDERS[0], 1, 500)
        current = legacy_tx(SENDERS[0], 4, 100)
        pool.add(mined_already, 0)
        pool.add(current, 0)
        chosen = pool.select(base_fee=0, gas_budget=10**9,
                             account_nonces={SENDERS[0]: 4})
        assert hashes(chosen) == [current.hash]

    def test_long_chain_fills_in_one_call(self):
        pool = Mempool()
        chain = [legacy_tx(SENDERS[0], nonce, 10 * (nonce + 1))
                 for nonce in range(5)]
        for tx in chain:  # ascending fees: worst case round count
            pool.add(tx, 0)
        chosen = pool.select(base_fee=0, gas_budget=10**9,
                             account_nonces={SENDERS[0]: 0})
        assert [tx.nonce for tx in chosen] == [0, 1, 2, 3, 4]


class TestFeeOrderIndexUnit:
    def test_insert_discard_before_first_ordering(self):
        index = FeeOrderIndex()
        first = legacy_tx(SENDERS[0], 0, 10)
        second = legacy_tx(SENDERS[1], 0, 20)
        index.insert(first, 0)
        index.insert(second, 1)
        index.discard(first.hash)
        assert hashes(index.ordered(0)) == [second.hash]
        assert len(index) == 1

    def test_discard_untracked_is_noop(self):
        index = FeeOrderIndex()
        index.insert(legacy_tx(SENDERS[0], 0, 10), 0)
        index.discard("0xdeadbeef")
        assert len(index) == 1

    def test_invalidate_forces_rekey(self):
        index = FeeOrderIndex()
        tx = legacy_tx(SENDERS[0], 0, 10)
        index.insert(tx, 0)
        assert hashes(index.ordered(0)) == [tx.hash]
        index.invalidate()
        assert hashes(index.ordered(0)) == [tx.hash]

    def test_filters_unincludable_without_dropping(self):
        index = FeeOrderIndex()
        cheap = legacy_tx(SENDERS[0], 0, 5)
        rich = legacy_tx(SENDERS[1], 0, 50)
        index.insert(cheap, 0)
        index.insert(rich, 0)
        assert hashes(index.ordered(gwei(10))) == [rich.hash]
        assert hashes(index.ordered(0)) == [rich.hash, cheap.hash]
