"""Property tests for economic conservation across block building.

The EVM's core invariant: value is neither created nor destroyed except
by the block reward (created) and, post-London, the burned base fee
(destroyed).  These properties hold for arbitrary mixes of payments,
failing transactions, and atomic sequences.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chain.block import BlockBuilder
from repro.chain.gas import BLOCK_REWARD
from repro.chain.intents import CoinbaseTipIntent, FailingIntent
from repro.chain.state import WorldState
from repro.chain.transaction import EIP1559, Transaction
from repro.chain.types import address_from_label, ether, gwei

ACCOUNTS = [address_from_label(f"conserve-{i}") for i in range(4)]
MINER = address_from_label("conserve-miner")

tx_strategy = st.tuples(
    st.integers(0, 3),            # sender index
    st.integers(0, 3),            # recipient index
    st.integers(0, 10**18),       # value
    st.integers(1, 200),          # gas price in gwei
    st.sampled_from(["pay", "fail", "tip"]),
)


def total_eth(state):
    return sum(state.eth_balance(a) for a in ACCOUNTS) \
        + state.eth_balance(MINER)


def build_txs(state, specs):
    txs = []
    nonces = {a: state.nonce(a) for a in ACCOUNTS}
    for sender_i, recipient_i, value, price, kind in specs:
        sender = ACCOUNTS[sender_i]
        intent = None
        if kind == "fail":
            intent = FailingIntent()
        elif kind == "tip":
            intent = CoinbaseTipIntent(tip=min(value, ether(1)))
        txs.append(Transaction(
            sender=sender, nonce=nonces[sender],
            to=ACCOUNTS[recipient_i], value=value,
            gas_limit=120_000, gas_price=gwei(price), intent=intent))
        nonces[sender] += 1
    return txs


class TestConservationPreLondon:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(tx_strategy, max_size=12))
    def test_no_value_leaks(self, specs):
        state = WorldState()
        for account in ACCOUNTS:
            state.credit_eth(account, ether(100))
        before = total_eth(state)
        builder = BlockBuilder(state, number=1, timestamp=13,
                               coinbase=MINER, base_fee=0)
        for tx in build_txs(state, specs):
            builder.apply_transaction(tx)
        builder.finalize()
        # Pre-London nothing is burned: the only new wei is the reward.
        assert total_eth(state) == before + BLOCK_REWARD


class TestConservationPostLondon:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(tx_strategy, max_size=12))
    def test_burn_accounted_exactly(self, specs):
        state = WorldState()
        for account in ACCOUNTS:
            state.credit_eth(account, ether(100))
        before = total_eth(state)
        base_fee = gwei(30)
        builder = BlockBuilder(state, number=1, timestamp=13,
                               coinbase=MINER, base_fee=base_fee,
                               burn_base_fee=True)
        for sender_i, recipient_i, value, price, kind in specs:
            sender = ACCOUNTS[sender_i]
            intent = FailingIntent() if kind == "fail" else None
            tx = Transaction(
                sender=sender, nonce=state.nonce(sender),
                to=ACCOUNTS[recipient_i], value=value,
                gas_limit=120_000, tx_type=EIP1559,
                max_fee_per_gas=base_fee + gwei(price),
                max_priority_fee_per_gas=gwei(min(price, 5)),
                intent=intent)
            builder.apply_transaction(tx)
        block = builder.finalize()
        burned = sum(r.burned_fee for r in block.receipts)
        assert burned == base_fee * block.gas_used
        assert total_eth(state) == before + BLOCK_REWARD - burned


class TestSequenceRollbackConservation:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(tx_strategy, min_size=1, max_size=6))
    def test_failed_sequences_leave_no_trace(self, specs):
        """An atomic sequence ending in a guaranteed failure changes
        nothing — not even by one wei."""
        state = WorldState()
        for account in ACCOUNTS:
            state.credit_eth(account, ether(100))
        balances = {a: state.eth_balance(a) for a in ACCOUNTS}
        builder = BlockBuilder(state, number=1, timestamp=13,
                               coinbase=MINER, base_fee=0)
        txs = build_txs(state, specs)
        poison = Transaction(sender=ACCOUNTS[0],
                             nonce=state.nonce(ACCOUNTS[0]) + len([
                                 t for t in txs
                                 if t.sender == ACCOUNTS[0]]),
                             to=ACCOUNTS[1], gas_limit=60_000,
                             gas_price=gwei(5), intent=FailingIntent())
        assert builder.apply_atomic_sequence(txs + [poison]) is None
        for account in ACCOUNTS:
            assert state.eth_balance(account) == balances[account]
        assert state.eth_balance(MINER) == 0
