"""Unit tests for chain primitive types."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.chain import types as t


class TestDenominations:
    def test_ether_round_trip(self):
        assert t.ether(1) == 10**18
        assert t.to_eth(t.ether(2.5)) == pytest.approx(2.5)

    def test_gwei_round_trip(self):
        assert t.gwei(1) == 10**9
        assert t.to_gwei(t.gwei(55)) == pytest.approx(55.0)

    def test_ether_fractional(self):
        assert t.ether(0.000000001) == 10**9

    def test_constants_relation(self):
        assert t.ETHER == t.GWEI * 10**9
        assert t.WEI == 1

    @given(st.floats(min_value=0, max_value=1e6, allow_nan=False))
    def test_ether_to_eth_inverse(self, amount):
        assert t.to_eth(t.ether(amount)) == pytest.approx(amount, rel=1e-9,
                                                          abs=1e-12)


class TestAddresses:
    def test_deterministic(self):
        assert t.address_from_label("miner-1") == t.address_from_label("miner-1")

    def test_distinct_labels_distinct_addresses(self):
        assert t.address_from_label("a") != t.address_from_label("b")

    def test_shape(self):
        addr = t.address_from_label("whoever")
        assert t.is_address(addr)
        assert len(addr) == 42

    def test_zero_address_is_address(self):
        assert t.is_address(t.ZERO_ADDRESS)

    @pytest.mark.parametrize("bad", [
        "", "0x", "0x1234", 42, None, "1234" * 10 + "12",
        "0x" + "zz" * 20,
    ])
    def test_is_address_rejects(self, bad):
        assert not t.is_address(bad)

    @given(st.text(min_size=1, max_size=40))
    def test_any_label_yields_valid_address(self, label):
        assert t.is_address(t.address_from_label(label))


class TestHashes:
    def test_hash_of_deterministic(self):
        assert t.hash_of(["x", 1]) == t.hash_of(["x", 1])

    def test_hash_of_order_sensitive(self):
        assert t.hash_of(["x", 1]) != t.hash_of([1, "x"])

    def test_hash_shape(self):
        assert t.is_hash32(t.hash_of(["anything"]))

    def test_hash_no_concat_ambiguity(self):
        assert t.hash_of(["ab", "c"]) != t.hash_of(["a", "bc"])

    @pytest.mark.parametrize("bad", ["0x1234", "", None, 7])
    def test_is_hash32_rejects(self, bad):
        assert not t.is_hash32(bad)
