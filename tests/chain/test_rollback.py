"""Blockchain rollback seam and parent-linkage validation.

``Blockchain.append`` validates every link; ``Blockchain.rollback``
truncates to a fork point keeping every derived structure — the tx
locator and the read index — consistent.  The anchor property (ISSUE):
**rollback + re-append is indistinguishable from a chain that never
forked**, postings and queries element-for-element.
"""

import random

import pytest

from repro.chain.events import SwapEvent, TransferEvent
from repro.chain.node import ArchiveNode, Blockchain
from repro.chain.types import address_from_label

from tests.chain.test_index import (
    POOL,
    chain_of,
    make_block,
    make_receipt,
)


def logs_chain(n_blocks, seed):
    """A chain of ``n_blocks`` with a seeded random mix of log kinds."""
    rng = random.Random(seed)
    per_block = []
    for _ in range(n_blocks):
        logs = []
        for _ in range(rng.randrange(0, 4)):
            if rng.random() < 0.5:
                logs.append(TransferEvent(POOL, amount=rng.randrange(9)))
            else:
                logs.append(SwapEvent(POOL, venue="UniswapV2"))
        per_block.append(logs)
    return per_block


class TestAppendValidation:
    def test_append_stamps_parent_hash(self):
        chain = chain_of([], [])
        genesis, child = chain.blocks
        assert genesis.parent_hash is None
        assert child.parent_hash == genesis.hash

    def test_non_contiguous_append_rejected(self):
        chain = chain_of([])
        with pytest.raises(ValueError, match="non-contiguous"):
            chain.append(make_block(3))

    def test_parent_hash_mismatch_rejected(self):
        chain = chain_of([], [])
        wrong = make_block(3)
        wrong.parent_hash = "0x" + "ab" * 32
        with pytest.raises(ValueError, match="parent hash mismatch"):
            chain.append(wrong)
        assert chain.height == 2  # nothing was stored

    def test_restamped_block_revalidates(self):
        """A block the chain already stamped re-appends cleanly after a
        rollback — the stream engine's replay path."""
        chain = chain_of([], [], [])
        removed = chain.rollback(1)
        assert [b.parent_hash for b in removed] \
            == [chain.blocks[0].hash, removed[0].hash]
        for block in removed:
            chain.append(block)
        assert chain.height == 3


class TestRollback:
    def test_rollback_truncates_and_returns_removed(self):
        chain = chain_of([], [], [], [], [])
        removed = chain.rollback(2)
        assert [b.number for b in removed] == [3, 4, 5]
        assert chain.height == 2
        assert chain.block_by_number(3) is None

    def test_rollback_at_or_above_tip_is_noop(self):
        chain = chain_of([], [])
        assert chain.rollback(2) == []
        assert chain.rollback(9) == []
        assert chain.height == 2

    def test_rollback_past_first_block_rejected(self):
        chain = chain_of([], [])
        with pytest.raises(ValueError, match="chain starts at"):
            chain.rollback(0)

    def test_rollback_drops_tx_locations(self):
        from repro.chain.block import BlockBuilder
        from repro.chain.intents import TokenTransferIntent
        from repro.chain.state import WorldState
        from repro.chain.transaction import Transaction
        from repro.chain.types import ether, gwei
        sender = address_from_label("rollback-sender")
        state = WorldState()
        state.credit_eth(sender, ether(1_000))
        state.mint_token("DAI", sender, 10**6)
        chain = Blockchain()
        for number in (1, 2):
            builder = BlockBuilder(state, number=number,
                                   timestamp=13 * number,
                                   coinbase=address_from_label("m"),
                                   base_fee=0)
            builder.apply_transaction(Transaction(
                sender=sender, nonce=state.nonce(sender), to=POOL,
                gas_price=gwei(10), gas_limit=60_000,
                intent=TokenTransferIntent("DAI", POOL, number)))
            chain.append(builder.finalize())
        kept = chain.blocks[0].transactions[0].hash
        dropped = chain.blocks[1].transactions[0].hash
        chain.rollback(1)
        assert chain.locate_transaction(kept) is not None
        assert chain.locate_transaction(dropped) is None

    def test_rollback_truncates_index_cursors(self):
        chain = chain_of([TransferEvent(POOL, amount=1)], [],
                         [TransferEvent(POOL, amount=2)])
        node = ArchiveNode(chain)
        node.get_logs(TransferEvent)  # index everything
        assert chain.index.logs_indexed_through == 3
        chain.rollback(1)
        assert chain.index.blocks_indexed == 1
        assert chain.index.logs_indexed_through == 1
        assert len(node.get_logs(TransferEvent)) == 1


class TestRollbackReplayEquivalence:
    """rollback + re-append ≡ a fresh chain, property-style."""

    @pytest.mark.parametrize("seed", range(5))
    def test_replayed_index_matches_fresh(self, seed):
        rng = random.Random(1000 + seed)
        per_block = logs_chain(rng.randrange(4, 12), seed)
        fork_point = rng.randrange(1, len(per_block))

        replayed = chain_of(*per_block)
        fresh = chain_of(*per_block)
        node = ArchiveNode(replayed)
        node.get_logs(TransferEvent)  # force a fully-built index
        removed = replayed.rollback(fork_point)
        for block in removed:
            replayed.append(block)

        for cls in (TransferEvent, SwapEvent):
            assert replayed.index.postings(cls) \
                == fresh.index.postings(cls)
            assert node.get_logs(cls) \
                == ArchiveNode(fresh).get_logs(cls)
            # Ranged queries bisect the rebuilt tiers identically.
            lo = rng.randrange(1, len(per_block) + 1)
            hi = rng.randrange(lo, len(per_block) + 1)
            assert node.get_logs(cls, lo, hi) \
                == ArchiveNode(fresh).get_logs(cls, lo, hi)
        assert [b.hash for b in replayed.blocks] \
            == [b.hash for b in fresh.blocks]

    @pytest.mark.parametrize("seed", range(3))
    def test_replay_with_different_suffix_matches_fresh(self, seed):
        """Re-append a *different* suffix (the reorg case) and compare
        against a chain built with that suffix from scratch."""
        rng = random.Random(2000 + seed)
        shared = logs_chain(rng.randrange(3, 8), seed)
        suffix = logs_chain(rng.randrange(1, 5), seed + 99)
        miner = address_from_label(f"fork-miner-{seed}")

        def suffix_blocks(start):
            blocks = []
            for offset, logs in enumerate(suffix):
                number = start + offset
                receipt = make_receipt(number, 0, list(logs))
                block = make_block(number, [receipt])
                block.miner = miner  # distinct hash from the old branch
                blocks.append(block)
            return blocks

        reorged = chain_of(*shared)
        node = ArchiveNode(reorged)
        node.get_logs(SwapEvent)
        fork_point = rng.randrange(1, len(shared) + 1)
        reorged.rollback(fork_point)
        for block in suffix_blocks(fork_point + 1):
            reorged.append(block)

        fresh = chain_of(*shared[:fork_point])
        for block in suffix_blocks(fork_point + 1):
            fresh.append(block)

        for cls in (TransferEvent, SwapEvent):
            assert node.get_logs(cls) == ArchiveNode(fresh).get_logs(cls)
            assert reorged.index.postings(cls) \
                == fresh.index.postings(cls)
