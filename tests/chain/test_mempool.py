"""Tests for mempool admission, replacement and fee-descending selection."""

from repro.chain.mempool import Mempool
from repro.chain.transaction import Transaction
from repro.chain.types import address_from_label, gwei

A = address_from_label("acct-a")
B = address_from_label("acct-b")
C = address_from_label("acct-c")


def tx(sender=A, nonce=0, price=gwei(50), gas_limit=21_000):
    return Transaction(sender=sender, nonce=nonce, to=B,
                       gas_price=price, gas_limit=gas_limit)


class TestAdmission:
    def test_add_and_contains(self):
        pool = Mempool()
        t = tx()
        assert pool.add(t, current_block=1)
        assert t.hash in pool
        assert len(pool) == 1

    def test_duplicate_rejected(self):
        pool = Mempool()
        t = tx()
        pool.add(t, 1)
        assert not pool.add(t, 2)

    def test_records_first_seen(self):
        pool = Mempool()
        t = tx()
        pool.add(t, 7)
        assert t.first_seen_block == 7


class TestReplacement:
    def test_insufficient_bump_rejected(self):
        pool = Mempool()
        pool.add(tx(price=gwei(100)), 1)
        weak = tx(price=gwei(105))  # only 5 % bump
        assert not pool.add(weak, 1)

    def test_sufficient_bump_replaces(self):
        pool = Mempool()
        old = tx(price=gwei(100))
        pool.add(old, 1)
        new = tx(price=gwei(110))
        assert pool.add(new, 1)
        assert old.hash not in pool
        assert new.hash in pool
        assert len(pool) == 1

    def test_different_nonce_not_replacement(self):
        pool = Mempool()
        pool.add(tx(nonce=0, price=gwei(100)), 1)
        assert pool.add(tx(nonce=1, price=gwei(1)), 1)
        assert len(pool) == 2


class TestRemovalAndEviction:
    def test_remove_included(self):
        pool = Mempool()
        t = tx()
        pool.add(t, 1)
        pool.remove([t.hash])
        assert len(pool) == 0

    def test_remove_unknown_is_noop(self):
        pool = Mempool()
        pool.remove(["0x" + "ab" * 32])

    def test_evict_stale(self):
        pool = Mempool(ttl_blocks=10)
        old, fresh = tx(nonce=0), tx(sender=C, nonce=0)
        pool.add(old, 1)
        pool.add(fresh, 11)
        assert pool.evict_stale(current_block=12) == 1
        assert old.hash not in pool
        assert fresh.hash in pool

    def test_replacement_after_removal_allowed(self):
        pool = Mempool()
        old = tx(price=gwei(100))
        pool.add(old, 1)
        pool.remove([old.hash])
        assert pool.add(tx(price=gwei(1)), 2)


class TestOrdering:
    def test_ordered_by_tip_descending(self):
        pool = Mempool()
        cheap = tx(sender=A, price=gwei(10))
        rich = tx(sender=B, price=gwei(90))
        pool.add(cheap, 1)
        pool.add(rich, 1)
        assert pool.ordered(base_fee=0) == [rich, cheap]

    def test_ordered_excludes_below_base_fee(self):
        pool = Mempool()
        pool.add(tx(price=gwei(10)), 1)
        assert pool.ordered(base_fee=gwei(20)) == []

    def test_tie_breaks_by_arrival(self):
        pool = Mempool()
        first = tx(sender=A, price=gwei(50))
        second = tx(sender=B, price=gwei(50))
        pool.add(first, 1)
        pool.add(second, 2)
        assert pool.ordered(0) == [first, second]


class TestSelection:
    def test_respects_gas_budget(self):
        pool = Mempool()
        for i in range(5):
            pool.add(tx(sender=address_from_label(f"s{i}"),
                        gas_limit=100_000), 1)
        chosen = pool.select(base_fee=0, gas_budget=250_000)
        assert len(chosen) == 2

    def test_respects_nonce_order(self):
        pool = Mempool()
        n1 = tx(nonce=1, price=gwei(99))
        n0 = tx(nonce=0, price=gwei(1))
        pool.add(n1, 1)
        pool.add(n0, 1)
        chosen = pool.select(base_fee=0, gas_budget=10**9,
                             account_nonces={A: 0})
        assert chosen.index(n0) < chosen.index(n1)

    def test_nonce_gap_blocks_later_txs(self):
        pool = Mempool()
        gap = tx(nonce=2, price=gwei(99))
        pool.add(gap, 1)
        chosen = pool.select(base_fee=0, gas_budget=10**9,
                             account_nonces={A: 0})
        assert chosen == []

    def test_stale_nonce_skipped(self):
        pool = Mempool()
        stale = tx(nonce=0)
        pool.add(stale, 1)
        chosen = pool.select(base_fee=0, gas_budget=10**9,
                             account_nonces={A: 5})
        assert chosen == []

    def test_highest_payers_win_budget(self):
        pool = Mempool()
        rich = tx(sender=B, price=gwei(90), gas_limit=100_000)
        poor = tx(sender=C, price=gwei(10), gas_limit=100_000)
        pool.add(poor, 1)
        pool.add(rich, 1)
        chosen = pool.select(base_fee=0, gas_budget=100_000)
        assert chosen == [rich]
