"""Hypothesis properties for mempool selection invariants."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chain.mempool import Mempool
from repro.chain.transaction import Transaction
from repro.chain.types import address_from_label, gwei

SENDERS = [address_from_label(f"mp-prop-{i}") for i in range(5)]

tx_specs = st.lists(
    st.tuples(st.integers(0, 4),       # sender
              st.integers(0, 3),       # nonce
              st.integers(1, 500),     # gas price gwei
              st.integers(21_000, 300_000)),  # gas limit
    max_size=30)


def build_pool(specs):
    pool = Mempool()
    for block, (sender_i, nonce, price, gas_limit) in enumerate(specs):
        tx = Transaction(sender=SENDERS[sender_i], nonce=nonce,
                         to=SENDERS[0], gas_price=gwei(price),
                         gas_limit=gas_limit)
        pool.add(tx, current_block=block)
    return pool


class TestSelectionProperties:
    @settings(max_examples=60, deadline=None)
    @given(tx_specs, st.integers(0, 2_000_000))
    def test_selection_within_budget_and_pool(self, specs, budget):
        pool = build_pool(specs)
        nonces = {s: 0 for s in SENDERS}
        chosen = pool.select(base_fee=0, gas_budget=budget,
                             account_nonces=nonces)
        assert sum(tx.gas_limit for tx in chosen) <= budget
        hashes = [tx.hash for tx in chosen]
        assert len(set(hashes)) == len(hashes)  # no duplicates
        assert all(h in pool for h in hashes)

    @settings(max_examples=60, deadline=None)
    @given(tx_specs)
    def test_per_sender_nonces_contiguous(self, specs):
        pool = build_pool(specs)
        nonces = {s: 0 for s in SENDERS}
        chosen = pool.select(base_fee=0, gas_budget=10**9,
                             account_nonces=nonces)
        per_sender = {}
        for tx in chosen:
            per_sender.setdefault(tx.sender, []).append(tx.nonce)
        for sender, seen in per_sender.items():
            assert seen == list(range(len(seen)))

    @settings(max_examples=60, deadline=None)
    @given(tx_specs, st.integers(0, 200))
    def test_base_fee_filters_bids(self, specs, base_gwei):
        pool = build_pool(specs)
        base_fee = gwei(base_gwei)
        for tx in pool.ordered(base_fee):
            assert tx.max_bid_per_gas() >= base_fee

    @settings(max_examples=40, deadline=None)
    @given(tx_specs)
    def test_single_sender_selection_is_fee_ordered(self, specs):
        """With one tx per sender (no nonce coupling), selection follows
        the descending-fee default strategy exactly."""
        pool = Mempool()
        seen_senders = set()
        for block, (sender_i, _, price, gas_limit) in enumerate(specs):
            if sender_i in seen_senders:
                continue
            seen_senders.add(sender_i)
            pool.add(Transaction(sender=SENDERS[sender_i], nonce=0,
                                 to=SENDERS[0], gas_price=gwei(price),
                                 gas_limit=gas_limit), block)
        chosen = pool.select(base_fee=0, gas_budget=10**9,
                             account_nonces={s: 0 for s in SENDERS})
        prices = [tx.gas_price for tx in chosen]
        assert prices == sorted(prices, reverse=True)


class TestFlashLoanLiquidityProperty:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(1, 10**24), st.integers(0, 10**21),
           st.integers(0, 10**9))
    def test_provider_never_loses_liquidity(self, loan_amount,
                                            user_funds, seed):
        """Whatever happens inside the transaction, a flash-loan
        provider's balance never decreases: either repaid with fee, or
        the lending itself unwound."""
        from repro.chain.block import BlockBuilder
        from repro.chain.state import WorldState
        from repro.chain.types import ether
        from repro.lending.flashloan import FlashLoanIntent, \
            FlashLoanProvider
        rng = random.Random(seed)
        state = WorldState()
        provider = FlashLoanProvider("Aave")
        provider.provision(state, "WETH", ether(1_000))
        user = address_from_label("flash-prop-user")
        state.credit_eth(user, ether(10))
        state.mint_token("WETH", user, user_funds)
        before = provider.available(state, "WETH")
        tx = Transaction(sender=user, nonce=0, to=provider.address,
                         gas_price=gwei(rng.randint(1, 100)),
                         gas_limit=500_000,
                         intent=FlashLoanIntent(provider.address,
                                                "WETH", loan_amount))
        builder = BlockBuilder(state, number=1, timestamp=13,
                               coinbase=address_from_label("m"),
                               base_fee=0,
                               contracts={provider.address: provider})
        builder.apply_transaction(tx)
        builder.finalize()
        assert provider.available(state, "WETH") >= before
