"""Tests for the EIP-1559 base-fee controller."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.chain.gas import (
    BASE_FEE_MAX_CHANGE_DENOMINATOR,
    BLOCK_GAS_LIMIT,
    MIN_BASE_FEE,
    next_base_fee,
)
from repro.chain.types import gwei

TARGET = BLOCK_GAS_LIMIT // 2


class TestNextBaseFee:
    def test_at_target_unchanged(self):
        assert next_base_fee(gwei(100), TARGET) == gwei(100)

    def test_full_block_raises_by_eighth(self):
        base = gwei(100)
        expected = base + base // BASE_FEE_MAX_CHANGE_DENOMINATOR
        assert next_base_fee(base, BLOCK_GAS_LIMIT) == expected

    def test_empty_block_lowers_by_eighth(self):
        base = gwei(100)
        expected = base - base // BASE_FEE_MAX_CHANGE_DENOMINATOR
        assert next_base_fee(base, 0) == expected

    def test_never_below_floor(self):
        assert next_base_fee(MIN_BASE_FEE, 0) == MIN_BASE_FEE
        assert next_base_fee(0, 0) == MIN_BASE_FEE

    def test_overfull_increase_at_least_one_wei(self):
        assert next_base_fee(8, TARGET + 1) >= 9

    def test_invalid_gas_limit(self):
        with pytest.raises(ValueError):
            next_base_fee(gwei(1), 0, 0)

    @given(st.integers(MIN_BASE_FEE, 10**13),
           st.integers(0, BLOCK_GAS_LIMIT))
    def test_change_bounded_by_eighth(self, base, used):
        nxt = next_base_fee(base, used)
        bound = base // BASE_FEE_MAX_CHANGE_DENOMINATOR + 1
        assert abs(nxt - base) <= bound
        assert nxt >= MIN_BASE_FEE

    @given(st.integers(MIN_BASE_FEE, 10**13))
    def test_monotone_in_gas_used(self, base):
        low = next_base_fee(base, TARGET // 2)
        mid = next_base_fee(base, TARGET)
        high = next_base_fee(base, TARGET + TARGET // 2)
        assert low <= mid <= high
