"""Tests for the spillable segment store and segment-backed chain.

The segment store follows the world-cache integrity rule: any anomaly
— missing manifest, unknown format, truncated or tampered segment —
raises :class:`SegmentIntegrityError` with a clear message, and
``open_or_create`` answers every anomaly with a fresh store.  The
spilling chain must serve reads bit-identically to a plain in-memory
:class:`Blockchain` while keeping only a bounded tail resident.
"""

import json
import os
import pickle

import pytest

from repro.chain.block import BlockBuilder
from repro.chain.intents import TokenTransferIntent
from repro.chain.node import Blockchain
from repro.chain.segments import (
    MANIFEST_NAME,
    SEGMENT_FORMAT,
    SegmentIntegrityError,
    SegmentReader,
    SegmentStore,
    SpillingBlockchain,
)
from repro.chain.state import WorldState
from repro.chain.transaction import Transaction
from repro.chain.types import address_from_label, ether, gwei

A = address_from_label("alice")
B = address_from_label("bob")
MINER = address_from_label("miner")


def build_blocks(num_blocks):
    """``num_blocks`` contiguous blocks, one token transfer each."""
    state = WorldState()
    state.credit_eth(A, ether(1_000))
    state.mint_token("DAI", A, 10**6)
    blocks = []
    for n in range(1, num_blocks + 1):
        bld = BlockBuilder(state, number=n, timestamp=13 * n,
                           coinbase=MINER, base_fee=0)
        tx = Transaction(sender=A, nonce=state.nonce(A), to=B,
                         gas_price=gwei(10), gas_limit=60_000,
                         intent=TokenTransferIntent("DAI", B, n))
        bld.apply_transaction(tx)
        blocks.append(bld.finalize())
    return blocks


def filled_store(tmp_path, epochs=4, epoch_blocks=3):
    """A store with ``epochs`` spilled segments plus the source blocks."""
    store = SegmentStore.create(str(tmp_path / "segs"))
    blocks = build_blocks(epochs * epoch_blocks)
    for epoch in range(epochs):
        store.write_segment(
            epoch, blocks[epoch * epoch_blocks:(epoch + 1) * epoch_blocks])
    return store, blocks


class TestSegmentStore:
    def test_round_trip(self, tmp_path):
        store, blocks = filled_store(tmp_path)
        loaded = store.load_segment(1)
        assert [b.number for b in loaded] == [4, 5, 6]
        assert [b.hash for b in loaded] == [b.hash for b in blocks[3:6]]
        manifest = json.loads(
            (tmp_path / "segs" / MANIFEST_NAME).read_text())
        assert manifest["format"] == SEGMENT_FORMAT
        assert len(manifest["segments"]) == 4

    def test_segment_for_block_bisects(self, tmp_path):
        store, _ = filled_store(tmp_path)
        assert store.segment_for_block(1).epoch == 0
        assert store.segment_for_block(6).epoch == 1
        assert store.segment_for_block(12).epoch == 3
        assert store.segment_for_block(13) is None
        assert store.segment_for_block(0) is None

    def test_non_contiguous_segment_rejected(self, tmp_path):
        store = SegmentStore.create(str(tmp_path / "segs"))
        blocks = build_blocks(4)
        with pytest.raises(ValueError):
            store.write_segment(0, [blocks[0], blocks[2]])
        with pytest.raises(ValueError):
            store.write_segment(0, [])

    def test_reopen_reads_existing_manifest(self, tmp_path):
        store, blocks = filled_store(tmp_path)
        reopened = SegmentStore(store.root)
        assert [s.epoch for s in reopened.segments] == [0, 1, 2, 3]
        assert [b.hash for b in reopened.load_segment(2)] == \
            [b.hash for b in blocks[6:9]]


class TestIntegrity:
    def test_corrupt_segment_file(self, tmp_path):
        store, _ = filled_store(tmp_path)
        path = os.path.join(store.root, store.segments[1].filename)
        with open(path, "wb") as handle:
            handle.write(b"not a pickle at all")
        with pytest.raises(SegmentIntegrityError):
            store.load_segment(1)

    def test_truncated_segment_file(self, tmp_path):
        store, _ = filled_store(tmp_path)
        path = os.path.join(store.root, store.segments[2].filename)
        payload = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(payload[:len(payload) // 2])
        with pytest.raises(SegmentIntegrityError):
            store.load_segment(2)

    def test_missing_segment_file(self, tmp_path):
        store, _ = filled_store(tmp_path)
        os.remove(os.path.join(store.root, store.segments[0].filename))
        with pytest.raises(SegmentIntegrityError):
            store.load_segment(0)

    def test_fingerprint_mismatch(self, tmp_path):
        store, blocks = filled_store(tmp_path)
        # Swap epoch 0's file for epoch 1's content: unpickles fine,
        # right count, but the content fingerprint gives it away.
        with open(os.path.join(store.root,
                               store.segments[0].filename), "wb") as out:
            pickle.dump(blocks[3:6], out)
        with pytest.raises(SegmentIntegrityError,
                           match="fingerprint mismatch"):
            store.load_segment(0)

    def test_unknown_epoch(self, tmp_path):
        store, _ = filled_store(tmp_path)
        with pytest.raises(SegmentIntegrityError):
            store.load_segment(99)


class TestFormatRejection:
    def test_formatless_manifest_names_the_old_layout(self, tmp_path):
        """A cache written by <= 1.5.0 (no format marker) is rejected
        with a message that says so, never a pickle traceback."""
        root = tmp_path / "old"
        root.mkdir()
        (root / MANIFEST_NAME).write_text(json.dumps({"segments": []}))
        with pytest.raises(SegmentIntegrityError,
                           match=r"older repro \(<= 1\.5\.0"):
            SegmentStore(str(root))

    def test_future_format_rejected_clearly(self, tmp_path):
        root = tmp_path / "future"
        root.mkdir()
        (root / MANIFEST_NAME).write_text(
            json.dumps({"format": SEGMENT_FORMAT + 1, "segments": []}))
        with pytest.raises(SegmentIntegrityError,
                           match=f"format {SEGMENT_FORMAT}"):
            SegmentStore(str(root))

    def test_nonempty_dir_without_manifest_refused(self, tmp_path):
        root = tmp_path / "junk"
        root.mkdir()
        (root / "unrelated.txt").write_text("keep out")
        with pytest.raises(SegmentIntegrityError, match="no manifest"):
            SegmentStore(str(root))

    def test_garbage_manifest(self, tmp_path):
        root = tmp_path / "garbage"
        root.mkdir()
        (root / MANIFEST_NAME).write_text("{not json")
        with pytest.raises(SegmentIntegrityError, match="unreadable"):
            SegmentStore(str(root))

    def test_open_or_create_answers_anomaly_with_fresh(self, tmp_path):
        """The PR-4 rule: any anomaly means re-simulate from scratch."""
        root = tmp_path / "recover"
        root.mkdir()
        (root / MANIFEST_NAME).write_text(json.dumps({"segments": []}))
        (root / "seg-000000.pkl").write_bytes(b"stale garbage")
        store = SegmentStore.open_or_create(str(root))
        assert store.segments == []
        assert not (root / "seg-000000.pkl").exists()
        blocks = build_blocks(2)
        store.write_segment(0, blocks)
        assert [b.hash for b in store.load_segment(0)] == \
            [b.hash for b in blocks]


class TestSegmentReader:
    def test_lru_stays_bounded(self, tmp_path):
        store, _ = filled_store(tmp_path, epochs=5)
        reader = SegmentReader(store, max_resident=2)
        for number in (1, 4, 7, 10, 13):
            assert reader.block(number).number == number
            assert len(reader.resident_epochs) <= 2
        assert reader.resident_epochs == [3, 4]
        # Re-touching an older block recalls it through the LRU.
        assert reader.block(1).number == 1
        assert reader.resident_epochs == [4, 0]

    def test_bounded_matches_unbounded_reference(self, tmp_path):
        """The manifest-bisect fast path must yield exactly what the
        ``bounded=False`` reference (``_iter_range_unbounded``) yields,
        for full, partial, cross-segment, and empty ranges."""
        store, _ = filled_store(tmp_path, epochs=4, epoch_blocks=3)
        fast = SegmentReader(store, max_resident=1)
        reference = SegmentReader(store, bounded=False)
        ranges = [(None, None), (1, 12), (2, 11), (4, 6), (5, 8),
                  (1, 1), (12, 12), (9, 4), (20, 30)]
        for lo, hi in ranges:
            got = [b.hash for b in fast.iter_range(lo, hi)]
            want = [b.hash for b in reference.iter_range(lo, hi)]
            assert got == want, (lo, hi)
        # The reference never evicts; the fast path stayed bounded.
        assert len(fast.resident_epochs) <= 1
        assert len(reference.resident_epochs) == 4

    def test_block_outside_store(self, tmp_path):
        store, _ = filled_store(tmp_path)
        reader = SegmentReader(store)
        assert reader.block(999) is None

    def test_max_resident_must_be_positive(self, tmp_path):
        store, _ = filled_store(tmp_path)
        with pytest.raises(ValueError):
            SegmentReader(store, max_resident=0)


class TestSpillingBlockchain:
    def spilled_pair(self, tmp_path, num_blocks=14, epoch_blocks=3,
                     max_resident=2):
        """The same block sequence appended to a plain chain and a
        spilling chain (shared objects; both stamp identical linkage)."""
        blocks = build_blocks(num_blocks)
        plain = Blockchain()
        store = SegmentStore.create(str(tmp_path / "segs"))
        spilling = SpillingBlockchain(
            store, epoch_blocks=epoch_blocks,
            max_resident_epochs=max_resident)
        for block in blocks:
            plain.append(block)
            spilling.append(block)
        return plain, spilling

    def test_residency_stays_bounded(self, tmp_path):
        _, spilling = self.spilled_pair(tmp_path, num_blocks=20,
                                        epoch_blocks=3, max_resident=2)
        # Retained tail plus the in-progress epoch.
        assert len(spilling.blocks) <= (2 + 1) * 3
        assert spilling.height == 20
        assert spilling.earliest_number == 1

    def test_reads_match_in_memory_chain(self, tmp_path):
        plain, spilling = self.spilled_pair(tmp_path)
        for number in range(1, 15):
            assert spilling.block_by_number(number).hash == \
                plain.block_by_number(number).hash
        assert spilling.block_by_number(99) is None
        for lo, hi in ((None, None), (1, 14), (2, 5), (7, 13),
                       (14, 14), (10, 3)):
            got = [b.hash for b in spilling.iter_range(lo, hi)]
            want = [b.hash for b in plain.iter_range(lo, hi)] \
                if hasattr(plain, "iter_range") else \
                [b.hash for b in plain.blocks
                 if (lo is None or b.number >= lo)
                 and (hi is None or b.number <= hi)]
            assert got == want, (lo, hi)

    def test_locate_transaction_falls_back_to_segments(self, tmp_path):
        plain, spilling = self.spilled_pair(tmp_path)
        # Block 1 was evicted long ago; its tx resolves via segments.
        tx = plain.blocks[0].transactions[0]
        located = spilling.locate_transaction(tx.hash)
        assert located is not None
        block, position = located
        assert block.number == 1 and position == 0
        assert spilling.locate_transaction("0x" + "00" * 32) is None

    def test_index_property_raises(self, tmp_path):
        _, spilling = self.spilled_pair(tmp_path)
        with pytest.raises(RuntimeError, match="no in-memory index"):
            spilling.index

    def test_rollback_below_resident_window_raises(self, tmp_path):
        _, spilling = self.spilled_pair(tmp_path)
        resident_start = spilling.blocks[0].number
        with pytest.raises(ValueError, match="resident window"):
            spilling.rollback(resident_start - 2)
        # Shallow rollbacks inside the window still work.
        spilling.rollback(13)
        assert spilling.height == 13

    def test_validation(self, tmp_path):
        store = SegmentStore.create(str(tmp_path / "segs"))
        with pytest.raises(ValueError):
            SpillingBlockchain(store, epoch_blocks=0)
        with pytest.raises(ValueError):
            SpillingBlockchain(store, epoch_blocks=3,
                               max_resident_epochs=0)
