"""Tests for block building: fees, validity, atomic sequences, finalize."""

import pytest

from repro.chain.block import BlockBuilder
from repro.chain.gas import BLOCK_REWARD
from repro.chain.intents import CoinbaseTipIntent, FailingIntent, \
    TokenTransferIntent
from repro.chain.state import WorldState
from repro.chain.transaction import EIP1559, Transaction
from repro.chain.types import address_from_label, ether, gwei

A = address_from_label("alice")
B = address_from_label("bob")
MINER = address_from_label("miner")


@pytest.fixture
def state():
    s = WorldState()
    s.credit_eth(A, ether(100))
    s.credit_eth(B, ether(100))
    return s


def builder(state, base_fee=0, burn=False, number=1):
    return BlockBuilder(state, number=number, timestamp=13 * number,
                        coinbase=MINER, base_fee=base_fee,
                        burn_base_fee=burn)


def payment(sender=A, nonce=0, value=ether(1), price=gwei(50), **kw):
    return Transaction(sender=sender, nonce=nonce, to=B, value=value,
                       gas_price=price, **kw)


class TestFeeAccounting:
    def test_pre_london_miner_gets_full_fee(self, state):
        bld = builder(state)
        receipt = bld.apply_transaction(payment())
        assert receipt.status
        expected_fee = 21_000 * gwei(50)
        assert receipt.miner_fee == expected_fee
        assert receipt.burned_fee == 0
        assert state.eth_balance(MINER) == expected_fee

    def test_post_london_base_fee_burned(self, state):
        tx = Transaction(sender=A, nonce=0, to=B, value=0,
                         tx_type=EIP1559, max_fee_per_gas=gwei(100),
                         max_priority_fee_per_gas=gwei(2))
        bld = builder(state, base_fee=gwei(40), burn=True)
        receipt = bld.apply_transaction(tx)
        assert receipt.effective_gas_price == gwei(42)
        assert receipt.miner_fee == 21_000 * gwei(2)
        assert receipt.burned_fee == 21_000 * gwei(40)
        # burned wei vanished from total supply
        total = sum(state.eth_balance(x) for x in (A, B, MINER))
        assert total == ether(200) - receipt.burned_fee

    def test_sender_pays_value_plus_fee(self, state):
        bld = builder(state)
        receipt = bld.apply_transaction(payment(value=ether(1)))
        assert state.eth_balance(A) == ether(99) - receipt.total_fee

    def test_unused_gas_refunded(self, state):
        tx = payment(gas_limit=1_000_000)
        bld = builder(state)
        receipt = bld.apply_transaction(tx)
        assert receipt.gas_used == 21_000
        assert state.eth_balance(A) == ether(99) - 21_000 * gwei(50)

    def test_failed_tx_burns_gas_limit_but_reverts_effects(self, state):
        tx = Transaction(sender=A, nonce=0, to=B, gas_limit=100_000,
                         gas_price=gwei(50), intent=FailingIntent())
        bld = builder(state)
        receipt = bld.apply_transaction(tx)
        assert not receipt.status
        assert receipt.gas_used == 100_000
        assert receipt.error == "faulty contract"
        assert state.eth_balance(A) == ether(100) - 100_000 * gwei(50)

    def test_coinbase_transfer_recorded(self, state):
        tx = Transaction(sender=A, nonce=0, to=MINER, gas_price=gwei(1),
                         gas_limit=30_000,
                         intent=CoinbaseTipIntent(tip=ether(2)))
        bld = builder(state)
        receipt = bld.apply_transaction(tx)
        assert receipt.coinbase_transfer == ether(2)
        assert receipt.total_miner_payment == ether(2) + receipt.miner_fee


class TestValidity:
    def test_wrong_nonce_skipped(self, state):
        bld = builder(state)
        assert bld.apply_transaction(payment(nonce=3)) is None
        assert state.eth_balance(A) == ether(100)

    def test_underfunded_skipped(self, state):
        poor = address_from_label("poor")
        tx = Transaction(sender=poor, nonce=0, to=B, value=ether(1),
                         gas_price=gwei(1))
        assert builder(state).apply_transaction(tx) is None

    def test_below_base_fee_skipped(self, state):
        bld = builder(state, base_fee=gwei(100), burn=True)
        assert bld.apply_transaction(payment(price=gwei(50))) is None

    def test_over_block_gas_limit_skipped(self, state):
        bld = builder(state)
        bld.gas_used = bld.gas_limit - 1_000
        assert bld.apply_transaction(payment()) is None

    def test_nonce_advances_within_block(self, state):
        bld = builder(state)
        assert bld.apply_transaction(payment(nonce=0)) is not None
        assert bld.apply_transaction(payment(nonce=1)) is not None
        assert bld.apply_transaction(payment(nonce=1)) is None


class TestAtomicSequences:
    def test_all_applied_on_success(self, state):
        bld = builder(state)
        receipts = bld.apply_atomic_sequence(
            [payment(nonce=0), payment(nonce=1)])
        assert receipts is not None and len(receipts) == 2
        assert len(bld.transactions) == 2

    def test_failure_rolls_back_everything(self, state):
        state.mint_token("DAI", A, 100)
        good = Transaction(sender=A, nonce=0, to=B, gas_price=gwei(5),
                           gas_limit=60_000,
                           intent=TokenTransferIntent("DAI", B, 100))
        bad = Transaction(sender=A, nonce=1, to=B, gas_price=gwei(5),
                          gas_limit=60_000, intent=FailingIntent())
        bld = builder(state)
        assert bld.apply_atomic_sequence([good, bad]) is None
        assert state.token_balance("DAI", A) == 100
        assert state.eth_balance(A) == ether(100)
        assert state.eth_balance(MINER) == 0
        assert state.nonce(A) == 0
        assert bld.transactions == []
        assert bld.gas_used == 0

    def test_invalid_member_rolls_back(self, state):
        bld = builder(state)
        assert bld.apply_atomic_sequence(
            [payment(nonce=0), payment(nonce=5)]) is None
        assert bld.transactions == []

    def test_allows_revert_when_not_required(self, state):
        bad = Transaction(sender=A, nonce=0, to=B, gas_price=gwei(5),
                          gas_limit=60_000, intent=FailingIntent())
        bld = builder(state)
        receipts = bld.apply_atomic_sequence([bad], require_success=False)
        assert receipts is not None
        assert not receipts[0].status

    def test_block_usable_after_rollback(self, state):
        bld = builder(state)
        assert bld.apply_atomic_sequence([payment(nonce=9)]) is None
        assert bld.apply_transaction(payment(nonce=0)) is not None


class TestFinalize:
    def test_block_reward_paid(self, state):
        bld = builder(state)
        bld.apply_transaction(payment())
        block = bld.finalize()
        assert state.eth_balance(MINER) == BLOCK_REWARD + block.receipts[0].miner_fee

    def test_double_finalize_rejected(self, state):
        bld = builder(state)
        bld.finalize()
        with pytest.raises(RuntimeError):
            bld.finalize()

    def test_logs_stamped_with_coordinates(self, state):
        state.mint_token("DAI", A, 10)
        tx = Transaction(sender=A, nonce=0, to=B, gas_price=gwei(5),
                         gas_limit=60_000,
                         intent=TokenTransferIntent("DAI", B, 10))
        bld = builder(state, number=42)
        bld.apply_transaction(payment(sender=B, nonce=0))
        bld.apply_transaction(tx)
        block = bld.finalize()
        log = block.receipts[1].logs[0]
        assert log.block_number == 42
        assert log.tx_index == 1
        assert log.log_index == 0
        assert log.tx_hash == tx.hash

    def test_miner_revenue_sums_components(self, state):
        bld = builder(state)
        bld.apply_transaction(payment())
        block = bld.finalize()
        assert block.miner_revenue() == BLOCK_REWARD + block.receipts[0].miner_fee
