"""Shared world + batch baseline for the streaming suite.

The simulated study window is built once per session; stream tests
replay it through (possibly faulted) block feeds and compare against
``batch_baseline`` — the batch pipeline at ``chunk_size=1``, which is
the exact shape :class:`repro.stream.StreamEngine` must converge on.
``REPRO_CHAOS_SEED`` (CI runs the suite across several values) seeds
the fault plans only; the world itself stays fixed.
"""

import json
import os

import pytest

from repro.chain.node import ArchiveNode
from repro.core import MevInspector, PriceService
from repro.engine import RunConfig
from repro.sim import ScenarioConfig, build_paper_scenario

#: seed for every fault plan in the suite (CI matrix: 1, 2, 3)
CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "1"))


def fingerprint(dataset):
    """A dataset's identity: its rows and its quality ledger."""
    return (json.dumps(dataset.to_rows(), sort_keys=True),
            json.dumps(dataset.quality.to_dict(), sort_keys=True))


@pytest.fixture(scope="session")
def sim_result():
    from repro.chain.transaction import reset_tx_counter
    reset_tx_counter()  # identical world regardless of test order
    config = ScenarioConfig(blocks_per_month=20, seed=7)
    world = build_paper_scenario(config)
    return world.run()


@pytest.fixture(scope="session")
def prices(sim_result):
    return PriceService(sim_result.oracle)


@pytest.fixture(scope="session")
def span(sim_result):
    """The study window's inclusive block range."""
    return (sim_result.node.earliest_block_number(),
            sim_result.node.latest_block_number())


@pytest.fixture(scope="session")
def batch_baseline(sim_result, prices):
    """Batch pipeline at chunk_size=1: the stream convergence target."""
    inspector = MevInspector(ArchiveNode(sim_result.blockchain), prices,
                             sim_result.flashbots_api,
                             sim_result.observer)
    return inspector.run(config=RunConfig(chunk_size=1))
