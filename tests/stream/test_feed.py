"""Feed-fault determinism and the feed's convergence guarantees.

The whole fault schedule must be a pure function of ``(seed, heights)``
— same plan, same event sequence, in any process and call order — and
every distortion must be *survivable*: the last announcement the feed
makes for any height is always the canonical block.
"""

from repro.faults import FaultPlan
from repro.faults.feed import (
    NOTE_ANNOUNCE,
    NOTE_DUPLICATE,
    NOTE_FORK,
    NOTE_REDELIVER,
    ChainFeed,
    FaultyFeed,
    fork_block,
)

from tests.stream.conftest import CHAOS_SEED


def reorg_plan(span, seed=CHAOS_SEED):
    return FaultPlan.from_profile("reorg", seed, span[0], span[1])


class TestDeterminism:
    def test_same_plan_same_event_sequence(self, sim_result, span):
        """Two independent feeds over the same plan replay identically."""
        trace = [
            [(e.note, e.number, e.hash) for e in
             FaultyFeed(sim_result.blockchain, reorg_plan(span))]
            for _ in range(2)]
        assert trace[0] == trace[1]
        assert len(trace[0]) > 0

    def test_feed_decision_pure_in_seed_and_height(self, span):
        """The verdict never depends on query order or plan instance."""
        first, last = span
        forward = reorg_plan(span)
        backward = reorg_plan(span)
        asked_forward = {h: forward.feed_decision(h)
                         for h in range(first, last + 1)}
        asked_backward = {h: backward.feed_decision(h)
                          for h in reversed(range(first, last + 1))}
        assert asked_forward == asked_backward
        assert any(d.faulty for d in asked_forward.values())

    def test_different_seeds_differ(self, sim_result, span):
        one = FaultyFeed(sim_result.blockchain, reorg_plan(span, 1))
        two = FaultyFeed(sim_result.blockchain, reorg_plan(span, 2))
        assert ([(e.note, e.number) for e in one]
                != [(e.note, e.number) for e in two])


class TestConvergenceGuarantees:
    def test_last_announcement_per_height_is_canonical(self, sim_result,
                                                       span):
        """The invariant every follower's correctness rests on."""
        chain = sim_result.blockchain
        final = {}
        for event in FaultyFeed(chain, reorg_plan(span)):
            final[event.number] = event.hash
        first, last = span
        assert sorted(final) == list(range(first, last + 1))
        for height, digest in final.items():
            assert digest == chain.block_by_number(height).hash

    def test_profile_exercises_every_fault_kind(self, sim_result, span):
        """The ``reorg`` profile must cover the whole acceptance grid:
        reorgs of full depth, duplicates, and delayed delivery."""
        plan = reorg_plan(span)
        decisions = [plan.feed_decision(h)
                     for h in range(span[0], span[1] + 1)]
        assert max(d.reorg_depth for d in decisions) == 3
        assert any(d.duplicate for d in decisions)
        assert any(d.delay for d in decisions)
        assert plan.feed_outages  # one silenced window
        notes = {e.note for e in FaultyFeed(sim_result.blockchain, plan)}
        assert notes == {NOTE_ANNOUNCE, NOTE_DUPLICATE, NOTE_FORK,
                         NOTE_REDELIVER}

    def test_fork_blocks_differ_from_canonical(self, sim_result, span):
        """Forks must be *detectable* reorgs: same height, new hash,
        parent-linked to the canonical chain at the fork point."""
        chain = sim_result.blockchain
        for event in FaultyFeed(chain, reorg_plan(span)):
            canonical = chain.block_by_number(event.number)
            if event.note == NOTE_FORK:
                assert event.hash != canonical.hash
                assert len(event.block.transactions) == max(
                    0, len(canonical.transactions) - 1)
            else:
                assert event.hash == canonical.hash

    def test_every_fork_is_rejoined_in_place(self, sim_result, span):
        """A fork sequence is immediately followed by the canonical
        re-deliveries for the same heights, in the same order."""
        events = FaultyFeed(sim_result.blockchain,
                            reorg_plan(span)).events()
        fork_runs = 0
        position = 0
        while position < len(events):
            if events[position].note != NOTE_FORK:
                position += 1
                continue
            fork_runs += 1
            heights = []
            while events[position].note == NOTE_FORK:
                heights.append(events[position].number)
                position += 1
            redelivered = events[position:position + len(heights)]
            assert [e.note for e in redelivered] \
                == [NOTE_REDELIVER] * len(heights)
            assert [e.number for e in redelivered] == heights
            position += len(heights)
        assert fork_runs > 0


class TestOutages:
    def test_outage_pushes_slots_past_the_window(self, sim_result, span):
        plan = reorg_plan(span)
        feed = FaultyFeed(sim_result.blockchain, plan)
        (lo, hi), = plan.feed_outages
        assert feed._slot_for(lo) == hi + 1
        assert feed._slot_for(hi) == hi + 1
        assert feed._slot_for(lo - 1) == lo - 1
        assert feed._slot_for(hi + 1) == hi + 1

    def test_back_to_back_outages_cascade(self, sim_result):
        plan = FaultPlan(seed=1, feed_outages=((5, 7), (8, 10)))
        feed = FaultyFeed(sim_result.blockchain, plan)
        assert feed._slot_for(6) == 11


class TestChainFeed:
    def test_clean_feed_is_canonical_in_order_once(self, sim_result,
                                                   span):
        chain = sim_result.blockchain
        events = ChainFeed(chain).events()
        assert [e.number for e in events] \
            == [b.number for b in chain.blocks]
        assert all(e.note == NOTE_ANNOUNCE for e in events)
        assert [e.index for e in events] == list(range(len(events)))

    def test_window_bounds(self, sim_result, span):
        first, _ = span
        events = ChainFeed(sim_result.blockchain, from_block=first + 2,
                           to_block=first + 5).events()
        assert [e.number for e in events] \
            == list(range(first + 2, first + 6))


class TestForkBlock:
    def test_fork_recomputes_gas_and_keeps_receipts(self, sim_result):
        canonical = next(b for b in sim_result.blockchain.blocks
                         if len(b.transactions) >= 2)
        fork = fork_block(canonical, parent_hash="0xparent",
                          miner="0xother")
        assert fork.number == canonical.number
        assert fork.hash != canonical.hash
        assert fork.receipts == canonical.receipts[:-1]
        assert fork.gas_used == sum(r.gas_used for r in fork.receipts)
        assert fork.parent_hash == "0xparent"
