"""StreamEngine: convergence on the batch pipeline, under any feed.

The engine's standing contract (ISSUE acceptance): streaming over a
faulted feed — reorgs up to depth 3, duplicates, out-of-order delivery,
an outage window — produces rows and a quality ledger *bit-identical*
to ``MevInspector.run(chunk_size=1)`` over the final canonical chain.
"""

import pytest

from repro.faults import FaultPlan
from repro.faults.feed import ChainFeed, FaultyFeed
from repro.stream import StreamDivergenceError, StreamEngine

from tests.stream.conftest import CHAOS_SEED, fingerprint


def make_engine(sim_result, prices, span, confirm_depth=3, **kwargs):
    return StreamEngine(prices, first_block=span[0],
                        confirm_depth=confirm_depth,
                        flashbots_api=sim_result.flashbots_api,
                        observer=sim_result.observer, **kwargs)


class TestConvergence:
    @pytest.mark.parametrize("fault_seed",
                             [CHAOS_SEED, CHAOS_SEED + 10,
                              CHAOS_SEED + 20])
    def test_faulted_stream_matches_batch(self, sim_result, prices,
                                          span, batch_baseline,
                                          fault_seed):
        plan = FaultPlan.from_profile("reorg", fault_seed, *span)
        engine = make_engine(sim_result, prices, span)
        dataset = engine.run(FaultyFeed(sim_result.blockchain, plan))
        assert fingerprint(dataset) == fingerprint(batch_baseline)
        # The convergence was earned, not vacuous: the feed actually
        # reorged, duplicated, and delivered out of order.
        report = engine.report
        assert report.reorgs > 0
        assert report.max_reorg_depth == 3
        assert report.duplicates > 0
        assert report.out_of_order > 0
        assert report.retracted_blocks > 0
        assert len(report.ledger) == report.retracted_blocks

    def test_clean_feed_matches_batch(self, sim_result, prices, span,
                                      batch_baseline):
        engine = make_engine(sim_result, prices, span)
        dataset = engine.run(ChainFeed(sim_result.blockchain))
        assert fingerprint(dataset) == fingerprint(batch_baseline)
        report = engine.report
        assert report.reorgs == 0
        assert report.duplicates == 0
        assert report.out_of_order == 0
        assert report.appended == len(sim_result.blockchain.blocks)

    def test_confirmation_lag_floor_is_confirm_depth(self, sim_result,
                                                     prices, span):
        """Every height confirmed *during* the stream lags the head by
        at least ``confirm_depth``; only the finalize flush goes
        shallower."""
        engine = make_engine(sim_result, prices, span, confirm_depth=5)
        engine.run(ChainFeed(sim_result.blockchain))
        lags = engine.report.confirmation_lags
        assert len(lags) == len(sim_result.blockchain.blocks)
        assert min(lags) == 0  # the finalize flush reaches the head
        streamed = lags[:-5]
        assert streamed and min(streamed) >= 5


class TestWindowAndWatermark:
    def test_blocks_below_first_block_are_ignored(self, sim_result,
                                                  prices, span,
                                                  batch_baseline):
        first, last = span
        window_start = first + 3
        engine = StreamEngine(prices, first_block=window_start,
                              confirm_depth=3,
                              flashbots_api=sim_result.flashbots_api,
                              observer=sim_result.observer)
        dataset = engine.run(ChainFeed(sim_result.blockchain))
        assert engine.report.ignored == 3
        assert dataset.quality.from_block == window_start
        assert dataset.quality.to_block == last

    def test_reorg_below_watermark_diverges_loudly(self, sim_result,
                                                   prices, span):
        """``confirm_depth=0`` confirms the head itself, so the first
        reorg the feed emits must be fatal, not silently absorbed."""
        plan = FaultPlan.from_profile("reorg", CHAOS_SEED, *span)
        engine = make_engine(sim_result, prices, span, confirm_depth=0)
        with pytest.raises(StreamDivergenceError) as excinfo:
            engine.run(FaultyFeed(sim_result.blockchain, plan))
        assert "watermark" in str(excinfo.value)

    def test_confirm_depth_at_reorg_depth_suffices(self, sim_result,
                                                   prices, span,
                                                   batch_baseline):
        """The documented sizing rule: ``confirm_depth >=
        max_reorg_depth`` never diverges."""
        plan = FaultPlan.from_profile("reorg", CHAOS_SEED, *span)
        engine = make_engine(sim_result, prices, span,
                             confirm_depth=plan.feed.max_reorg_depth)
        dataset = engine.run(FaultyFeed(sim_result.blockchain, plan))
        assert fingerprint(dataset) == fingerprint(batch_baseline)

    def test_negative_confirm_depth_rejected(self, prices):
        with pytest.raises(ValueError):
            StreamEngine(prices, first_block=1, confirm_depth=-1)


class TestRetractionLedger:
    def test_ledger_accounts_for_every_retraction(self, sim_result,
                                                  prices, span):
        plan = FaultPlan.from_profile("reorg", CHAOS_SEED, *span)
        engine = make_engine(sim_result, prices, span)
        engine.run(FaultyFeed(sim_result.blockchain, plan))
        report = engine.report
        assert sum(e.rows_retracted for e in report.ledger) \
            == report.retracted_rows
        canonical = sim_result.blockchain
        for entry in report.ledger:
            # Ledger heights are real streamed heights; the retracted
            # hash never survives as the canonical block there.
            block = canonical.block_by_number(entry.height)
            assert block is not None

    def test_empty_stream_finalizes_empty(self, prices):
        engine = StreamEngine(prices, first_block=1)
        dataset = engine.finalize()
        assert dataset.to_rows() == []
        assert dataset.quality.chunks_total == 0
