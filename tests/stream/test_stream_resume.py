"""Crash-kill a mid-stream follower, resume, and land bit-identically.

The checkpoint carries the watermark plus every pending ``(height,
hash, payload)``; a resumed engine replays the feed and reuses each
payload whose identity still matches — so the resumed run's dataset is
indistinguishable from the uninterrupted run's, modulo the honest
``resumed`` markers in the quality report.
"""

import json

import pytest

from repro.faults import FaultPlan
from repro.faults.feed import ChainFeed, FaultyFeed
from repro.reliability import CheckpointError, CheckpointStore
from repro.stream import StreamEngine

from tests.stream.conftest import CHAOS_SEED, fingerprint


def modulo_resume(dataset):
    """The dataset's identity with the resume markers normalized."""
    rows, quality = fingerprint(dataset)
    document = dataset.quality.to_dict()
    document["resumed"] = False
    document["chunks_resumed"] = 0
    return rows, json.dumps(document, sort_keys=True)


@pytest.fixture
def store(tmp_path):
    return CheckpointStore(tmp_path / "stream.ckpt.json")


def make_engine(sim_result, prices, span, **kwargs):
    return StreamEngine(prices, first_block=span[0], confirm_depth=3,
                        flashbots_api=sim_result.flashbots_api,
                        observer=sim_result.observer, **kwargs)


class TestCrashResume:
    @pytest.mark.parametrize("feed_kind", ["clean", "faulted"])
    def test_killed_follower_resumes_bit_identical(
            self, sim_result, prices, span, store, feed_kind):
        if feed_kind == "clean":
            def feed():
                return ChainFeed(sim_result.blockchain)
        else:
            plan = FaultPlan.from_profile("reorg", CHAOS_SEED, *span)

            def feed():
                return FaultyFeed(sim_result.blockchain, plan)

        uninterrupted = make_engine(sim_result, prices, span).run(feed())

        # Crash: ingest half the announcements, then vanish without
        # finalizing — the per-ingest checkpoint is all that survives.
        events = list(feed())
        crashed = make_engine(sim_result, prices, span, checkpoint=store)
        for event in events[:len(events) // 2]:
            crashed.ingest(event)
        assert store.exists()

        resumed_engine = make_engine(sim_result, prices, span,
                                     checkpoint=store, resume=True)
        resumed = resumed_engine.run(feed())
        assert resumed_engine.report.payloads_reused > 0
        assert resumed.quality.resumed is True
        assert resumed.quality.chunks_resumed \
            == resumed_engine.report.payloads_reused
        assert modulo_resume(resumed) == modulo_resume(uninterrupted)

    def test_resume_without_checkpoint_starts_fresh(self, sim_result,
                                                    prices, span, store):
        engine = make_engine(sim_result, prices, span, checkpoint=store,
                             resume=True)
        dataset = engine.run(ChainFeed(sim_result.blockchain))
        assert engine.report.payloads_reused == 0
        assert dataset.quality.resumed is False

    def test_stale_payloads_recomputed_not_reused(self, sim_result,
                                                  prices, span, store):
        """A checkpointed fork payload whose hash no longer matches the
        delivered block must be recomputed, never trusted."""
        plan = FaultPlan.from_profile("reorg", CHAOS_SEED, *span)
        crashed = make_engine(sim_result, prices, span, checkpoint=store)
        for event in list(FaultyFeed(sim_result.blockchain, plan))[:40]:
            crashed.ingest(event)
        saved = store.load()["blocks"]
        # Resume over the *clean* feed: any saved fork-block payload is
        # stale; canonical heights still reuse.
        resumed_engine = make_engine(sim_result, prices, span,
                                     checkpoint=store, resume=True)
        resumed = resumed_engine.run(ChainFeed(sim_result.blockchain))
        canonical_saved = sum(
            1 for height, entry in saved.items()
            if sim_result.blockchain.block_by_number(
                int(height)).hash == entry["hash"])
        assert resumed_engine.report.payloads_reused == canonical_saved
        baseline = make_engine(sim_result, prices, span).run(
            ChainFeed(sim_result.blockchain))
        assert modulo_resume(resumed) == modulo_resume(baseline)


class TestCheckpointIdentity:
    def test_mismatched_stream_parameters_rejected(self, sim_result,
                                                   prices, span, store):
        engine = make_engine(sim_result, prices, span, checkpoint=store)
        engine.ingest(sim_result.blockchain.blocks[0])
        with pytest.raises(CheckpointError):
            StreamEngine(prices, first_block=span[0] + 1,
                         confirm_depth=3, checkpoint=store, resume=True)
        with pytest.raises(CheckpointError):
            StreamEngine(prices, first_block=span[0], confirm_depth=7,
                         checkpoint=store, resume=True)

    def test_batch_checkpoint_rejected(self, sim_result, prices, span,
                                       store):
        store.save({"from_block": span[0], "chunks": {}})
        with pytest.raises(CheckpointError):
            make_engine(sim_result, prices, span, checkpoint=store,
                        resume=True)
