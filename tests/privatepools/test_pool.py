"""Tests for non-Flashbots private pools."""

import pytest

from repro.chain.transaction import Transaction
from repro.chain.types import address_from_label, gwei
from repro.privatepools.pool import PrivatePool, PrivatePoolDirectory

MINER_1 = address_from_label("pp-miner-1")
MINER_2 = address_from_label("pp-miner-2")
USER = address_from_label("pp-user")


def tx(nonce=0):
    return Transaction(sender=USER, nonce=nonce,
                       to=address_from_label("pool"), gas_price=gwei(5))


class TestPrivatePool:
    def test_needs_a_miner(self):
        with pytest.raises(ValueError):
            PrivatePool("empty", [])

    def test_single_miner_flag(self):
        solo = PrivatePool("solo", [MINER_1])
        duo = PrivatePool("duo", [MINER_1, MINER_2])
        assert solo.is_single_miner
        assert not duo.is_single_miner

    def test_submit_and_retrieve(self):
        pool = PrivatePool("eden", [MINER_1])
        t = tx()
        assert pool.submit(t, current_block=5)
        assert pool.pending_for(MINER_1, 6) == [(t,)]

    def test_non_member_sees_nothing(self):
        pool = PrivatePool("eden", [MINER_1])
        pool.submit(tx(), 5)
        assert pool.pending_for(MINER_2, 6) == []

    def test_shutdown_blocks_submissions(self):
        taichi = PrivatePool("taichi", [MINER_1], shutdown_block=100)
        assert taichi.submit(tx(0), 99)
        assert not taichi.submit(tx(1), 100)
        assert taichi.pending_for(MINER_1, 101) == []

    def test_mark_included(self):
        pool = PrivatePool("eden", [MINER_1])
        t = tx()
        pool.submit(t, 5)
        pool.mark_included({t.hash})
        assert pool.pending_count() == 0


class TestSequences:
    def test_submit_sequence_preserves_order(self):
        pool = PrivatePool("solo", [MINER_1])
        front, back = tx(0), tx(1)
        assert pool.submit_sequence([front, back], 5)
        assert pool.pending_for(MINER_1, 6) == [(front, back)]

    def test_empty_sequence_rejected(self):
        pool = PrivatePool("solo", [MINER_1])
        assert not pool.submit_sequence([], 5)

    def test_mark_included_drops_whole_sequence(self):
        pool = PrivatePool("solo", [MINER_1])
        front, back = tx(0), tx(1)
        pool.submit_sequence([front, back], 5)
        pool.mark_included({front.hash})
        assert pool.pending_count() == 0


class TestDirectory:
    def test_add_and_get(self):
        directory = PrivatePoolDirectory()
        pool = directory.add(PrivatePool("eden", [MINER_1]))
        assert directory.get("eden") is pool
        assert directory.pools == [pool]

    def test_duplicate_name_rejected(self):
        directory = PrivatePoolDirectory()
        directory.add(PrivatePool("eden", [MINER_1]))
        with pytest.raises(ValueError):
            directory.add(PrivatePool("eden", [MINER_2]))

    def test_pools_for_miner(self):
        directory = PrivatePoolDirectory()
        directory.add(PrivatePool("eden", [MINER_1, MINER_2]))
        directory.add(PrivatePool("solo", [MINER_1]))
        assert len(directory.pools_for_miner(MINER_1, 5)) == 2
        assert len(directory.pools_for_miner(MINER_2, 5)) == 1

    def test_pending_deduplicated_across_pools(self):
        directory = PrivatePoolDirectory()
        a = directory.add(PrivatePool("a", [MINER_1]))
        b = directory.add(PrivatePool("b", [MINER_1]))
        t = tx()
        a.submit(t, 5)
        b.submit(t, 5)
        assert directory.pending_for_miner(MINER_1, 6) == [(t,)]

    def test_mark_included_propagates(self):
        directory = PrivatePoolDirectory()
        a = directory.add(PrivatePool("a", [MINER_1]))
        t = tx()
        a.submit(t, 5)
        directory.mark_included({t.hash})
        assert directory.pending_for_miner(MINER_1, 6) == []

    def test_shutdown_pool_excluded(self):
        directory = PrivatePoolDirectory()
        directory.add(PrivatePool("taichi", [MINER_1],
                                  shutdown_block=100))
        assert directory.pools_for_miner(MINER_1, 99)
        assert not directory.pools_for_miner(MINER_1, 100)
