"""Tests for non-Flashbots private pools."""

import pytest

from repro.chain.transaction import Transaction
from repro.chain.types import address_from_label, gwei
from repro.privatepools.pool import PrivatePool, PrivatePoolDirectory

MINER_1 = address_from_label("pp-miner-1")
MINER_2 = address_from_label("pp-miner-2")
USER = address_from_label("pp-user")


def tx(nonce=0):
    return Transaction(sender=USER, nonce=nonce,
                       to=address_from_label("pool"), gas_price=gwei(5))


class TestPrivatePool:
    def test_needs_a_miner(self):
        with pytest.raises(ValueError):
            PrivatePool("empty", [])

    def test_single_miner_flag(self):
        solo = PrivatePool("solo", [MINER_1])
        duo = PrivatePool("duo", [MINER_1, MINER_2])
        assert solo.is_single_miner
        assert not duo.is_single_miner

    def test_submit_and_retrieve(self):
        pool = PrivatePool("eden", [MINER_1])
        t = tx()
        assert pool.submit(t, current_block=5)
        assert pool.pending_for(MINER_1, 6) == [(t,)]

    def test_non_member_sees_nothing(self):
        pool = PrivatePool("eden", [MINER_1])
        pool.submit(tx(), 5)
        assert pool.pending_for(MINER_2, 6) == []

    def test_shutdown_blocks_submissions(self):
        taichi = PrivatePool("taichi", [MINER_1], shutdown_block=100)
        assert taichi.submit(tx(0), 99)
        assert not taichi.submit(tx(1), 100)
        assert taichi.pending_for(MINER_1, 101) == []

    def test_mark_included(self):
        pool = PrivatePool("eden", [MINER_1])
        t = tx()
        pool.submit(t, 5)
        pool.mark_included({t.hash})
        assert pool.pending_count() == 0


class TestSequences:
    def test_submit_sequence_preserves_order(self):
        pool = PrivatePool("solo", [MINER_1])
        front, back = tx(0), tx(1)
        assert pool.submit_sequence([front, back], 5)
        assert pool.pending_for(MINER_1, 6) == [(front, back)]

    def test_empty_sequence_rejected(self):
        pool = PrivatePool("solo", [MINER_1])
        assert not pool.submit_sequence([], 5)

    def test_mark_included_drops_whole_sequence(self):
        pool = PrivatePool("solo", [MINER_1])
        front, back = tx(0), tx(1)
        pool.submit_sequence([front, back], 5)
        pool.mark_included({front.hash})
        assert pool.pending_count() == 0


class TestDirectory:
    def test_add_and_get(self):
        directory = PrivatePoolDirectory()
        pool = directory.add(PrivatePool("eden", [MINER_1]))
        assert directory.get("eden") is pool
        assert directory.pools == [pool]

    def test_duplicate_name_rejected(self):
        directory = PrivatePoolDirectory()
        directory.add(PrivatePool("eden", [MINER_1]))
        with pytest.raises(ValueError):
            directory.add(PrivatePool("eden", [MINER_2]))

    def test_pools_for_miner(self):
        directory = PrivatePoolDirectory()
        directory.add(PrivatePool("eden", [MINER_1, MINER_2]))
        directory.add(PrivatePool("solo", [MINER_1]))
        assert len(directory.pools_for_miner(MINER_1, 5)) == 2
        assert len(directory.pools_for_miner(MINER_2, 5)) == 1

    def test_pending_deduplicated_across_pools(self):
        directory = PrivatePoolDirectory()
        a = directory.add(PrivatePool("a", [MINER_1]))
        b = directory.add(PrivatePool("b", [MINER_1]))
        t = tx()
        a.submit(t, 5)
        b.submit(t, 5)
        assert directory.pending_for_miner(MINER_1, 6) == [(t,)]

    def test_mark_included_propagates(self):
        directory = PrivatePoolDirectory()
        a = directory.add(PrivatePool("a", [MINER_1]))
        t = tx()
        a.submit(t, 5)
        directory.mark_included({t.hash})
        assert directory.pending_for_miner(MINER_1, 6) == []

    def test_shutdown_pool_excluded(self):
        directory = PrivatePoolDirectory()
        directory.add(PrivatePool("taichi", [MINER_1],
                                  shutdown_block=100))
        assert directory.pools_for_miner(MINER_1, 99)
        assert not directory.pools_for_miner(MINER_1, 100)


class TestExpiry:
    def test_sequences_expire_after_ttl(self):
        pool = PrivatePool("eden", [MINER_1], ttl_blocks=10)
        pool.submit(tx(0), 5)
        assert pool.expire_stale(14) == 0  # submitted at 5, cutoff 4
        assert pool.expire_stale(15) == 0  # cutoff 5: not yet stale
        assert pool.expire_stale(16) == 1  # cutoff 6: dropped
        assert pool.pending_count() == 0
        assert pool.expired_count == 1

    def test_expiry_trims_only_the_stale_prefix(self):
        pool = PrivatePool("eden", [MINER_1], ttl_blocks=10)
        old, fresh = tx(0), tx(1)
        pool.submit(old, 5)
        pool.submit(fresh, 12)
        assert pool.expire_stale(16) == 1
        assert pool.pending_for(MINER_1, 16) == [(fresh,)]

    def test_ttl_none_never_expires(self):
        pool = PrivatePool("eden", [MINER_1], ttl_blocks=None)
        pool.submit(tx(0), 5)
        assert pool.expire_stale(10_000) == 0
        assert pool.pending_count() == 1

    def test_ttl_must_be_positive(self):
        with pytest.raises(ValueError):
            PrivatePool("eden", [MINER_1], ttl_blocks=0)

    def test_directory_expiry_sums_over_pools(self):
        directory = PrivatePoolDirectory()
        a = directory.add(PrivatePool("a", [MINER_1], ttl_blocks=5))
        b = directory.add(PrivatePool("b", [MINER_1], ttl_blocks=5))
        a.submit(tx(0), 1)
        b.submit(tx(1), 1)
        assert directory.expire_stale(100) == 2


class TestPruneDead:
    def test_stale_nonce_is_dead(self):
        pool = PrivatePool("eden", [MINER_1])
        pool.submit(tx(0), 5)
        # The account has moved past nonce 0: no future block can
        # include this transaction (the builder's check is exact).
        assert pool.prune_dead(lambda sender: 1) == 1
        assert pool.pending_count() == 0

    def test_current_and_future_nonces_survive(self):
        pool = PrivatePool("eden", [MINER_1])
        pool.submit(tx(1), 5)   # exactly next: includable
        pool.submit(tx(2), 5)   # one ahead: may become includable
        assert pool.prune_dead(lambda sender: 1) == 0
        assert pool.pending_count() == 2

    def test_sequence_offsets_count_earlier_same_sender_txs(self):
        # A sandwich carries two same-sender legs with consecutive
        # nonces: the second leg is validated against nonce+1, so the
        # pair (n, n+1) is alive exactly while the account is at n.
        pool = PrivatePool("solo", [MINER_1])
        pool.submit_sequence([tx(3), tx(4)], 5)
        assert pool.prune_dead(lambda sender: 3) == 0
        assert pool.prune_dead(lambda sender: 4) == 1
        assert pool.pending_count() == 0

    def test_directory_prune_sums_over_pools(self):
        directory = PrivatePoolDirectory()
        a = directory.add(PrivatePool("a", [MINER_1]))
        b = directory.add(PrivatePool("b", [MINER_1]))
        a.submit(tx(0), 1)
        b.submit(tx(0), 1)
        assert directory.prune_dead(lambda sender: 2) == 2
