"""Setup shim.

The offline environment ships setuptools without the ``wheel`` package, so
PEP-660 editable installs (which need ``bdist_wheel``) are unavailable.
Keeping a ``setup.py`` and omitting ``[build-system]`` from pyproject.toml
lets ``pip install -e .`` use the legacy ``setup.py develop`` path.
"""

from setuptools import setup

setup()
