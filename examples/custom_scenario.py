#!/usr/bin/env python3
"""Building a custom world from the substrate APIs directly.

The calibrated paper scenario is one configuration of the library, not
the library itself.  This example assembles a *different* world — two
venues, three miners, a single sandwich searcher that joins Flashbots
halfway through — runs it, and measures it with the same pipeline, the
workflow a downstream user would follow to study their own what-if.
"""

import random

from repro.agents.fees import FeeModel  # noqa: F401 (shown for users)
from repro.agents.miner import MinerProfile, MinerSet
from repro.agents.searcher import ChannelPolicy, SandwichSearcher
from repro.agents.trader import BorrowerPopulation, OracleKeeper, \
    TraderPopulation
from repro.chain.fork import ForkSchedule
from repro.chain.state import WorldState
from repro.chain.types import ether
from repro.core import MevInspector, PriceService
from repro.dex.registry import SUSHISWAP, UNISWAP_V2, ExchangeRegistry
from repro.flashbots.relay import Relay
from repro.lending.flashloan import FlashLoanProvider
from repro.lending.oracle import PRICE_SCALE, PriceOracle
from repro.lending.pool import LendingPool
from repro.privatepools.pool import PrivatePoolDirectory
from repro.sim.calendar import StudyCalendar
from repro.sim.config import ScenarioConfig
from repro.sim.prices import PriceUniverse
from repro.sim.world import World


def main() -> None:
    config = ScenarioConfig(blocks_per_month=40, seed=99,
                            swaps_per_block=2.0,
                            transfers_per_block=1.0)
    calendar = StudyCalendar(config.blocks_per_month)
    launch = calendar.first_block_of("2021-02")

    state = WorldState()
    registry = ExchangeRegistry()
    uni = registry.create_pool(UNISWAP_V2, "WETH", "DAI")
    sushi = registry.create_pool(SUSHISWAP, "WETH", "DAI")
    uni.add_liquidity(state, WETH=ether(2_000), DAI=ether(6_000_000))
    sushi.add_liquidity(state, WETH=ether(1_500),
                        DAI=ether(4_530_000))

    oracle = PriceOracle()
    oracle.set_price("DAI", PRICE_SCALE // 3_000)
    universe = PriceUniverse(seed=99)
    universe.add_token("DAI", oracle.price("DAI"), volatility=0.02)

    lending = LendingPool("AaveV2", oracle)
    lending.provision(state, "DAI", ether(5_000_000))
    flash = FlashLoanProvider("Aave")
    flash.provision(state, "WETH", ether(100_000))

    miners = MinerSet([
        MinerProfile("alpha", hashpower=6.0,
                     flashbots_join_block=launch),
        MinerProfile("beta", hashpower=3.0,
                     flashbots_join_block=launch + 80),
        MinerProfile("gamma", hashpower=1.0),  # never joins
    ])

    searcher = SandwichSearcher(
        "lone-wolf",
        ChannelPolicy(flashbots_from=launch + 40),
        min_profit_wei=ether(0.01), visibility=1.0)
    state.credit_eth(searcher.address, ether(2_000))
    state.mint_token("WETH", searcher.address, ether(2_000))
    state.mint_token("DAI", searcher.address, ether(6_000_000))

    relay = Relay()
    relay.register_searcher(searcher.address)
    for miner in miners.miners:
        relay.register_miner(miner.address)

    world = World(
        config=config, calendar=calendar,
        forks=ForkSchedule(
            berlin_block=calendar.first_block_of("2021-04"),
            london_block=calendar.first_block_of("2021-08")),
        state=state, registry=registry, oracle=oracle,
        universe=universe, lending_pools=[lending],
        flash_provider=flash, miners=miners, relay=relay,
        private_pools=PrivatePoolDirectory(),
        traders=TraderPopulation(random.Random(1), accounts=40),
        borrowers=BorrowerPopulation(random.Random(2), accounts=10),
        keeper=OracleKeeper(random.Random(3), oracle, universe),
        searchers=[searcher], flashbots_launch_block=launch)

    result = world.run()
    dataset = MevInspector(result.node, PriceService(oracle),
                           result.flashbots_api,
                           result.observer).run()

    print(f"Custom world: {result.blockchain.height} blocks, "
          f"{result.flashbots_api.block_count()} Flashbots blocks")
    pre = [r for r in dataset.sandwiches if not r.via_flashbots]
    post = [r for r in dataset.sandwiches if r.via_flashbots]
    print(f"Lone searcher's sandwiches: {len(pre)} public (pre/para-"
          f"Flashbots), {len(post)} via Flashbots")
    if pre and post:
        avg = lambda rs: sum(r.profit_wei for r in rs) / len(rs) / 1e18
        print(f"Average profit: {avg(pre):.4f} ETH public vs "
              f"{avg(post):.4f} ETH via Flashbots — the Figure 8b "
              f"effect holds even with zero competition, because the "
              f"sealed-bid tip is paid regardless.")


if __name__ == "__main__":
    main()
