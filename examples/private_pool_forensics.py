#!/usr/bin/env python3
"""Private-pool forensics: reproduce Section 6 end to end.

Simulates the observation window, then plays the measurement node's
role: intersect the pending-transaction trace with the chain to classify
every detected sandwich as Flashbots / other-private / public (Figure 9),
and run the account↔miner attribution that exposed Flexpool- and
F2Pool-style self-extraction (Section 6.3).
"""

from repro import quick_study
from repro.analysis import percent, render_kv
from repro.analysis.figures import fig9_private_distribution
from repro.core.pool_attribution import attribute_private_pools


def main() -> None:
    print("Simulating the study window "
          "(observation: Nov 2021 – Mar 2022) …")
    study = quick_study(blocks_per_month=80)
    result, dataset = study.result, study.dataset

    in_window = [r for r in dataset.sandwiches if r.privacy is not None]
    print(f"\nSandwiches inside the observation window: "
          f"{len(in_window)}")
    print(f"Publicly observed pending transactions: "
          f"{len(result.observer)}")

    dist = fig9_private_distribution(dataset)
    print("\n" + render_kv(
        "Figure 9 — who carried the sandwiches (paper: 81% / 13% / 6%)",
        [("via Flashbots", f"{dist.flashbots} "
                           f"({percent(dist.share('flashbots'))})"),
         ("other private pools", f"{dist.private} "
                                 f"({percent(dist.share('private'))})"),
         ("public mempool", f"{dist.public} "
                            f"({percent(dist.share('public'))})")]))

    report = attribute_private_pools(dataset)
    print("\n" + render_kv(
        "Section 6.3 — attribution of private non-Flashbots sandwiches",
        [("miner addresses involved", report.n_miners),
         ("extractor accounts", report.n_accounts)]))

    print("\nAccounts served by exactly ONE miner "
          "(self-extraction signal):")
    for account, miner, count in report.single_miner_extractors:
        profile = result.miners.by_address(miner)
        name = profile.name if profile else "unknown"
        print(f"  {account[:14]}… → miner {name!r}: "
              f"{count} private sandwiches")
        truth_pool = {t.private_pool for t in result.ground_truths
                      if t.searcher == account and t.private_pool}
        print(f"     ground truth: submitted via {sorted(truth_pool)}")

    if report.multi_pool_miners:
        names = sorted(
            (result.miners.by_address(m).name
             if result.miners.by_address(m) else m[:12])
            for m in report.multi_pool_miners)
        print(f"\nMiners ALSO mining other accounts' private "
              f"sandwiches (broader-pool membership): {names}")
    print("\n(The paper found the same pattern for Flexpool and "
          "F2Pool on mainnet.)")


if __name__ == "__main__":
    main()
