#!/usr/bin/env python3
"""Two liquidation mechanisms, two auction designs.

Part 1 (paper §2.2.2): the same unhealthy loan liquidated both ways —
a fixed-spread liquidation (one atomic transaction, first-come-first-
served, the MEV race) versus an auction-based liquidation (multi-block,
bid escalation, no single transaction to frontrun).

Part 2 (paper §8.2): the same MEV opportunities auctioned both ways —
an open priority-gas-auction (pre-Flashbots) versus a sealed-bid
Flashbots auction — showing where the surplus goes under each design.
"""

import random

from repro.agents.pga import PgaBidder, compare_mechanisms, \
    run_open_pga, run_sealed_bid
from repro.chain.block import BlockBuilder
from repro.chain.execution import ExecutionContext
from repro.chain.state import WorldState
from repro.chain.transaction import Transaction
from repro.chain.types import address_from_label, ether, gwei, to_eth
from repro.lending.auction import AuctionHouse, BidIntent, \
    SettleAuctionIntent, StartAuctionIntent
from repro.lending.oracle import PRICE_SCALE, PriceOracle
from repro.lending.pool import LendingPool, LiquidationIntent

MINER = address_from_label("mech-miner")
BORROWER = address_from_label("mech-borrower")
RACER = address_from_label("mech-racer")
BIDDER_A = address_from_label("mech-bidder-a")
BIDDER_B = address_from_label("mech-bidder-b")


def build_lending_world():
    state = WorldState()
    oracle = PriceOracle()
    oracle.set_price("DAI", PRICE_SCALE // 3_000)
    pool = LendingPool("AaveV2", oracle)
    pool.provision(state, "DAI", ether(1_000_000))
    state.mint_token("WETH", BORROWER, ether(10))
    for account in (RACER, BIDDER_A, BIDDER_B):
        state.credit_eth(account, ether(50))
        state.mint_token("DAI", account, ether(100_000))
    tx = Transaction(sender=BORROWER, nonce=0, to=pool.address)
    ctx = ExecutionContext(state, tx, block_number=1, coinbase=MINER,
                           contracts={pool.address: pool})
    loan = pool.open_loan(ctx, "WETH", ether(10), "DAI", ether(20_000))
    oracle.set_price("DAI", PRICE_SCALE // 2_000)  # crash
    return state, pool, loan


def mine(state, contracts, sender, intent, number):
    tx = Transaction(sender=sender, nonce=state.nonce(sender),
                     to=list(contracts)[0], gas_price=gwei(30),
                     gas_limit=600_000, intent=intent)
    builder = BlockBuilder(state, number=number, timestamp=13 * number,
                           coinbase=MINER, base_fee=0,
                           contracts=contracts)
    receipt = builder.apply_transaction(tx)
    builder.finalize()
    return receipt


def part1_fixed_spread():
    print("=" * 64)
    print("Part 1a — fixed-spread liquidation (one atomic transaction)")
    print("=" * 64)
    state, pool, loan = build_lending_world()
    contracts = {pool.address: pool}
    weth0 = state.token_balance("WETH", RACER)
    receipt = mine(state, contracts, RACER,
                   LiquidationIntent(pool.address, loan.loan_id,
                                     pool.max_repay(loan)), number=2)
    seized = state.token_balance("WETH", RACER) - weth0
    print(f"One block, one transaction: the first liquidator seizes "
          f"{to_eth(seized):.2f} WETH\n(status={receipt.status}). "
          f"Whoever orders first wins everything → a frontrunning race.")


def part1_auction():
    print("\n" + "=" * 64)
    print("Part 1b — auction-based liquidation (multi-block, no race)")
    print("=" * 64)
    state, pool, loan = build_lending_world()
    house = AuctionHouse(pool, duration_blocks=5)
    contracts = {house.address: house, pool.address: pool}
    mine(state, contracts, BIDDER_A,
         StartAuctionIntent(house.address, loan.loan_id), number=2)
    auction_id = list(house.auctions)[0]
    mine(state, contracts, BIDDER_A,
         BidIntent(house.address, auction_id, ether(20_000)), number=3)
    mine(state, contracts, BIDDER_B,
         BidIntent(house.address, auction_id, ether(21_000)), number=4)
    mine(state, contracts, BIDDER_A,
         BidIntent(house.address, auction_id, ether(21_700)), number=5)
    settle = mine(state, contracts, BIDDER_A,
                  SettleAuctionIntent(house.address, auction_id),
                  number=8)
    print(f"Blocks 2–8: open → three bids → settle "
          f"(status={settle.status}).")
    print(f"Winner paid {21_700:,} DAI for "
          f"{to_eth(state.token_balance('WETH', BIDDER_A)):.1f} WETH. "
          f"Price discovery across blocks leaves no single transaction "
          f"worth frontrunning — which is why the paper's MEV dataset "
          f"contains only fixed-spread liquidations.")


def part2_auction_designs():
    print("\n" + "=" * 64)
    print("Part 2 — who keeps the MEV: open PGA vs sealed bid (§8.2)")
    print("=" * 64)
    rng = random.Random(11)
    bidders = [PgaBidder("fast-bot", ether(1.0)),
               PgaBidder("slow-bot", ether(0.7)),
               PgaBidder("hobbyist", ether(0.3))]
    pga = run_open_pga(bidders)
    sealed = run_sealed_bid(bidders, rng)
    print(f"One 1.0-ETH opportunity, three bidders:")
    print(f"  open PGA   : {pga.winner} wins after {pga.rounds} bids, "
          f"pays {to_eth(pga.fee_paid_wei):.3f} ETH, keeps "
          f"{to_eth(pga.winner_profit_wei):.3f}")
    print(f"  sealed bid : {sealed.winner} wins blind, pays "
          f"{to_eth(sealed.fee_paid_wei):.3f} ETH, keeps "
          f"{to_eth(sealed.winner_profit_wei):.3f}")
    result = compare_mechanisms(random.Random(3), opportunities=300)
    print(f"\nOver 300 sampled opportunities:")
    print(f"  miner's share of MEV — PGA: "
          f"{100 * result.pga_miner_share:.1f}%,  sealed: "
          f"{100 * result.sealed_miner_share:.1f}%")
    print("The sealed-bid design is what hands miners the surplus — "
          "Figure 8's inversion by construction.")


if __name__ == "__main__":
    part1_fixed_spread()
    part1_auction()
    part2_auction_designs()
