#!/usr/bin/env python3
"""A zero-capital liquidation: flash loans as the capital amplifier.

Demonstrates the paper's Section 2.3 mechanics in isolation: a borrower
opens a risky loan, an oracle update makes it unhealthy, and a searcher
who owns almost nothing liquidates it anyway — borrowing the entire
repayment in a flash loan, seizing the discounted collateral, swapping
it back on a DEX, repaying the loan plus the 9 bps fee, and pocketing
the spread.  The transaction either fully succeeds or fully reverts;
under-collateralization is impossible by construction.
"""

from repro.chain.block import BlockBuilder
from repro.chain.execution import ExecutionContext
from repro.chain.intents import SequenceIntent
from repro.chain.state import WorldState
from repro.chain.transaction import Transaction
from repro.chain.types import address_from_label, ether, gwei, to_eth
from repro.dex.registry import UNISWAP_V2, ExchangeRegistry
from repro.dex.router import SwapAllIntent
from repro.lending.flashloan import FlashLoanIntent, FlashLoanProvider
from repro.lending.oracle import PRICE_SCALE, PriceOracle
from repro.lending.pool import LendingPool, LiquidationIntent

BORROWER = address_from_label("whale-borrower")
SEARCHER = address_from_label("penniless-liquidator")
MINER = address_from_label("example-miner")


def main() -> None:
    state = WorldState()
    oracle = PriceOracle()
    oracle.set_price("DAI", PRICE_SCALE // 3_000)

    registry = ExchangeRegistry()
    dex = registry.create_pool(UNISWAP_V2, "WETH", "DAI")
    dex.add_liquidity(state, WETH=ether(5_000), DAI=ether(15_000_000))

    lending = LendingPool("AaveV2", oracle)
    lending.provision(state, "DAI", ether(10_000_000))
    flash = FlashLoanProvider("Aave")
    flash.provision(state, "DAI", ether(10_000_000))
    contracts = {lending.address: lending, flash.address: flash,
                 **registry.contracts}

    # 1. A borrower opens a fragile loan: 100 WETH against 220k DAI.
    state.mint_token("WETH", BORROWER, ether(100))
    ctx = ExecutionContext(
        state, Transaction(sender=BORROWER, nonce=0, to=lending.address),
        block_number=1, coinbase=MINER, contracts=contracts)
    loan = lending.open_loan(ctx, "WETH", ether(100), "DAI",
                             ether(220_000))
    print(f"Loan opened: 100 WETH collateral, 220k DAI debt, "
          f"health={lending.health_factor(loan):.3f}")

    # 2. The market moves: ETH drops from 3000 to 2500 DAI.
    oracle.set_price("DAI", PRICE_SCALE // 2_500, block_number=2)
    print(f"Oracle update: ETH now 2500 DAI → "
          f"health={lending.health_factor(loan):.3f} (liquidatable: "
          f"{lending.is_liquidatable(loan)})")

    # 3. A searcher with 0.2 ETH of gas money liquidates it.
    state.credit_eth(SEARCHER, ether(0.2))
    repay = lending.max_repay(loan)
    print(f"\nSearcher balances before: "
          f"{to_eth(state.eth_balance(SEARCHER)):.3f} ETH, "
          f"{to_eth(state.token_balance('DAI', SEARCHER)):.0f} DAI, "
          f"{to_eth(state.token_balance('WETH', SEARCHER)):.3f} WETH")
    intent = FlashLoanIntent(
        flash.address, "DAI", repay,
        inner=SequenceIntent([
            LiquidationIntent(lending.address, loan.loan_id, repay),
            SwapAllIntent(dex.address, "WETH"),
        ]))
    tx = Transaction(sender=SEARCHER, nonce=0, to=flash.address,
                     gas_limit=1_200_000, gas_price=gwei(40),
                     intent=intent)
    builder = BlockBuilder(state, number=3, timestamp=39,
                           coinbase=MINER, base_fee=0,
                           contracts=contracts)
    receipt = builder.apply_transaction(tx)
    builder.finalize()

    assert receipt.status, receipt.error
    print(f"\nTransaction succeeded; events: "
          f"{[type(l).__name__ for l in receipt.logs]}")
    dai = state.token_balance("DAI", SEARCHER)
    print(f"Searcher keeps {to_eth(dai):,.0f} DAI "
          f"≈ {to_eth(oracle.value_in_eth('DAI', dai)):.3f} ETH — "
          f"earned with no capital beyond gas.")
    print(f"Flash fee paid: {to_eth(flash.fee_for(repay)):,.1f} DAI; "
          f"gas: {to_eth(receipt.total_fee):.4f} ETH")


if __name__ == "__main__":
    main()
