#!/usr/bin/env python3
"""Quickstart: simulate the study window, measure it, print Table 1.

Runs the calibrated 23-month scenario at a small scale (60 blocks per
simulated month), runs the paper's full measurement pipeline over the
resulting archive node / mempool trace / Flashbots API, and prints the
headline artifacts: Table 1, the Figure-3 adoption curve, and the
Figure-8 profit inversion.

Usage::

    python examples/quickstart.py [blocks_per_month]
"""

import sys

from repro import quick_study
from repro.analysis import (
    fig3_flashbots_block_ratio,
    percent,
    profit_distribution,
    render_series,
    render_table,
)


def main() -> None:
    blocks_per_month = int(sys.argv[1]) if len(sys.argv) > 1 else 60
    print(f"Simulating 23 months at {blocks_per_month} blocks/month …")
    study = quick_study(blocks_per_month=blocks_per_month)
    result, dataset = study.result, study.dataset

    print(f"\nChain height: {result.blockchain.height} blocks; "
          f"Flashbots blocks: {result.flashbots_api.block_count()}; "
          f"pending txs observed: {len(result.observer)}\n")

    print("Table 1 — MEV dataset overview")
    print(render_table(
        ["MEV Strategy", "Extractions", "Via Flashbots",
         "Via Flash Loans", "Via Both"],
        [(r.strategy, r.extractions,
          f"{r.via_flashbots} ({percent(r.share_flashbots())})",
          f"{r.via_flash_loans} ({percent(r.share_flash_loans())})",
          f"{r.via_both} ({percent(r.share_both())})")
         for r in study.table1]))

    print()
    print(render_series(
        "Figure 3 — Flashbots block ratio per month",
        fig3_flashbots_block_ratio(result.node, result.flashbots_api,
                                   result.calendar)))

    report = profit_distribution(dataset)
    stats = report.stats
    print("\nFigure 8 — the profit inversion")
    print(f"  miners   : {stats.miners_flashbots.mean:.4f} ETH/sandwich "
          f"with Flashbots vs {stats.miners_non_flashbots.mean:.4f} "
          f"without ({report.miner_uplift:.2f}x, paper ~2.6x)")
    print(f"  searchers: {stats.searchers_flashbots.mean:.4f} ETH "
          f"with Flashbots vs {stats.searchers_non_flashbots.mean:.4f} "
          f"without (-{100 * report.searcher_drop:.1f}%, paper -84.4%)")


if __name__ == "__main__":
    main()
