#!/usr/bin/env python3
"""Anatomy of a sandwich attack, step by step.

Builds a minimal world — one Uniswap-V2 pool, one victim with loose
slippage protection, one searcher — sizes the optimal frontrun with the
closed-form planner, executes the attack through both channels (a public
PGA and a Flashbots bundle), and shows how the *same* extraction splits
its proceeds very differently between searcher and miner.

This is the micro-mechanism behind the paper's Figure 8.
"""

from repro.agents.fees import FeeModel
from repro.agents.searcher import (
    ChannelPolicy,
    MarketView,
    SandwichSearcher,
)
from repro.chain.block import BlockBuilder
from repro.chain.state import WorldState
from repro.chain.transaction import Transaction
from repro.chain.types import address_from_label, ether, gwei, to_eth
from repro.dex.arbitrage_math import plan_sandwich
from repro.dex.registry import UNISWAP_V2, ExchangeRegistry
from repro.dex.router import SwapIntent
from repro.lending.oracle import PRICE_SCALE, PriceOracle

import random

VICTIM = address_from_label("example-victim")
MINER = address_from_label("example-miner")


def build_world():
    state = WorldState()
    registry = ExchangeRegistry()
    pool = registry.create_pool(UNISWAP_V2, "WETH", "DAI")
    pool.add_liquidity(state, WETH=ether(1_000), DAI=ether(3_000_000))
    oracle = PriceOracle()
    oracle.set_price("DAI", PRICE_SCALE // 3_000)
    state.mint_token("WETH", VICTIM, ether(50))
    state.credit_eth(VICTIM, ether(10))
    return state, registry, oracle, pool


def victim_tx(state, pool, slippage_bps=300):
    amount = ether(25)
    quote = pool.quote_out(state, "WETH", amount)
    min_out = quote * (10_000 - slippage_bps) // 10_000
    print(f"Victim swaps 25 WETH, expects {to_eth(quote):,.0f} DAI, "
          f"accepts down to {to_eth(min_out):,.0f} "
          f"({slippage_bps / 100:.0f}% slippage)")
    return Transaction(sender=VICTIM, nonce=state.nonce(VICTIM),
                       to=pool.address, gas_limit=150_000,
                       gas_price=gwei(60),
                       intent=SwapIntent(pool.address, "WETH", amount,
                                         min_amount_out=min_out))


def show_plan(state, pool, victim):
    plan = plan_sandwich(pool.reserve_of(state, "WETH"),
                         pool.reserve_of(state, "DAI"),
                         victim.intent.amount_in,
                         victim.intent.min_amount_out, pool.fee_bps)
    print(f"\nOptimal frontrun: {to_eth(plan.frontrun_in):.3f} WETH "
          f"→ {to_eth(plan.frontrun_out):,.0f} DAI")
    print(f"Victim still receives {to_eth(plan.victim_out):,.0f} DAI "
          f"(exactly at the slippage floor)")
    print(f"Backrun recovers {to_eth(plan.backrun_out):.3f} WETH → "
          f"gross profit {to_eth(plan.expected_profit):.3f} WETH")
    return plan


def run_channel(channel_name, policy):
    state, registry, oracle, pool = build_world()
    searcher = SandwichSearcher("example-searcher", policy,
                                visibility=1.0,
                                min_profit_wei=ether(0.001))
    state.credit_eth(searcher.address, ether(1_000))
    state.mint_token("WETH", searcher.address, ether(1_000))
    state.mint_token("DAI", searcher.address, ether(3_000_000))
    victim = victim_tx(state, pool)
    if channel_name == "public (PGA)":
        show_plan(state, pool, victim)
    fees = FeeModel(base_fee=0, london_active=False,
                    prevailing=gwei(50))
    view = MarketView(state=state, registry=registry, oracle=oracle,
                      pending=[victim], block_number=100, fees=fees,
                      rng=random.Random(9))
    submission = searcher.scan(view)[0]

    if submission.bundle is not None:
        txs = list(submission.bundle.transactions)
    else:
        front, back = submission.txs
        txs = [front, victim, back]  # fee order in a public block

    weth0 = state.token_balance("WETH", searcher.address)
    eth0 = state.eth_balance(searcher.address)
    miner0 = state.eth_balance(MINER)
    builder = BlockBuilder(state, number=101, timestamp=13,
                           coinbase=MINER, base_fee=0,
                           contracts=registry.contracts)
    builder.apply_atomic_sequence(txs, require_success=False)
    builder.finalize()

    searcher_net = (state.token_balance("WETH", searcher.address)
                    - weth0) + (state.eth_balance(searcher.address)
                                - eth0)
    miner_take = state.eth_balance(MINER) - miner0 - 2 * 10**18
    print(f"\n--- {channel_name} ---")
    print(f"searcher net:  {to_eth(searcher_net):+.4f} ETH-equivalent")
    print(f"miner revenue: {to_eth(miner_take):+.4f} ETH "
          f"(beyond the block reward)")
    return searcher_net, miner_take


def main() -> None:
    print("=" * 64)
    print("The same sandwich, two channels")
    print("=" * 64)
    public = run_channel("public (PGA)", ChannelPolicy())
    flashbots = run_channel("Flashbots (sealed-bid bundle)",
                            ChannelPolicy(flashbots_from=1))
    print("\nConclusion: through Flashbots the *miner* captures most of")
    print("the extraction (the sealed-bid tip), while the searcher keeps")
    print(f"{to_eth(flashbots[0]):.4f} vs {to_eth(public[0]):.4f} ETH "
          f"publicly — the paper's Goal-3 failure in miniature.")


if __name__ == "__main__":
    main()
