"""Shared benchmark fixtures: one simulated study window per session.

Every benchmark regenerates one of the paper's tables or figures from the
same simulated window and measurement run, times the analysis step with
pytest-benchmark, prints the rows the paper reports, and writes them to
``benchmarks/output/<experiment>.txt`` so the artifacts survive output
capture.

Scale with ``REPRO_BENCH_BPM`` (blocks per simulated month, default 100;
the paper's real months are ~190k blocks).
"""

import os
import pathlib

import pytest

from repro import run_inspector
from repro.sim import ScenarioConfig, build_paper_scenario

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


def bench_blocks_per_month() -> int:
    return int(os.environ.get("REPRO_BENCH_BPM", "100"))


@pytest.fixture(scope="session")
def sim_result():
    from repro.chain.transaction import reset_tx_counter
    reset_tx_counter()  # identical world regardless of bench order
    config = ScenarioConfig(blocks_per_month=bench_blocks_per_month(),
                            seed=7)
    world = build_paper_scenario(config)
    return world.run()


@pytest.fixture(scope="session")
def dataset(sim_result):
    return run_inspector(sim_result)


def emit(name: str, text: str) -> None:
    """Print an experiment's rows and persist them as an artifact."""
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n=== {name} ===\n{text}\n")
