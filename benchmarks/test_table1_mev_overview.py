"""Table 1 — MEV dataset overview.

Paper values (23 months of mainnet): 1,020,044 sandwiches (47.61 % via
Flashbots, 0 via flash loans), 3,462,678 arbitrages (26.47 % FB, 0.29 %
flash loans), 32,819 liquidations (28.01 % FB, 5.09 % flash loans).
We compare shares and orderings, not absolute counts.
"""

from repro.analysis import build_table1, percent, render_table

from benchmarks.conftest import emit


def test_table1_mev_overview(benchmark, dataset):
    rows = benchmark(build_table1, dataset)

    table = render_table(
        ["MEV Strategy", "Extractions", "Via Flashbots",
         "Via Flash Loans", "Via Both"],
        [(r.strategy, r.extractions,
          f"{r.via_flashbots} ({percent(r.share_flashbots())})",
          f"{r.via_flash_loans} ({percent(r.share_flash_loans())})",
          f"{r.via_both} ({percent(r.share_both())})")
         for r in rows])
    emit("table1_mev_overview", table)

    by_name = {r.strategy: r for r in rows}
    # Paper shape: sandwiches ≈ half via FB; no flash-loan sandwiches;
    # flash loans present but rare for arbitrage; liquidations rarest.
    assert by_name["Sandwiching"].via_flash_loans == 0
    assert 0.25 < by_name["Sandwiching"].share_flashbots() < 0.75
    assert by_name["Arbitrage"].via_flash_loans > 0
    assert by_name["Liquidation"].extractions < \
        by_name["Arbitrage"].extractions
    assert by_name["Total"].extractions == sum(
        by_name[s].extractions
        for s in ("Sandwiching", "Arbitrage", "Liquidation"))
