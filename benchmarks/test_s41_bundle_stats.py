"""Section 4.1 — Flashbots bundle statistics.

Paper values: 3,249,003 bundles in 1,196,218 blocks; 2.71 bundles/block
(median 2, max 42); 2.15 txs/bundle (median 1, max 700 — an F2Pool
payout); 61.37 % single-transaction bundles; type split 1.9 % miner
payout, 7.6 % rogue, 90.5 % flashbots.
"""

from repro.analysis import bundle_stats, percent, render_kv

from benchmarks.conftest import emit


def test_s41_bundle_stats(benchmark, sim_result):
    stats = benchmark(bundle_stats, sim_result.flashbots_api)

    emit("s41_bundle_stats", render_kv(
        "Flashbots bundle statistics",
        [("blocks", stats.total_blocks),
         ("bundles", stats.total_bundles),
         ("bundles/block mean (paper 2.71)",
          f"{stats.bundles_per_block_mean:.2f}"),
         ("bundles/block median (paper 2)",
          f"{stats.bundles_per_block_median:.1f}"),
         ("bundles/block max (paper 42)",
          stats.bundles_per_block_max),
         ("txs/bundle mean (paper 2.15)",
          f"{stats.txs_per_bundle_mean:.2f}"),
         ("txs/bundle median (paper 1)",
          f"{stats.txs_per_bundle_median:.1f}"),
         ("largest bundle (paper 700)", stats.largest_bundle_txs),
         ("single-tx bundles (paper 61.4%)",
          percent(stats.single_tx_bundle_share)),
         ("type: flashbots (paper 90.5%)",
          percent(stats.type_shares.get("flashbots", 0))),
         ("type: rogue (paper 7.6%)",
          percent(stats.type_shares.get("rogue", 0))),
         ("type: miner_payout (paper 1.9%)",
          percent(stats.type_shares.get("miner_payout", 0)))]))

    assert 1.0 < stats.bundles_per_block_mean < 4.5
    assert stats.txs_per_bundle_median == 1
    assert 1.2 < stats.txs_per_bundle_mean < 4.0
    assert 0.5 < stats.single_tx_bundle_share < 0.95
    assert stats.largest_bundle_txs == 700
    assert stats.type_shares["flashbots"] > 0.8
    assert 0 < stats.type_shares.get("rogue", 0) < 0.2
    assert 0 < stats.type_shares.get("miner_payout", 0) < 0.1
