"""Figure 9 / Section 6.2 — private vs public MEV extraction.

Paper values (Nov 23 2021 – Mar 23 2022): of 99,928 sandwiches, 81.15 %
via Flashbots; of the rest, 70.27 % private (13.2 % of all) and only
5.6 % fully public.
"""

from repro.analysis import fig9_private_distribution, percent, \
    render_kv

from benchmarks.conftest import emit


def test_fig9_private_distribution(benchmark, dataset):
    dist = benchmark(fig9_private_distribution, dataset)

    emit("fig9_private_distribution", render_kv(
        "Sandwich privacy in the observation window",
        [("total", dist.total),
         ("flashbots", f"{dist.flashbots} "
                       f"({percent(dist.share('flashbots'))}, "
                       f"paper 81.2%)"),
         ("other private", f"{dist.private} "
                           f"({percent(dist.share('private'))}, "
                           f"paper 13.2%)"),
         ("public", f"{dist.public} "
                    f"({percent(dist.share('public'))}, "
                    f"paper 5.6%)")]))

    assert dist.total > 30
    # Ordering and dominance match the paper.
    assert dist.share("flashbots") > 0.45
    assert dist.share("flashbots") > dist.share("private") > \
        dist.share("public")
    assert dist.share("public") < 0.25
