"""Figure 5 — number of miners with ≥n Flashbots blocks per month.

Paper shape: a long tail — one or two miners above the top threshold,
never more than 55 Flashbots miners in any month.
"""

from repro.analysis import fig5_miner_distribution, render_table

from benchmarks.conftest import emit


def test_fig5_miner_distribution(benchmark, sim_result):
    series = benchmark(fig5_miner_distribution,
                       sim_result.flashbots_api, sim_result.calendar)

    thresholds = sorted(series)
    months = sim_result.calendar.months
    table = render_table(
        ["Month"] + [f">={t} blocks" for t in thresholds],
        [(month,) + tuple(dict(series[t])[month] for t in thresholds)
         for month in months if month >= "2021-02"])
    emit("fig5_miner_distribution", table)

    # Monotone in the threshold, bounded by the population, long-tailed.
    for low, high in zip(thresholds, thresholds[1:]):
        for (_, n_low), (_, n_high) in zip(series[low], series[high]):
            assert n_high <= n_low
    assert max(n for _, n in series[1]) <= 55
    assert max(n for _, n in series[thresholds[-1]]) <= 3
    assert max(n for _, n in series[1]) > 5  # more than a handful joined
