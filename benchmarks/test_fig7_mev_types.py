"""Figure 7 — Flashbots searchers (7a) and transactions (7b) by type.

Paper shape: "other" exceeds every MEV type (by orders of magnitude in
searcher count); MEV searcher counts rise through August 2021 then
decline; sandwich and arbitrage transaction counts track each other with
liquidations far rarer.
"""

from repro.analysis import fig7_mev_types, render_table

from benchmarks.conftest import emit


def test_fig7_mev_types(benchmark, sim_result, dataset):
    series = benchmark(fig7_mev_types, dataset,
                       sim_result.flashbots_api, sim_result.node,
                       sim_result.calendar)

    months = [m for m in sim_result.calendar.months if m >= "2021-02"]
    kinds = ("sandwich", "arbitrage", "liquidation", "other")

    def table_for(split):
        data = getattr(series, split)
        return render_table(
            ["Month"] + list(kinds),
            [(month,) + tuple(dict(data[k])[month] for k in kinds)
             for month in months])

    emit("fig7_mev_types",
         "7a — searchers per type per month\n" + table_for("searchers")
         + "\n\n7b — transactions per type per month\n"
         + table_for("transactions"))

    mid = "2021-08"
    searchers = {k: dict(series.searchers[k]) for k in kinds}
    txs = {k: dict(series.transactions[k]) for k in kinds}
    # "other" dominates both panels.
    assert searchers["other"][mid] > searchers["sandwich"][mid]
    assert searchers["other"][mid] > searchers["arbitrage"][mid]
    assert txs["other"][mid] > txs["liquidation"][mid]
    # Liquidation is the rarest MEV type overall.
    assert sum(txs["liquidation"].values()) < \
        sum(txs["arbitrage"].values())
    # MEV searcher participation declines from its 2021 ramp.
    ramp = max(searchers["sandwich"][m]
               for m in ("2021-06", "2021-07", "2021-08"))
    tail = max(searchers["sandwich"][m]
               for m in ("2022-02", "2022-03"))
    assert tail <= ramp
