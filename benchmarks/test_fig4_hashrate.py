"""Figure 4 — estimated hashrate share of Flashbots miners.

Paper shape: 61.7 % by March 2021, 97.6 % by May 2021, ~99.9 % by
February 2022.  The paper's block-counting estimator under-counts small
miners at compressed scale (and the paper itself notes the Flashbots
dashboard's own 74.5 % estimate as an outlier), so we check the
estimator's ramp plus the near-total ground-truth enrollment.
"""

from repro.analysis import fig4_hashrate_share, render_series

from benchmarks.conftest import emit


def test_fig4_hashrate(benchmark, sim_result):
    series = benchmark(fig4_hashrate_share, sim_result.node,
                       sim_result.flashbots_api, sim_result.calendar)

    truth = sim_result.miners.flashbots_hashpower_share(
        sim_result.calendar.total_blocks)
    emit("fig4_hashrate",
         render_series("Estimated Flashbots hashrate share", series)
         + f"\n  ground-truth enrolled share at window end: "
           f"{truth:.4f}")

    values = dict(series)
    assert all(values[m] == 0.0 for m in sim_result.calendar.months[:9])
    assert values["2021-03"] > 0.4       # paper: 61.7 %
    assert values["2021-06"] > 0.7       # paper: 97.6 % by May
    assert max(values["2022-01"], values["2022-02"]) > 0.75
    assert truth > 0.97                  # paper: ~99.9 %
