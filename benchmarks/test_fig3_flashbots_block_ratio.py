"""Figure 3 — proportion of Flashbots blocks among all Ethereum blocks.

Paper shape: zero before February 2021, rapid ramp, 60.6 % peak in July
2021, hovering above 50 %, dipping to 48.2 % by February 2022.
"""

from repro.analysis import fig3_flashbots_block_ratio, render_series

from benchmarks.conftest import emit


def test_fig3_flashbots_block_ratio(benchmark, sim_result):
    series = benchmark(fig3_flashbots_block_ratio, sim_result.node,
                       sim_result.flashbots_api, sim_result.calendar)

    emit("fig3_flashbots_block_ratio",
         render_series("Flashbots block ratio per month", series))

    values = dict(series)
    assert all(values[m] == 0.0 for m in sim_result.calendar.months[:9])
    assert values["2021-03"] > 0.15      # fast adoption
    peak_month, peak = max(series, key=lambda kv: kv[1])
    assert peak > 0.5                    # paper: 60.6 % peak
    assert "2021-04" <= peak_month <= "2021-12"
    tail = (values["2022-01"] + values["2022-02"]
            + values["2022-03"]) / 3
    assert tail < peak                   # decline into 2022
