#!/usr/bin/env python
"""Large-scenario spilling smoke: O(epoch) memory, measured for real.

Simulates a ~100k-block scenario with the segment store attached
(overlapped background spill writes and the flat-GC long-run regime by
default, like production runs), then asserts the four properties that
make million-block windows feasible:

1. **Residency bound** — the in-memory block list never exceeds
   ``(max_resident_epochs + 1) * epoch_blocks`` blocks, and peak RSS
   (``getrusage``) stays under a fixed ceiling regardless of
   ``--blocks``.
2. **Scale-flat throughput** — per-epoch blocks/s is printed for every
   epoch, and every epoch past the activity ramp's saturation point
   must hold at least ``FLATNESS`` of the first saturated epoch's
   throughput; a violation fails naming the offending epoch.
3. **Segment-backed reads** — a full ``iter_range`` walk off the
   spilled store yields every block, contiguous and parent-linked, and
   spot lookups resolve through the fingerprint-verified segments.
4. **Splice identity (sampled prefix)** — the first epochs are
   re-simulated from their seals across ``--workers`` processes and
   must match the stored chain hash-for-hash (the ``shard_identical``
   rule, checked here against the spilled reference).

Exits nonzero on any violation.  CI runs this at workers 1 and 2; run
it locally with smaller ``--blocks`` for a quick check.
``--no-overlap-io`` spills synchronously — segment files are
byte-identical either way (tests/chain/test_overlap.py pins that).
"""

import argparse
import os
import resource
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir,
                                "src"))

from repro.chain.segments import SegmentStore
from repro.chain.transaction import reset_tx_counter
from repro.sim import (
    ScenarioConfig,
    build_paper_scenario,
    plan_epochs,
    resimulate_epochs,
)
from repro.sim.world import activity_saturation_month

#: Minimum fraction of the first saturated epoch's throughput every
#: later epoch must hold (same margin as the bench ``scale_flat`` gate).
FLATNESS = 0.8


def sequence_of(blocks):
    return [(block.hash, tuple(block.tx_hashes)) for block in blocks]


def rss_mb():
    with open("/proc/self/statm", "r", encoding="ascii") as handle:
        pages = int(handle.read().split()[1])
    return pages * os.sysconf("SC_PAGESIZE") / 1e6


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--blocks", type=int, default=100_000)
    parser.add_argument("--bpm", type=int, default=5_000,
                        help="blocks per month (window must cover "
                             "--blocks)")
    parser.add_argument("--epoch-blocks", type=int, default=5_000)
    parser.add_argument("--max-resident-epochs", type=int, default=2)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--prefix-epochs", type=int, default=2,
                        help="epochs re-simulated for the identity "
                             "check")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--ceiling-mb", type=int, default=900,
                        help="peak-RSS ceiling asserted after the run")
    parser.add_argument("--overlap-io",
                        action=argparse.BooleanOptionalAction,
                        default=True,
                        help="write segments on a background thread "
                             "(default on; --no-overlap-io spills "
                             "synchronously)")
    args = parser.parse_args(argv)

    config = ScenarioConfig(blocks_per_month=args.bpm, seed=args.seed,
                            epoch_blocks=args.epoch_blocks)
    total = args.bpm * len(config.months)
    if args.blocks > total:
        parser.error(f"--blocks {args.blocks} exceeds the window "
                     f"({total} blocks at bpm={args.bpm})")
    prefix = min(args.prefix_epochs,
                 max(1, args.blocks // args.epoch_blocks))

    reset_tx_counter()
    world = build_paper_scenario(config)
    with tempfile.TemporaryDirectory(prefix="repro-segs-") as root:
        store = SegmentStore.create(os.path.join(root, "segments"))
        world.attach_segment_store(
            store, max_resident_epochs=args.max_resident_epochs,
            overlap_io=args.overlap_io)
        flat_gc = world.install_flat_gc()

        # Epoch-by-epoch so throughput is a per-epoch series, not one
        # average that would hide late-epoch decay.  Seals are collected
        # only over the prefix we re-simulate, so the parent's RSS
        # measures the spilling run, not a seal archive.
        started = time.time()
        seals = {}
        telemetry = []
        done = 0
        while done < args.blocks:
            span = min(args.epoch_blocks, args.blocks - done)
            epoch = done // args.epoch_blocks
            epoch_started = time.time()
            world.run(blocks=span,
                      collect_seals=seals if epoch < prefix else None)
            epoch_s = time.time() - epoch_started
            telemetry.append((epoch, span, span / epoch_s))
            print(f"epoch {epoch}: {epoch_s:.2f}s  "
                  f"{span / epoch_s:.0f} blocks/s  rss={rss_mb():.0f}MB")
            done += span
        flat_gc.uninstall()
        seals = {epoch: seal for epoch, seal in seals.items()
                 if epoch < prefix}
        elapsed = time.time() - started

        chain = world.blockchain
        assert chain.height == args.blocks, chain.height
        assert store.in_flight_epochs == [], store.in_flight_epochs
        resident = len(chain.blocks)
        bound = (args.max_resident_epochs + 1) * args.epoch_blocks
        assert resident <= bound, \
            f"resident blocks {resident} exceed bound {bound}"
        spilled = len(store.segments)
        print(f"simulated {args.blocks} blocks in {elapsed:.1f}s "
              f"({args.blocks / elapsed:.0f} blocks/s, overlap_io="
              f"{'on' if args.overlap_io else 'off'}); "
              f"{spilled} segments spilled, {resident} blocks resident "
              f"(bound {bound})")

        # Scale-flat: every saturated full epoch holds the baseline.
        saturated_block = activity_saturation_month() * args.bpm
        steady = [(epoch, rate) for epoch, span, rate in telemetry
                  if epoch * args.epoch_blocks >= saturated_block
                  and span == args.epoch_blocks]
        if len(steady) >= 2:
            base_epoch, baseline = steady[0]
            floor = FLATNESS * baseline
            for epoch, rate in steady[1:]:
                assert rate >= floor, (
                    f"throughput decayed with scale: epoch {epoch} ran "
                    f"{rate:.0f} blocks/s, below {FLATNESS:.0%} of "
                    f"epoch {base_epoch}'s {baseline:.0f} blocks/s")
            print(f"scale-flat ok: epochs {base_epoch}..{steady[-1][0]} "
                  f"all >= {FLATNESS:.0%} of {baseline:.0f} blocks/s")
        else:
            print("scale-flat skipped: fewer than two saturated epochs")

        # Full walk off the spilled store: contiguous and parent-linked.
        previous = None
        count = 0
        for block in chain.iter_range():
            count += 1
            assert block.number == count, (block.number, count)
            if previous is not None:
                assert block.parent_hash == previous.hash, block.number
            previous = block
        assert count == args.blocks, count
        for number in (1, args.epoch_blocks, args.epoch_blocks + 1,
                       args.blocks // 2, args.blocks):
            found = chain.block_by_number(number)
            assert found is not None and found.number == number, number
        print(f"segment-backed walk ok: {count} blocks, "
              f"linkage verified")

        # Sampled-prefix shard identity against the spilled reference.
        plan = plan_epochs(config)[:prefix]
        resumed = time.time()
        results = resimulate_epochs(config, seals, chunks=plan,
                                    workers=args.workers)
        for result in results:
            lo, hi = result.chunk
            stored = sequence_of(chain.iter_range(lo, hi))
            assert sequence_of(result.blocks) == stored, \
                f"epoch {result.epoch_index} diverged from the " \
                f"spilled reference"
        print(f"shard identity ok: {prefix} epoch(s) re-simulated "
              f"from seals across {args.workers} worker(s) in "
              f"{time.time() - resumed:.1f}s, bit-identical")

    peak_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    peak_mb = peak_kb / 1024.0
    print(f"peak RSS {peak_mb:.0f} MB (ceiling {args.ceiling_mb} MB)")
    assert peak_mb <= args.ceiling_mb, \
        f"peak RSS {peak_mb:.0f} MB exceeds {args.ceiling_mb} MB"
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
