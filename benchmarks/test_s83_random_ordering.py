"""Section 8.3 — why randomized transaction ordering fails as a defense.

The paper's back-of-envelope: after a random shuffle the victim sits in
the middle, the frontrun precedes it with ½ and the backrun follows it
with ½, so a sandwich still succeeds ≈25 % of the time; single
front/backruns survive ≈50 %; and attackers can inflate their odds by
submitting more transactions.  The exact probability for three marked
transactions is 1/3! ≈ 16.7 % — this benchmark measures the empirical
value on detected sandwiches and the dart-throwing escalation, and
confirms the qualitative conclusion either way: randomization leaves
MEV highly viable.
"""

from repro.analysis.ablation import random_ordering_ablation
from repro.analysis import percent, render_kv

from benchmarks.conftest import emit


def test_s83_random_ordering(benchmark, sim_result, dataset):
    report = benchmark(random_ordering_ablation, sim_result.node,
                       dataset)

    assert report is not None
    emit("s83_random_ordering", render_kv(
        "Sandwich survival under uniform in-block shuffling",
        [("sandwiches tested", report.sandwiches_tested),
         ("shuffles per block", report.shuffles_per_block),
         ("empirical sandwich survival",
          percent(report.sandwich_survival)),
         ("exact 3-tx value (1/3!)", percent(report.exact_three_tx)),
         ("paper's estimate (1/2 x 1/2)",
          percent(report.paper_estimate)),
         ("single backrun survival (paper ~50%)",
          percent(report.backrun_survival)),
         (f"survival with {report.dart_copies} copies per leg",
          percent(report.dart_survival))]))

    # Empirical survival ≈ the exact combinatorial value...
    assert abs(report.sandwich_survival - 1 / 6) < 0.05
    # ...bounded above by the paper's independence approximation.
    assert report.sandwich_survival < report.paper_estimate + 0.03
    # Single backruns survive about half the time.
    assert abs(report.backrun_survival - 0.5) < 0.07
    # Dart-throwing raises the odds well above the single-shot rate —
    # the paper's reason to reject randomization outright.
    assert report.dart_survival > 2 * report.sandwich_survival
