"""Ablations for the two load-bearing design choices (DESIGN.md §5).

* Sealed-bid overbidding causes the Figure-8 profit inversion: sweeping
  the tip mean from modest to aggressive must monotonically raise the
  miner uplift.
* The private-transaction inference depends on observation coverage:
  degrading the pending-tx collector must erode inference precision.
"""

from repro.analysis.sensitivity import (
    observation_rate_sweep,
    tip_fraction_sweep,
)
from repro.analysis import render_table

from benchmarks.conftest import emit


def test_ablation_tip_auction(benchmark):
    points = benchmark.pedantic(
        tip_fraction_sweep, args=([0.35, 0.60, 0.85],),
        kwargs={"blocks_per_month": 20}, iterations=1, rounds=1)

    emit("ablation_tip_auction", render_table(
        ["Sealed-bid tip mean", "Miner uplift", "Searcher drop",
         "Searcher FB mean (ETH)"],
        [(f"{p.tip_mean:.2f}", f"{p.miner_uplift:.2f}x",
          f"{100 * p.searcher_drop:.1f}%",
          f"{p.searcher_fb_mean_eth:.4f}") for p in points]))

    # Overbidding is the inversion's cause: uplift rises with the tip.
    uplifts = [p.miner_uplift for p in points]
    assert uplifts[0] < uplifts[-1]
    # Searchers keep less as they bid more.
    assert points[0].searcher_fb_mean_eth > \
        points[-1].searcher_fb_mean_eth


def test_ablation_observation_rate(benchmark):
    points = benchmark.pedantic(
        observation_rate_sweep, args=([0.995, 0.7, 0.3],),
        kwargs={"blocks_per_month": 20}, iterations=1, rounds=1)

    emit("ablation_observation_rate", render_table(
        ["Observation rate", "Pending seen", "Labelled sandwiches",
         "Inferred private", "Precision", "Recall"],
        [(f"{p.observation_rate:.3f}", p.observed_pending,
          p.labelled_sandwiches, p.inferred_private,
          f"{p.private_precision:.2f}", f"{p.private_recall:.2f}")
         for p in points]))

    # Fewer observations reach the trace as coverage degrades.
    assert points[0].observed_pending > points[-1].observed_pending
    # Near-perfect coverage → near-perfect inference (the paper's
    # operating point).
    assert points[0].private_precision > 0.9
    assert points[0].private_recall > 0.9
    # Degraded coverage erodes the inference.
    assert points[-1].private_precision <= points[0].private_precision
