"""Section 6.3 — attributing private sandwiches to miners and pools.

Paper findings: 35 miner addresses mined private non-Flashbots
sandwiches from 41 extractor accounts; two accounts were served by
exactly one miner each (30 sandwiches by a Flexpool miner, 121 by an
F2Pool miner) — the self-extraction signal — and both miners also mined
other accounts' private sandwiches, i.e. they participate in broader
private pools as well.
"""

from repro.core.pool_attribution import attribute_private_pools
from repro.analysis import render_kv

from benchmarks.conftest import emit


def test_s63_pool_attribution(benchmark, dataset, sim_result):
    report = benchmark(attribute_private_pools, dataset)

    singles = [(account[:10] + "…", miner[:10] + "…", count)
               for account, miner, count in
               report.single_miner_extractors]
    emit("s63_pool_attribution", render_kv(
        "Private non-Flashbots sandwich attribution",
        [("miner addresses (paper 35)", report.n_miners),
         ("extractor accounts (paper 41)", report.n_accounts),
         ("single-miner extractors (paper 2)",
          len(report.single_miner_extractors)),
         ("their (account, miner, count)", singles),
         ("multi-pool miners (paper: both)",
          len(report.multi_pool_miners))]))

    assert report.n_miners > 0
    assert report.n_accounts > 0
    # The planted Flexpool/F2Pool-style self-extractors are recovered.
    planted = {truth.searcher for truth in sim_result.ground_truths
               if truth.private_pool
               and truth.private_pool.startswith("self:")}
    recovered = {account for account, _, _ in
                 report.single_miner_extractors}
    assert recovered & planted
