"""Section 5.2 — unprofitable Flashbots sandwiches.

Paper values: 7,666 unprofitable MEVs out of 485,680 Flashbots
sandwiches (≈1.58 %), totalling 113.67 ETH in losses, attributed to
faulty searcher contracts.
"""

from repro.analysis import negative_profits, percent, render_kv

from benchmarks.conftest import emit


def test_s52_negative_profits(benchmark, dataset):
    report = benchmark(negative_profits, dataset)

    emit("s52_negative_profits", render_kv(
        "Unprofitable Flashbots sandwiches",
        [("flashbots sandwiches", report.flashbots_sandwiches),
         ("unprofitable", report.unprofitable),
         ("share (paper 1.58%)",
          percent(report.unprofitable_share)),
         ("total losses (ETH)", f"{report.loss_total_eth:.3f}")]))

    assert report.flashbots_sandwiches > 30
    # Losses exist (faulty contracts) but stay a small minority.
    assert report.unprofitable > 0
    assert 0.0 < report.unprofitable_share < 0.12
    assert report.loss_total_eth > 0
