"""Figure 6 — daily sandwich counts vs average gas price.

Paper shape: the public gas price collapses in April 2021, coinciding
with Flashbots adoption, *not* with the Berlin or London forks; both
sandwich series dip after September 2021; an uptick appears roughly
seven months after the collapse.
"""

from repro.analysis import (
    fig6_gas_and_sandwiches,
    monthly_average_gas_gwei,
    pearson_correlation,
    render_series,
)

from benchmarks.conftest import emit


def test_fig6_gas_vs_sandwiches(benchmark, sim_result, dataset):
    points = benchmark(fig6_gas_and_sandwiches, sim_result.node,
                       dataset, sim_result.calendar)

    monthly_gas = monthly_average_gas_gwei(points)
    fb_by_month = {}
    nonfb_by_month = {}
    for point in points:
        fb_by_month[point.month] = fb_by_month.get(point.month, 0) \
            + point.flashbots_sandwiches
        nonfb_by_month[point.month] = \
            nonfb_by_month.get(point.month, 0) \
            + point.non_flashbots_sandwiches
    # The paper's headline: gas price tracks *public* sandwich activity
    # (both collapse when searchers move into Flashbots).
    months = [m for m, _ in monthly_gas]
    gas_series = [g for _, g in monthly_gas]
    nonfb_series = [nonfb_by_month.get(m, 0) for m in months]
    correlation = pearson_correlation(gas_series, nonfb_series)
    text = "\n\n".join([
        render_series("Avg gas price (gwei) per month", monthly_gas,
                      unit=" gwei"),
        render_series("Flashbots sandwiches per month",
                      sorted(fb_by_month.items())),
        render_series("Non-Flashbots sandwiches per month",
                      sorted(nonfb_by_month.items())),
        f"fork markers: Berlin=block {sim_result.forks.berlin_block}, "
        f"London=block {sim_result.forks.london_block}",
        f"Pearson corr(gas, non-FB sandwiches) = {correlation:.2f} "
        f"(the paper's correlation claim)",
    ])
    emit("fig6_gas_vs_sandwiches", text)

    # Gas moves *with* public sandwich activity.
    assert correlation > 0.3

    gas = dict(monthly_gas)
    pre = (gas["2020-11"] + gas["2020-12"] + gas["2021-01"]) / 3
    trough = min(gas[m] for m in ("2021-05", "2021-06", "2021-07"))
    assert trough < 0.6 * pre            # the collapse
    # The collapse happens before London (Aug 2021): fork not the cause.
    assert gas["2021-07"] < 0.7 * pre
    # Flashbots sandwiches appear only after the launch.
    assert all(fb_by_month[m] == 0
               for m in sim_result.calendar.months[:9])
    assert sum(fb_by_month.values()) > 0
    assert sum(nonfb_by_month.values()) > 0
