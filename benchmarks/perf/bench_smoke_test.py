"""Smoke test for the benchmark harness (quick scenario).

Asserts the report's schema and the identity invariants — parallel ≡
serial, indexed reads ≡ linear scan — not any wall-clock number:
speed depends on the machine, correctness never does.
"""

import json

from repro.bench import BENCH_VERSION, render_report, run_bench, \
    write_report

EXPECTED_STAGES = {"simulate", "detection", "detection_indexed",
                   "detection_linear", "joins", "stream"}


class TestBenchSmoke:
    def test_quick_bench_report(self, tmp_path):
        report = run_bench(quick=True, workers=(1, 2))

        assert report["version"] == BENCH_VERSION
        assert report["parallel_identical"] is True
        assert report["indexed_matches_linear"] is True
        assert report["machine"]["cpu_count"] >= 1
        assert report["world_cache"] is None  # no cache configured

        scenario = report["scenario"]
        assert scenario["quick"] is True
        assert scenario["blocks"] > 0
        assert scenario["chunks"] > 1

        stages = {s["stage"] for s in report["stages"]}
        assert stages == EXPECTED_STAGES
        for stage in report["stages"]:
            assert stage["blocks"] == scenario["blocks"]
            assert stage["elapsed_s"] >= 0

        by_workers = {e["workers"]: e for e in report["end_to_end"]}
        assert set(by_workers) == {1, 2}
        assert all(e["identical_to_serial"]
                   for e in report["end_to_end"])
        assert by_workers[1]["speedup_vs_serial"] == 1.0
        for entry in report["end_to_end"]:
            assert 1 <= entry["workers_effective"] <= entry["workers"]

        out = tmp_path / "BENCH_pipeline.json"
        write_report(report, out)
        assert json.loads(out.read_text(encoding="utf-8")) == report

        summary = render_report(report)
        assert "parallel identical to serial: yes" in summary
        assert "indexed reads identical to linear: yes" in summary

    def test_world_cache_round_trip(self, tmp_path):
        cache = tmp_path / "worlds"
        cold = run_bench(quick=True, workers=(1,), world_cache=cache)
        assert cold["world_cache"]["hit"] is False
        warm = run_bench(quick=True, workers=(1,), world_cache=cache)
        assert warm["world_cache"]["hit"] is True
        assert warm["world_cache"]["digest"] == \
            cold["world_cache"]["digest"]
        # A replayed world benchmarks the same workload and passes the
        # same identity gates.
        assert warm["scenario"] == cold["scenario"]
        assert warm["parallel_identical"] is True
        assert warm["indexed_matches_linear"] is True
        assert "world cache: hit" in render_report(warm)
