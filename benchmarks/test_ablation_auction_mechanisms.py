"""Section 8.2 ablation — why sealed bids favour miners.

The paper argues Flashbots' sealed-bid auction makes searchers overbid
(they cannot see rivals), transferring the surplus to miners, whereas
the old open priority-gas-auctions ended near the runner-up's valuation
and let the winner keep the gap.  This benchmark plays both mechanisms
over the same sampled opportunity stream and reports the split.
"""

import random

from repro.agents.pga import compare_mechanisms
from repro.analysis import percent, render_table

from benchmarks.conftest import emit


def test_ablation_auction_mechanisms(benchmark):
    result = benchmark(compare_mechanisms, random.Random(3),
                       opportunities=300)

    emit("ablation_auction_mechanisms", render_table(
        ["Mechanism", "Miner share of MEV",
         "Searcher profit / opportunity (ETH)"],
        [("open PGA (pre-Flashbots)",
          percent(result.pga_miner_share),
          f"{result.pga_searcher_profit_wei / 10**18:.4f}"),
         ("sealed bid (Flashbots)",
          percent(result.sealed_miner_share),
          f"{result.sealed_searcher_profit_wei / 10**18:.4f}")]))

    # The §8.2 mechanism: the sealed auction shifts the split to miners.
    assert result.sealed_miner_share > result.pga_miner_share + 0.15
    assert result.sealed_searcher_profit_wei < \
        result.pga_searcher_profit_wei
