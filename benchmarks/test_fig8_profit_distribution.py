"""Figure 8 — sandwich profits for miners (8a) and searchers (8b).

Paper values: miners average 0.125 ETH per sandwich with Flashbots vs
0.048 ETH without (≈2.6×, higher variance); searchers average 0.02 ETH
with Flashbots vs 0.13 ETH without (−84.4 %), with visible losses.
"""

from repro.analysis import fig8_profit_distribution, render_table
from repro.analysis.goals import profit_distribution

from benchmarks.conftest import emit


def test_fig8_profit_distribution(benchmark, dataset):
    stats = benchmark(fig8_profit_distribution, dataset)

    report = profit_distribution(dataset)
    table = render_table(
        ["Population", "N", "Mean (ETH)", "Median", "Std"],
        [(name, s.count, f"{s.mean:.4f}", f"{s.median:.4f}",
          f"{s.std:.4f}")
         for name, s in (
             ("miners / Flashbots", stats.miners_flashbots),
             ("miners / non-Flashbots", stats.miners_non_flashbots),
             ("searchers / Flashbots", stats.searchers_flashbots),
             ("searchers / non-Flashbots",
              stats.searchers_non_flashbots))])
    emit("fig8_profit_distribution",
         table + f"\n  miner uplift (paper ~2.6x): "
                 f"{report.miner_uplift:.2f}x"
                 f"\n  searcher drop (paper ~84.4%): "
                 f"{100 * report.searcher_drop:.1f}%")

    # The inversion: Flashbots pays miners more and searchers less.
    assert stats.miners_flashbots.mean > stats.miners_non_flashbots.mean
    assert stats.searchers_flashbots.mean < \
        stats.searchers_non_flashbots.mean
    assert report.miner_uplift > 1.5
    assert report.searcher_drop > 0.5
    # Higher miner variance with Flashbots (paper: 0.415 vs 0.127).
    assert stats.miners_flashbots.std > stats.miners_non_flashbots.std
    # Searchers can lose money in Flashbots (Figure 8b's tail).
    losses = [r for r in dataset.sandwiches
              if r.via_flashbots and r.profit_wei < 0]
    assert losses
